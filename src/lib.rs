//! Umbrella crate for the DjiNN + Tonic reproduction: re-exports every
//! workspace crate so examples and integration tests have one import
//! root. See the README for the repository map and DESIGN.md for the
//! system inventory.

pub use djinn;
pub use dnn;
pub use gpusim;
pub use perf;
pub use tensor;
pub use tonic_suite;
pub use wsc;
