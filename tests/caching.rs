//! Cache-correctness suite for the content-keyed inference cache.
//!
//! The contract under test: enabling the cache must be **behaviorally
//! invisible** except for latency. Every cached answer is bitwise
//! identical to what the uncached engine would have computed, across
//! every model of the tiny zoo, under eviction pressure, under adversely
//! colliding hashes, under concurrent hammering, and under arbitrary
//! interleavings of repeated and fresh inputs (the proptest below). The
//! unit tests inside `dnn::cache` pin the data structure; this file pins
//! the engine-level behavior a client can actually observe.

use std::sync::Arc;

use djinn_tonic::djinn::{CpuExecutor, DeviceScheduler, EngineConfig, InferenceEngine};
use djinn_tonic::dnn::cache::{tensor_key, CacheMode, ExactCache, InferenceCache, ShardedLru};
use djinn_tonic::dnn::{zoo, Network};
use djinn_tonic::tensor::{Shape, Tensor};
use proptest::prelude::*;

/// Spawns an engine for `net` with the given cache mode (16 KiB is
/// plenty for tiny-zoo outputs; `None` budget-sizing is not under test
/// here).
fn engine_with_cache(net: Arc<Network>, mode: CacheMode) -> InferenceEngine {
    let cache = InferenceCache::new(mode, 16 * 1024).map(Arc::new);
    InferenceEngine::start_cached(
        "test",
        net,
        Arc::new(CpuExecutor::default()),
        EngineConfig::default(),
        Arc::new(DeviceScheduler::dedicated()),
        cache,
    )
}

/// Deterministic input for a zoo definition: `rows` stacked queries,
/// seeded per `salt` so distinct salts give distinct bytes.
fn input_for(def: &djinn_tonic::dnn::NetDef, rows: usize, salt: u64) -> Tensor {
    Tensor::random_uniform(def.input_shape().with_batch(rows), 1.0, 0xCAC4E + salt)
}

/// Tentpole criterion: for every tiny-zoo model and every cache mode, a
/// cache hit returns the *bit-identical* tensor an uncached engine
/// computes — not approximately equal, identical. The first request
/// populates, the second hits; both are compared bit-for-bit against a
/// direct `Network::forward` reference.
#[test]
fn cached_outputs_are_bitwise_identical_across_the_tiny_zoo() {
    for def in zoo::tiny_test_zoo() {
        let net = Arc::new(Network::with_random_weights(def.clone(), 7).unwrap());
        for mode in [CacheMode::Exact, CacheMode::Embed, CacheMode::Both] {
            let engine = engine_with_cache(Arc::clone(&net), mode);
            for rows in [1usize, 3] {
                let input = input_for(&def, rows, rows as u64);
                let want = net.forward(&input).unwrap();
                let cold = engine.infer(input.clone()).unwrap();
                let hot = engine.infer(input.clone()).unwrap();
                for (label, got) in [("cold", &cold), ("hot", &hot)] {
                    let same = got.data().len() == want.data().len()
                        && got
                            .data()
                            .iter()
                            .zip(want.data())
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        same,
                        "{} ({mode}) {label} response differs bitwise from the \
                         uncached reference",
                        def.name()
                    );
                }
            }
            engine.shutdown();
        }
    }
}

/// Eviction safety: a cache squeezed far below the working set must keep
/// honoring its byte budget, keep counting evictions, and *never* serve
/// a wrong answer — an evicted entry is recomputed, not misattributed.
#[test]
fn eviction_pressure_never_corrupts_answers() {
    let def = zoo::tiny_test_zoo().into_iter().next().unwrap();
    let net = Arc::new(Network::with_random_weights(def.clone(), 7).unwrap());
    // Budget fits only a handful of entries (8 KiB across 8 shards is
    // one ~640-byte tiny-mnist entry per shard); 32 distinct inputs
    // cycle through it repeatedly.
    let cache = Arc::new(InferenceCache::new(CacheMode::Exact, 8192).unwrap());
    let engine = InferenceEngine::start_cached(
        "test",
        Arc::clone(&net),
        Arc::new(CpuExecutor::default()),
        EngineConfig::default(),
        Arc::new(DeviceScheduler::dedicated()),
        Some(Arc::clone(&cache)),
    );
    let inputs: Vec<Tensor> = (0..32).map(|i| input_for(&def, 1, i)).collect();
    let want: Vec<Tensor> = inputs.iter().map(|t| net.forward(t).unwrap()).collect();
    for round in 0..3 {
        for (i, input) in inputs.iter().enumerate() {
            let got = engine.infer(input.clone()).unwrap();
            assert!(
                got.data()
                    .iter()
                    .zip(want[i].data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "round {round} input {i}: wrong answer under eviction churn"
            );
            let stats = cache.stats();
            assert!(
                stats.resident_bytes <= 8192,
                "resident {} bytes exceeds the 8192-byte budget",
                stats.resident_bytes
            );
        }
    }
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "32 entries cycling through an 8 KiB budget must evict"
    );
    engine.shutdown();
}

/// Hash-collision hardening at the engine-visible layer: with a hasher
/// that maps *every* key to the same bucket, distinct inputs must still
/// resolve to their own outputs. An implementation matching on hash
/// alone returns input A's tensor for input B and fails here.
#[test]
fn colliding_hashes_never_serve_the_wrong_tensor() {
    let cache = ExactCache::with_hasher(64 * 1024, |_| 42);
    let a = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 1);
    let b = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 2);
    assert_ne!(tensor_key(&a), tensor_key(&b), "inputs must differ");
    let out_a = Tensor::random_uniform(Shape::mat(1, 4), 1.0, 11);
    let out_b = Tensor::random_uniform(Shape::mat(1, 4), 1.0, 12);
    cache.insert(&a, &out_a);
    cache.insert(&b, &out_b);
    assert_eq!(cache.get(&a).unwrap().data(), out_a.data());
    assert_eq!(cache.get(&b).unwrap().data(), out_b.data());
    // And a key that was never inserted misses — equal hash is not
    // equal key.
    let c = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 3);
    assert!(cache.get(&c).is_none(), "hash-only matching detected");
}

/// Same property on the raw sharded store with byte-level accounting:
/// all-colliding keys chain in one bucket and stay individually
/// retrievable.
#[test]
fn colliding_keys_chain_and_stay_retrievable() {
    let lru: ShardedLru<u32> = ShardedLru::with_hasher(1 << 20, |_| 7);
    for i in 0..100u32 {
        lru.insert(vec![i], i, 16);
    }
    for i in 0..100u32 {
        assert_eq!(lru.get(&[i]), Some(i), "key {i} lost in collision chain");
    }
    assert_eq!(lru.get(&[1000]), None);
}

/// Concurrent hits: many threads hammer the same two inputs through one
/// caching engine. Every response must be one of the two reference
/// outputs (matched to its input), and the engine must survive the
/// insert/get races on the shared shards.
#[test]
fn concurrent_hits_race_safely_through_the_engine() {
    let def = zoo::tiny_test_zoo().into_iter().next().unwrap();
    let net = Arc::new(Network::with_random_weights(def.clone(), 7).unwrap());
    let engine = Arc::new(engine_with_cache(Arc::clone(&net), CacheMode::Both));
    let inputs: Vec<Tensor> = (0..2).map(|i| input_for(&def, 1, i)).collect();
    let want: Vec<Tensor> = inputs.iter().map(|t| net.forward(t).unwrap()).collect();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let inputs = inputs.clone();
            let want: Vec<Vec<u32>> = want
                .iter()
                .map(|w| w.data().iter().map(|f| f.to_bits()).collect())
                .collect();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let which = (t + i) % inputs.len();
                    let got = engine.infer(inputs[which].clone()).unwrap();
                    let bits: Vec<u32> = got.data().iter().map(|f| f.to_bits()).collect();
                    assert_eq!(
                        bits, want[which],
                        "thread {t} iteration {i}: racy wrong answer"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = engine.stats();
    assert!(
        stats.cache_hits >= 8 * 50 - 100,
        "8 threads x 50 requests over 2 inputs should mostly hit \
         (got {} hits)",
        stats.cache_hits
    );
    Arc::try_unwrap(engine).ok().unwrap().shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any interleaving of repeated and fresh inputs, every response
    /// from a caching engine is bitwise identical to the uncached
    /// reference — the cache can never change an answer, only its cost.
    #[test]
    fn random_interleavings_never_change_any_response(
        picks in prop::collection::vec(0usize..6, 1..40),
        mode in prop::sample::select(vec![CacheMode::Exact, CacheMode::Embed, CacheMode::Both]),
    ) {
        let def = zoo::tiny_test_zoo().into_iter().next().unwrap();
        let net = Arc::new(Network::with_random_weights(def.clone(), 7).unwrap());
        let engine = engine_with_cache(Arc::clone(&net), mode);
        let pool: Vec<Tensor> = (0..6).map(|i| input_for(&def, 1, i)).collect();
        let want: Vec<Tensor> = pool.iter().map(|t| net.forward(t).unwrap()).collect();
        for &p in &picks {
            let got = engine.infer(pool[p].clone()).unwrap();
            let same = got
                .data()
                .iter()
                .zip(want[p].data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "input {p} answered differently under {mode}");
        }
        engine.shutdown();
    }
}
