//! End-to-end tests for the scale-out router tier: a `djinn-router`
//! front end fanning one or many client connections out across several
//! `djinn-server` replicas.
//!
//! Every test name is prefixed `router_` so CI can run exactly this
//! suite by name (`cargo test --test router router_`).

use std::net::SocketAddr;
use std::time::Duration;

use djinn_tonic::djinn::{
    DjinnClient, DjinnError, DjinnRouter, DjinnServer, ModelRegistry, RoutePolicy, RouterConfig,
    ServerConfig,
};
use djinn_tonic::tensor::Tensor;

/// Starts a tiny-zoo replica serving only the named models (all of the
/// zoo when `only` is empty).
fn start_replica(only: &[&str]) -> DjinnServer {
    let mut registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo");
    if !only.is_empty() {
        registry.retain_only(only).expect("retain");
    }
    DjinnServer::start(registry, ServerConfig::default()).expect("replica start")
}

fn start_router(replicas: &[&DjinnServer], policy: RoutePolicy) -> DjinnRouter {
    let config = RouterConfig {
        replicas: replicas.iter().map(|s| s.local_addr()).collect(),
        policy,
        stats_interval: Duration::from_millis(10),
        ..RouterConfig::default()
    };
    DjinnRouter::start(config).expect("router start")
}

fn connect(addr: SocketAddr) -> DjinnClient {
    DjinnClient::connect_with_timeout(addr, Duration::from_secs(10)).expect("connect")
}

/// Deterministic per-model inputs: the tiny zoo's models are themselves
/// bit-identical across processes (fixed seeds), so any replica must
/// produce the same output for the same input.
fn input_for(model: &str) -> Tensor {
    let def = djinn_tonic::dnn::zoo::tiny_test_zoo()
        .into_iter()
        .find(|d| d.name() == model)
        .expect("known tiny model");
    Tensor::random_uniform(def.input_shape().clone(), 0.5, 7)
}

#[test]
fn router_end_to_end_matches_direct_inference() {
    let replica_a = start_replica(&[]);
    let replica_b = start_replica(&[]);
    let router = start_router(&[&replica_a, &replica_b], RoutePolicy::LoadAware);

    let mut via_router = connect(router.local_addr());
    let mut direct = connect(replica_a.local_addr());
    for model in ["tiny-mnist", "tiny-senna"] {
        let input = input_for(model);
        let routed = via_router.infer(model, &input).expect("routed infer");
        let reference = direct.infer(model, &input).expect("direct infer");
        assert_eq!(
            routed, reference,
            "{model}: routed output must equal a replica's direct output"
        );
    }

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn router_routes_by_model_affinity_across_shards() {
    // Each model lives on exactly one replica: routing must follow the
    // model map, not spray blindly.
    let mnist_only = start_replica(&["tiny-mnist"]);
    let senna_only = start_replica(&["tiny-senna"]);
    let router = start_router(&[&mnist_only, &senna_only], RoutePolicy::RoundRobin);

    let mut client = connect(router.local_addr());
    // The router's model list is the union of the shards.
    assert_eq!(
        client.list_models().expect("list"),
        vec!["tiny-mnist".to_string(), "tiny-senna".to_string()]
    );
    for _ in 0..4 {
        for model in ["tiny-mnist", "tiny-senna"] {
            let input = input_for(model);
            client.infer(model, &input).expect("sharded infer");
        }
    }

    router.shutdown();
    mnist_only.shutdown();
    senna_only.shutdown();
}

#[test]
fn router_correlates_pipelined_requests_across_replicas() {
    let replica_a = start_replica(&[]);
    let replica_b = start_replica(&[]);
    let router = start_router(&[&replica_a, &replica_b], RoutePolicy::LoadAware);

    // Reference outputs, computed directly against one replica.
    let inputs: Vec<(String, Tensor)> = (0..32)
        .map(|i| {
            let model = if i % 2 == 0 {
                "tiny-mnist"
            } else {
                "tiny-senna"
            };
            (model.to_string(), input_for(model))
        })
        .collect();
    let mut direct = connect(replica_a.local_addr());
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|(m, t)| direct.infer(m, t).expect("reference"))
        .collect();

    // Pipeline the same requests through the router on one connection;
    // replies may come back out of order, correlated by request ID.
    let mut client = connect(router.local_addr());
    let mut id_to_index = std::collections::HashMap::new();
    for (i, (model, input)) in inputs.iter().enumerate() {
        let id = client.submit(model, input).expect("submit");
        id_to_index.insert(id, i);
    }
    let mut seen = 0;
    while client.in_flight() > 0 {
        let done = client.recv_next().expect("recv");
        let i = id_to_index
            .remove(&done.request_id)
            .expect("every reply matches a submitted ID exactly once");
        let (tensor, _trace) = done.result.expect("routed infer");
        assert_eq!(tensor, expected[i], "request {i} got the wrong answer");
        seen += 1;
    }
    assert_eq!(seen, 32);

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn router_reports_unknown_models_with_the_callers_id() {
    let replica = start_replica(&[]);
    let router = start_router(&[&replica], RoutePolicy::LoadAware);

    let mut client = connect(router.local_addr());
    let input = input_for("tiny-mnist");
    let err = client.infer("no-such-model", &input).expect_err("unknown");
    match err {
        DjinnError::Remote { message } => {
            assert!(message.contains("unknown model"), "{message}");
        }
        other => panic!("expected Remote error, got {other:?}"),
    }
    // The connection is still usable afterwards: the error was a
    // correlated reply, not a poisoned stream.
    client.infer("tiny-mnist", &input).expect("still usable");

    router.shutdown();
    replica.shutdown();
}

#[test]
fn router_holds_256_concurrent_client_connections() {
    let replica_a = start_replica(&[]);
    let replica_b = start_replica(&[]);
    let router = start_router(&[&replica_a, &replica_b], RoutePolicy::LoadAware);

    // All 256 connections open at once in one router process — the
    // thread-per-connection design this replaces would need 256 threads.
    let input = input_for("tiny-mnist");
    let mut clients: Vec<DjinnClient> = (0..256).map(|_| connect(router.local_addr())).collect();
    // Submit one request on every connection before claiming any reply,
    // so all 256 connections are simultaneously active, then drain.
    let mut ids = Vec::with_capacity(clients.len());
    for c in clients.iter_mut() {
        ids.push(c.submit("tiny-mnist", &input).expect("submit"));
    }
    for (c, id) in clients.iter_mut().zip(ids) {
        let done = c.recv_next().expect("recv");
        assert_eq!(done.request_id, id);
        done.result.expect("infer via router");
    }

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn router_survives_replica_loss_and_reroutes() {
    // Both replicas serve the full zoo, so when one dies the other can
    // absorb everything.
    let replica_a = start_replica(&[]);
    let replica_b = start_replica(&[]);
    let router = start_router(&[&replica_a, &replica_b], RoutePolicy::LoadAware);

    let mut client = connect(router.local_addr());
    let input = input_for("tiny-mnist");
    for _ in 0..6 {
        client.infer("tiny-mnist", &input).expect("warm up");
    }

    replica_b.shutdown();
    // The router notices the dead connection on its next tick; requests
    // already in flight there would fail with a correlated error, but
    // none are, so every subsequent infer must reroute and succeed.
    // (A shutdown replica also EOFs the router's upstream socket, which
    // is exactly the failure path under test.)
    std::thread::sleep(Duration::from_millis(50));
    for i in 0..20 {
        client
            .infer("tiny-mnist", &input)
            .unwrap_or_else(|e| panic!("infer {i} after replica loss: {e}"));
    }

    router.shutdown();
    replica_a.shutdown();
}

#[test]
fn router_aggregates_stats_across_the_fleet() {
    let mnist_only = start_replica(&["tiny-mnist"]);
    let senna_only = start_replica(&["tiny-senna"]);
    let router = start_router(&[&mnist_only, &senna_only], RoutePolicy::LoadAware);

    let mut client = connect(router.local_addr());
    for model in ["tiny-mnist", "tiny-senna"] {
        let input = input_for(model);
        for _ in 0..5 {
            client.infer(model, &input).expect("infer");
        }
    }
    // Stats are served from the router's periodic polls; wait out at
    // least one full poll interval so the snapshot covers the traffic.
    std::thread::sleep(Duration::from_millis(100));
    let stats = client.stats().expect("stats");
    for model in ["tiny-mnist", "tiny-senna"] {
        let m = stats
            .iter()
            .find(|s| s.model == model)
            .unwrap_or_else(|| panic!("{model} missing from merged stats"));
        assert!(m.requests >= 5, "{model}: {} requests", m.requests);
    }

    router.shutdown();
    mnist_only.shutdown();
    senna_only.shutdown();
}
