//! Property-based tests over the timing models and the discrete-event
//! simulator: invariants that must hold for *any* configuration, not just
//! the paper's design points.

use djinn_tonic::dnn::profile::WorkloadProfile;
use djinn_tonic::dnn::zoo::{self, App};
use djinn_tonic::gpusim::{simulate, ServerConfig, ServiceWorkload};
use djinn_tonic::perf::{self, CpuSpec, GpuSpec};
use proptest::prelude::*;

fn any_app() -> impl Strategy<Value = App> {
    prop::sample::select(App::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gpu_forward_time_is_monotone_in_batch(app in any_app(), b in 1usize..8) {
        let def = zoo::netdef(app);
        let items = app.service_meta().inputs_per_query;
        let gpu = GpuSpec::k40();
        let t1 = perf::gpu_forward(&gpu, &WorkloadProfile::of(&def, items * b).unwrap()).seconds;
        let t2 = perf::gpu_forward(&gpu, &WorkloadProfile::of(&def, items * (b + 1)).unwrap()).seconds;
        prop_assert!(t2 >= t1 * 0.999, "batch {b}: {t1} -> {t2}");
    }

    #[test]
    fn per_query_gpu_time_never_grows_with_batch(app in any_app(), b in 1usize..7) {
        // Batching can only amortize, never penalize, per-query time.
        let def = zoo::netdef(app);
        let items = app.service_meta().inputs_per_query;
        let gpu = GpuSpec::k40();
        let t1 = perf::gpu_forward(&gpu, &WorkloadProfile::of(&def, items).unwrap()).seconds;
        let tb = perf::gpu_forward(&gpu, &WorkloadProfile::of(&def, items * b).unwrap()).seconds
            / b as f64;
        prop_assert!(tb <= t1 * 1.01, "batch {b}: per-query {tb} vs {t1}");
    }

    #[test]
    fn cpu_time_scales_linearly_with_batch(app in any_app(), b in 2usize..6) {
        let def = zoo::netdef(app);
        let items = app.service_meta().inputs_per_query;
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let t1 = perf::cpu_forward_seconds(&cpu, &WorkloadProfile::of(&def, items).unwrap());
        let tb = perf::cpu_forward_seconds(&cpu, &WorkloadProfile::of(&def, items * b).unwrap());
        let ratio = tb / (t1 * b as f64);
        // The CPU has no occupancy effects; only the dimension-efficiency
        // curve can make batching slightly sublinear.
        prop_assert!((0.3..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn occupancy_and_demands_are_fractions(app in any_app(), b in 1usize..6) {
        let def = zoo::netdef(app);
        let items = app.service_meta().inputs_per_query * b;
        let f = perf::gpu_forward(&GpuSpec::k40(), &WorkloadProfile::of(&def, items).unwrap());
        prop_assert!((0.0..=1.0).contains(&f.occupancy));
        prop_assert!((0.0..=1.0).contains(&f.ipc_ratio));
        for k in &f.kernels {
            prop_assert!((0.0..=1.0).contains(&k.compute_demand));
            prop_assert!((0.0..=1.0).contains(&k.memory_demand));
            prop_assert!(k.seconds > 0.0);
        }
    }

    #[test]
    fn simulator_throughput_is_monotone_in_gpus(app in any_app(), g in 1usize..4) {
        let base = ServerConfig::k40_server(1);
        let sweep = djinn_tonic::gpusim::server_sweep(&base, app, &[g, g + 1], 2, false).unwrap();
        prop_assert!(sweep[1].1 >= sweep[0].1 * 0.98, "{app} {sweep:?}");
    }

    #[test]
    fn mps_never_loses_to_a_single_instance(app in any_app(), n in 2usize..5) {
        let cfg = ServerConfig::k40_server(1);
        let gpu = GpuSpec::k40();
        let batch = app.service_meta().batch_size;
        let one = simulate(
            &cfg,
            &[(ServiceWorkload::for_app(&gpu, app, batch).unwrap(), 0)],
            15,
        );
        let many: Vec<_> = (0..n)
            .map(|_| (ServiceWorkload::for_app(&gpu, app, batch).unwrap(), 0))
            .collect();
        let rn = simulate(&cfg, &many, 15);
        prop_assert!(rn.qps >= one.qps * 0.95, "{app} n={n}: {} vs {}", rn.qps, one.qps);
    }

    #[test]
    fn open_loop_latency_exceeds_service_time(app in any_app(), frac in 0.1f64..0.8) {
        use djinn_tonic::gpusim::openloop::{capacity_qps, run, OpenLoopConfig};
        let config = OpenLoopConfig {
            max_batch: app.service_meta().batch_size,
            queries: 500,
            ..OpenLoopConfig::default()
        };
        let cap = capacity_qps(app, &config).unwrap();
        let r = run(app, cap * frac, &config).unwrap();
        prop_assert!(r.p99_latency_s >= r.p50_latency_s);
        prop_assert!(r.mean_latency_s > 0.0);
        prop_assert!(r.mean_batch >= 1.0);
        prop_assert!(r.mean_batch <= config.max_batch as f64 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn model_files_never_panic_on_hostile_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Corrupt or malicious model files must fail cleanly.
        let _ = djinn_tonic::dnn::modelfile::load(&data[..]);
    }

    #[test]
    fn netdef_parser_never_panics(text in "[ -~\n]{0,256}") {
        let _ = djinn_tonic::dnn::parser::parse_netdef(&text);
    }
}
