//! Cross-crate integration: the full DjiNN service over real TCP serving
//! all seven Tonic applications.

use std::time::Duration;

use djinn_tonic::djinn::{BatchConfig, DjinnClient, DjinnServer, ServerConfig};
use djinn_tonic::dnn::zoo::App;
use djinn_tonic::tensor::{Shape, Tensor};
use djinn_tonic::tonic_suite::{apps::TonicApp, image, speech, text};

fn start_server() -> DjinnServer {
    DjinnServer::start_with_tonic_models(ServerConfig::default())
        .expect("server starts on an ephemeral port")
}

#[test]
fn server_lists_all_seven_models() {
    let server = start_server();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let mut names = client.list_models().unwrap();
    names.sort();
    assert_eq!(
        names,
        vec!["asr", "chk", "dig", "face", "imc", "ner", "pos"]
    );
    server.shutdown();
}

#[test]
fn every_image_app_serves_over_tcp() {
    let server = start_server();
    let addr = server.local_addr();

    let mut dig = TonicApp::remote(App::Dig, addr).unwrap();
    let digits = image::synth_digits(2, 5);
    let labels = dig.run_dig(&digits).unwrap();
    assert_eq!(labels.len(), 2);
    assert!(labels.iter().all(|&l| l < 10));

    let mut face = TonicApp::remote(App::Face, addr).unwrap();
    let ids = face.run_face(&image::synth_faces(1, 5)).unwrap();
    assert_eq!(ids.len(), 1);
    assert!(ids[0] < 83);

    let mut imc = TonicApp::remote(App::Imc, addr).unwrap();
    let classes = imc.run_imc(&image::synth_photos(1, 5)).unwrap();
    assert_eq!(classes.len(), 1);
    assert!(classes[0] < 1000);

    server.shutdown();
}

#[test]
fn nlp_apps_serve_over_tcp_and_chk_chains_pos() {
    let server = start_server();
    let addr = server.local_addr();
    let sentence = text::synth_sentence(12, 3);

    let mut pos = TonicApp::remote(App::Pos, addr).unwrap();
    assert_eq!(pos.run_pos(&sentence).unwrap().len(), 12);

    let mut ner = TonicApp::remote(App::Ner, addr).unwrap();
    assert_eq!(ner.run_ner(&sentence).unwrap().len(), 12);

    let mut chk = TonicApp::remote(App::Chk, addr).unwrap();
    let chunks = chk.run_chk(&sentence).unwrap();
    assert_eq!(chunks.len(), 12);
    assert!(chunks.iter().all(|&t| t < 23));

    server.shutdown();
}

#[test]
fn asr_serves_over_tcp() {
    let server = start_server();
    let mut asr = TonicApp::remote(App::Asr, server.local_addr()).unwrap();
    let phones = asr.run_asr(&speech::synth_utterance(0.15, 8)).unwrap();
    assert!(!phones.is_empty());
    server.shutdown();
}

#[test]
fn remote_results_match_local_results() {
    // The service must be a transparent function: network transport and
    // batching cannot change the prediction.
    let config = ServerConfig {
        batching: Some(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
        }),
        ..ServerConfig::default()
    };
    let server = DjinnServer::start_with_tonic_models(config).unwrap();
    let addr = server.local_addr();

    let sentence = text::synth_sentence(10, 21);
    let mut remote = TonicApp::remote(App::Pos, addr).unwrap();
    let mut local = TonicApp::local(App::Pos).unwrap();
    assert_eq!(
        remote.run_pos(&sentence).unwrap(),
        local.run_pos(&sentence).unwrap()
    );
    server.shutdown();
}

#[test]
fn malformed_requests_do_not_kill_the_server() {
    use std::io::Write;
    let server = start_server();
    let addr = server.local_addr();

    // Write garbage bytes framed as a valid-length frame.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let garbage = b"this is not a djinn frame";
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(garbage).unwrap();
    raw.flush().unwrap();

    // The server must still serve well-formed clients.
    let mut client = DjinnClient::connect(addr).unwrap();
    let input = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
    assert!(client.infer("dig", &input).is_ok());
    server.shutdown();
}

#[test]
fn wrong_shape_gets_a_clean_remote_error() {
    let server = start_server();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let wrong = Tensor::zeros(Shape::nchw(1, 3, 10, 10));
    let err = client.infer("dig", &wrong).unwrap_err();
    assert!(err.to_string().contains("server error"), "{err}");
    server.shutdown();
}
