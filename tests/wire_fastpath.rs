//! Wire fast-path regression tests: the per-frame allocation budget and
//! the Nagle/delayed-ACK latency cliff.
//!
//! The allocation assertions pin the §11 budget from DESIGN.md: after
//! warm-up, encoding a frame into a reused scratch buffer and pulling a
//! frame out of a [`FrameReader`] must not touch the heap at all, and
//! borrowed output decoding may allocate only the one small `Vec<usize>`
//! inside `Shape`. The latency test pins the transport fix itself: with
//! `TCP_NODELAY` on both ends and the length prefix coalesced into the
//! payload write, a localhost round trip on a microsecond-scale model
//! must be nowhere near the 40 ms delayed-ACK bucket that the old
//! two-write path sat in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::{Duration, Instant};

use djinn_tonic::djinn::protocol::{encode_infer_framed_into, FrameReader, Response};
use djinn_tonic::djinn::{DjinnClient, DjinnServer, ModelRegistry, ServerConfig};
use djinn_tonic::tensor::{Shape, Tensor};

use bytes::BytesMut;

// ---------------------------------------------------------------------------
// Counting allocator. Each integration-test file is its own binary, so
// installing a global allocator here affects only these tests. Counters
// are thread-local so a concurrently running test thread (or the server
// threads spawned by the latency test) cannot leak allocations into
// another test's measurement window.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made on this thread while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

// ---------------------------------------------------------------------------
// Allocation-budget assertions.
// ---------------------------------------------------------------------------

#[test]
fn framed_encode_reuse_is_allocation_free() {
    let input = Tensor::from_vec(
        Shape::nchw(1, 1, 12, 12),
        (0..144).map(|i| i as f32 * 0.01).collect(),
    )
    .unwrap();
    let mut buf = BytesMut::new();
    // Warm up: first encode grows the scratch buffer to frame size.
    for id in 0..4 {
        encode_infer_framed_into(&mut buf, "tiny-mnist", &input, id).unwrap();
    }
    let n = allocs_during(|| {
        for id in 4..260 {
            encode_infer_framed_into(&mut buf, "tiny-mnist", &input, id).unwrap();
        }
    });
    assert_eq!(n, 0, "steady-state framed encode must not allocate");
}

#[test]
fn response_framed_encode_reuse_is_allocation_free() {
    let tensor = Tensor::from_vec(Shape::vec(10), vec![0.1; 10]).unwrap();
    let rsp = Response::Output {
        tensor,
        trace: djinn_tonic::djinn::ServerTrace::default(),
    };
    let mut buf = BytesMut::new();
    for _ in 0..4 {
        rsp.encode_framed_into(&mut buf).unwrap();
    }
    let n = allocs_during(|| {
        for _ in 0..256 {
            rsp.encode_framed_into(&mut buf).unwrap();
        }
    });
    assert_eq!(n, 0, "steady-state response encode must not allocate");
}

#[test]
fn frame_reader_borrowed_reads_are_allocation_free_steady_state() {
    // A long byte stream of identical pipelined frames, fed through the
    // reader from an in-memory cursor.
    let mut frame = BytesMut::new();
    let input = Tensor::from_vec(Shape::vec(32), vec![1.5; 32]).unwrap();
    encode_infer_framed_into(&mut frame, "tiny-mnist", &input, 7).unwrap();
    let mut stream = Vec::new();
    let total = 300usize;
    for _ in 0..total {
        stream.extend_from_slice(&frame);
    }

    let mut reader = FrameReader::new();
    let mut cursor = &stream[..];
    // Warm up: let the reader's internal buffer reach steady-state size.
    for _ in 0..8 {
        let got = reader.read_frame_ref(&mut cursor).unwrap();
        assert!(got.is_some());
    }
    let n = allocs_during(|| {
        for _ in 8..total {
            let got = reader.read_frame_ref(&mut cursor).unwrap();
            assert!(got.is_some());
        }
    });
    assert_eq!(n, 0, "steady-state borrowed frame reads must not allocate");
}

#[test]
fn borrowed_output_decode_allocates_at_most_shape() {
    let tensor = Tensor::from_vec(Shape::nchw(1, 2, 3, 4), vec![0.25; 24]).unwrap();
    let rsp = Response::Output {
        tensor,
        trace: djinn_tonic::djinn::ServerTrace::default(),
    };
    let payload = rsp.encode().unwrap();

    let mut data = Vec::with_capacity(64);
    // Warm up so `data` is at capacity.
    Response::decode_output_into(&payload, &mut data).unwrap();
    let n = allocs_during(|| {
        for _ in 0..64 {
            Response::decode_output_into(&payload, &mut data).unwrap();
        }
    });
    // Budget: one small `Vec<usize>` inside `Shape` per decode, nothing
    // else (see DESIGN.md §11).
    assert!(
        n <= 64,
        "borrowed decode may allocate only Shape's dims vec: {n} allocs / 64 decodes"
    );
}

// ---------------------------------------------------------------------------
// Nagle regression: back-to-back small frames must not pick up the 40 ms
// delayed-ACK stall. Bound is generous for CI jitter (median of many
// round trips under 35 ms) but fails loudly if either side loses
// TCP_NODELAY or the prefix/payload split write comes back.
// ---------------------------------------------------------------------------

fn start_tiny_server() -> DjinnServer {
    let registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo builds");
    DjinnServer::start(registry, ServerConfig::default()).expect("server starts")
}

fn tiny_input() -> Tensor {
    Tensor::from_vec(
        Shape::nchw(1, 1, 12, 12),
        (0..144).map(|i| (i % 7) as f32).collect(),
    )
    .unwrap()
}

#[test]
fn closed_loop_round_trip_dodges_delayed_ack_stall() {
    let server = start_tiny_server();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = tiny_input();

    // Warm up connection + model.
    for _ in 0..3 {
        client.infer("tiny-mnist", &input).unwrap();
    }

    let mut samples: Vec<Duration> = (0..15)
        .map(|_| {
            let t = Instant::now();
            client.infer("tiny-mnist", &input).unwrap();
            t.elapsed()
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    server.shutdown();

    assert!(
        median < Duration::from_millis(35),
        "closed-loop median {median:?} is in delayed-ACK territory; \
         NODELAY or the single-write frame path regressed"
    );
}

#[test]
fn back_to_back_frames_arrive_without_interframe_delay() {
    let server = start_tiny_server();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = tiny_input();
    for _ in 0..3 {
        client.infer("tiny-mnist", &input).unwrap();
    }

    // Two requests submitted back to back: both frames leave in their own
    // single write, both responses stream back on one connection. With
    // Nagle active anywhere this pair costs ~40 ms; fast path keeps the
    // whole window in the low milliseconds.
    let mut samples: Vec<Duration> = (0..9)
        .map(|_| {
            let t = Instant::now();
            let a = client.submit("tiny-mnist", &input).unwrap();
            let b = client.submit("tiny-mnist", &input).unwrap();
            let mut got = [false; 2];
            for _ in 0..2 {
                let rsp = client.recv_next().unwrap();
                rsp.result.as_ref().unwrap();
                if rsp.request_id == a {
                    got[0] = true;
                } else if rsp.request_id == b {
                    got[1] = true;
                }
            }
            assert!(got[0] && got[1], "both pipelined responses arrive");
            t.elapsed()
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    server.shutdown();

    assert!(
        median < Duration::from_millis(35),
        "pipelined pair median {median:?} indicates an inter-frame Nagle stall"
    );
}
