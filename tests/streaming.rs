//! End-to-end tests for streaming inference (protocol v7): one
//! `stream_req` in, N ordered `chunk` frames out — through a server
//! directly and through the router tier, interleaved with one-shot
//! traffic on the same connection.
//!
//! Every test name is prefixed `streaming_` so CI can run exactly this
//! suite by name (`cargo test --test streaming streaming_`).

use std::net::SocketAddr;
use std::time::Duration;

use djinn_tonic::djinn::{
    DjinnClient, DjinnError, DjinnRouter, DjinnServer, ModelRegistry, RoutePolicy, RouterConfig,
    ServerConfig, StreamChunk, StreamMode,
};
use djinn_tonic::dnn::{zoo, Network};
use djinn_tonic::tensor::{Shape, Tensor};

fn start_server() -> DjinnServer {
    let registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo");
    DjinnServer::start(registry, ServerConfig::default()).expect("server start")
}

fn connect(addr: SocketAddr) -> DjinnClient {
    DjinnClient::connect_with_timeout(addr, Duration::from_secs(10)).expect("connect")
}

/// The same `tiny-lm` network the tiny-zoo registry builds (same
/// definition, same position-derived seed), for computing expected
/// outputs locally.
fn reference_lm() -> Network {
    let defs = zoo::tiny_test_zoo();
    let pos = defs
        .iter()
        .position(|d| d.name() == "tiny-lm")
        .expect("tiny-lm in the tiny zoo");
    Network::with_random_weights(defs[pos].clone(), 0x717E + pos as u64).unwrap()
}

/// A one-hot prompt over tiny-lm's 16-token vocabulary.
fn prompt(token: usize) -> Tensor {
    let mut row = vec![0.0f32; 16];
    row[token] = 1.0;
    Tensor::from_vec(Shape::mat(1, 16), row).unwrap()
}

/// Greedy reference decode: forward, emit, feed the argmax back one-hot.
fn greedy_reference(net: &Network, mut cur: Tensor, steps: usize) -> Vec<Tensor> {
    let mut outs = Vec::new();
    for _ in 0..steps {
        let out = net.forward(&cur).unwrap();
        let data = out.data();
        let best = (0..data.len())
            .max_by(|&a, &b| data[a].total_cmp(&data[b]))
            .unwrap();
        let mut next = vec![0.0f32; data.len()];
        next[best] = 1.0;
        cur = Tensor::from_vec(out.shape().clone(), next).unwrap();
        outs.push(out);
    }
    outs
}

fn collect_chunks(
    client: &mut DjinnClient,
    model: &str,
    input: &Tensor,
    mode: StreamMode,
) -> Vec<StreamChunk> {
    client
        .stream(model, input, mode)
        .expect("stream start")
        .map(|c| c.expect("chunk"))
        .collect()
}

/// The headline scenario: a generative stream delivers one chunk per
/// decoded token, in order, each matching the local greedy reference —
/// and the per-token telemetry (seq, token count, first-token stamp,
/// engine stats) is all present.
#[test]
fn streaming_generative_chunks_match_direct_decode() {
    let server = start_server();
    let mut client = connect(server.local_addr());
    let net = reference_lm();
    let want = greedy_reference(&net, prompt(3), 8);

    let chunks = collect_chunks(
        &mut client,
        "tiny-lm",
        &prompt(3),
        StreamMode::Generative { max_tokens: 8 },
    );
    assert_eq!(chunks.len(), 8, "one chunk per generated token");
    for (i, (chunk, expect)) in chunks.iter().zip(&want).enumerate() {
        assert_eq!(chunk.seq as usize, i, "chunks must arrive in order");
        assert_eq!(chunk.last, i == 7, "only the final chunk is flagged");
        assert!(
            chunk.tensor.max_abs_diff(expect).unwrap() < 1e-5,
            "chunk {i} diverged from the greedy reference"
        );
        assert_eq!(chunk.trace.tokens, i as u64 + 1, "token count in trace");
    }

    // The per-token SLA class shows up in server stats: chunks counted,
    // gap quantiles populated, but the whole stream is ONE request.
    let stats = client.stats().expect("stats");
    let lm = stats
        .iter()
        .find(|s| s.model == "tiny-lm")
        .expect("tiny-lm");
    assert_eq!(lm.tokens_out, 8);
    assert_eq!(lm.requests, 1, "a stream counts as one request");

    server.shutdown();
}

/// Windowed streaming (the ASR shape): a multi-row input comes back as
/// row-windows whose concatenation equals the one-shot answer.
#[test]
fn streaming_windowed_rows_reassemble_the_full_output() {
    let server = start_server();
    let mut client = connect(server.local_addr());
    let input = Tensor::random_uniform(Shape::mat(8, 30), 1.0, 13);
    let full = client.infer("tiny-senna", &input).expect("direct infer");

    let chunks = collect_chunks(
        &mut client,
        "tiny-senna",
        &input,
        StreamMode::Windowed { window_rows: 3 },
    );
    // 8 rows at 3 per window: 3 + 3 + 2.
    assert_eq!(
        chunks
            .iter()
            .map(|c| c.tensor.shape().batch())
            .collect::<Vec<_>>(),
        vec![3, 3, 2]
    );
    let mut rows = Vec::new();
    for c in &chunks {
        rows.extend_from_slice(c.tensor.data());
    }
    assert_eq!(rows.len(), full.data().len());
    for (i, (got, want)) in rows.iter().zip(full.data()).enumerate() {
        assert!(
            (got - want).abs() < 1e-5,
            "reassembled value {i} diverged from the one-shot answer"
        );
    }
    server.shutdown();
}

/// A stream and one-shot infers interleave on one connection without
/// stealing each other's frames.
#[test]
fn streaming_interleaves_with_oneshot_traffic() {
    let server = start_server();
    let mut client = connect(server.local_addr());
    let net = reference_lm();
    let want = greedy_reference(&net, prompt(5), 4);
    let oneshot_in = Tensor::random_uniform(Shape::mat(1, 30), 1.0, 3);

    let stream_id = client
        .stream_infer(
            "tiny-lm",
            &prompt(5),
            StreamMode::Generative { max_tokens: 4 },
        )
        .expect("stream submit");
    // One-shot requests issued while the stream is mid-flight.
    let a = client.submit("tiny-senna", &oneshot_in).expect("submit");
    let first = client.recv_chunk(stream_id).expect("chunk 0");
    assert_eq!(first.seq, 0);
    let done = client.recv_next().expect("one-shot");
    assert_eq!(done.request_id, a);
    done.result.expect("one-shot result");
    for i in 1..4u32 {
        let chunk = client.recv_chunk(stream_id).expect("chunk");
        assert_eq!(chunk.seq, i);
        assert!(
            chunk.tensor.max_abs_diff(&want[i as usize]).unwrap() < 1e-5,
            "interleaved chunk {i} diverged"
        );
    }
    server.shutdown();
}

/// Streaming an unknown model fails with a correlated terminal error —
/// the connection survives.
#[test]
fn streaming_unknown_model_is_a_terminal_correlated_error() {
    let server = start_server();
    let mut client = connect(server.local_addr());
    let mut iter = client
        .stream(
            "ghost",
            &prompt(0),
            StreamMode::Generative { max_tokens: 4 },
        )
        .expect("stream send");
    match iter.next() {
        Some(Err(DjinnError::Remote { message })) => {
            assert!(message.contains("unknown model"), "{message}");
        }
        other => panic!("expected a terminal Remote error, got {other:?}"),
    }
    assert!(iter.next().is_none(), "errors end the stream");
    // The connection is still usable.
    let out = client.infer("tiny-lm", &prompt(0)).expect("still usable");
    assert_eq!(out.shape().dims(), &[1, 16]);
    server.shutdown();
}

/// The router acceptance criterion: a streamed request through the
/// router delivers ordered, ID-correlated chunks end-to-end, with every
/// chunk carrying the client's original request ID.
#[test]
fn streaming_through_router_stays_ordered_and_correlated() {
    let replica_a = start_server();
    let replica_b = start_server();
    let router = DjinnRouter::start(RouterConfig {
        replicas: vec![replica_a.local_addr(), replica_b.local_addr()],
        policy: RoutePolicy::LoadAware,
        stats_interval: Duration::from_millis(10),
        ..RouterConfig::default()
    })
    .expect("router start");

    let mut client = connect(router.local_addr());
    let net = reference_lm();
    let want = greedy_reference(&net, prompt(9), 6);
    // Several streams back-to-back so both replicas see stream traffic.
    for round in 0..4 {
        let chunks = collect_chunks(
            &mut client,
            "tiny-lm",
            &prompt(9),
            StreamMode::Generative { max_tokens: 6 },
        );
        assert_eq!(chunks.len(), 6, "round {round}");
        for (i, (chunk, expect)) in chunks.iter().zip(&want).enumerate() {
            assert_eq!(chunk.seq as usize, i, "round {round} order");
            assert!(
                chunk.tensor.max_abs_diff(expect).unwrap() < 1e-5,
                "round {round} chunk {i} diverged through the router"
            );
        }
        assert!(chunks[5].last);
    }
    // One-shot traffic still flows on the same routed connection.
    let input = Tensor::random_uniform(Shape::mat(1, 30), 1.0, 2);
    client
        .infer("tiny-senna", &input)
        .expect("one-shot via router");

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

/// Time-to-first-token must beat waiting for the whole stream: the
/// first chunk of a long generation arrives well before the final one.
#[test]
fn streaming_first_token_arrives_before_the_stream_ends() {
    let server = start_server();
    let mut client = connect(server.local_addr());
    let started = std::time::Instant::now();
    let stream_id = client
        .stream_infer(
            "tiny-lm",
            &prompt(1),
            StreamMode::Generative { max_tokens: 32 },
        )
        .expect("stream submit");
    let first = client.recv_chunk(stream_id).expect("first chunk");
    let ttft = started.elapsed();
    assert_eq!(first.seq, 0);
    let mut count = 1;
    let mut final_trace = None;
    while count < 32 {
        let chunk = client.recv_chunk(stream_id).expect("chunk");
        count += 1;
        if chunk.last {
            final_trace = Some(chunk.trace);
        }
    }
    let total = started.elapsed();
    let trace = final_trace.expect("final chunk seen");
    assert_eq!(trace.tokens, 32);
    assert!(
        trace.first_token_us <= trace.server_total_us,
        "first-token stamp ({}) cannot exceed the stream total ({})",
        trace.first_token_us,
        trace.server_total_us
    );
    assert!(
        ttft < total,
        "first chunk ({ttft:?}) must precede stream completion ({total:?})"
    );
    server.shutdown();
}
