//! The paper's headline quantitative claims, checked end to end against
//! this reproduction's models (DESIGN.md §4 lists the expected bands and
//! EXPERIMENTS.md records the measured values).

use std::sync::OnceLock;

use djinn_tonic::dnn::profile::WorkloadProfile;
use djinn_tonic::dnn::zoo::{self, App};
use djinn_tonic::gpusim::{standard_server_result, ServerConfig};
use djinn_tonic::perf::{self, CpuSpec, GpuSpec};
use djinn_tonic::wsc::{provision, AppPerfDb, Mix, NetworkTech, TcoParams, WscDesign};

fn cpu_query_qps(app: App) -> f64 {
    let cpu = CpuSpec::xeon_e5_2620_v2();
    let meta = app.service_meta();
    let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query).unwrap();
    1.0 / perf::cpu_forward_seconds(&cpu, &p)
}

fn gpu_batch1_qps(app: App) -> f64 {
    let gpu = GpuSpec::k40();
    let meta = app.service_meta();
    let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query).unwrap();
    1.0 / perf::gpu_forward(&gpu, &p).seconds
}

fn optimized_gpu_qps(app: App) -> f64 {
    let cfg = ServerConfig::k40_server(1);
    standard_server_result(&cfg, app, 4, app.service_meta().batch_size, false)
        .unwrap()
        .qps
}

fn db() -> &'static AppPerfDb {
    static DB: OnceLock<AppPerfDb> = OnceLock::new();
    DB.get_or_init(|| AppPerfDb::build().unwrap())
}

#[test]
fn claim_asr_batch1_speedup_near_120x() {
    // §4: "ASR achieves significant improvement, 120x speedup, over the
    // CPU baseline."
    let speedup = gpu_batch1_qps(App::Asr) / cpu_query_qps(App::Asr);
    assert!((90.0..150.0).contains(&speedup), "ASR batch-1 {speedup}x");
}

#[test]
fn claim_nlp_batch1_speedup_near_7x() {
    // §4: "NLP applications … achieve only around 7x improvement."
    for app in App::NLP {
        let speedup = gpu_batch1_qps(app) / cpu_query_qps(app);
        assert!((4.0..10.0).contains(&speedup), "{app} batch-1 {speedup}x");
    }
}

#[test]
fn claim_large_networks_exceed_20x_at_batch1() {
    // §4: "networks with more than 30M parameters achieve above 20x."
    for app in [App::Imc, App::Face, App::Asr] {
        let speedup = gpu_batch1_qps(app) / cpu_query_qps(app);
        assert!(speedup > 18.0, "{app} batch-1 only {speedup}x");
    }
}

#[test]
fn claim_batching_gains_nlp_15x_imc_5x() {
    // §5.1: "15x throughput improvement for NLP tasks and 5x for IMC."
    let gain = |app: App| {
        let gpu = GpuSpec::k40();
        let meta = app.service_meta();
        let items = meta.inputs_per_query;
        let b1 = perf::gpu_forward(
            &gpu,
            &WorkloadProfile::of(&zoo::netdef(app), items).unwrap(),
        )
        .seconds;
        let bn = perf::gpu_forward(
            &gpu,
            &WorkloadProfile::of(&zoo::netdef(app), items * meta.batch_size).unwrap(),
        )
        .seconds
            / meta.batch_size as f64;
        b1 / bn
    };
    let nlp = gain(App::Pos);
    assert!(nlp > 15.0, "NLP batching gain {nlp}x (paper: over 15x)");
    let imc = gain(App::Imc);
    assert!(
        (3.5..8.0).contains(&imc),
        "IMC batching gain {imc}x (paper: 5x)"
    );
    // ASR is already saturated: batching buys almost nothing.
    let asr = gain(App::Asr);
    assert!(asr < 1.3, "ASR batching gain {asr}x");
}

#[test]
fn claim_table3_batches_sit_at_the_knee() {
    // §5.1: the chosen batch sizes "achieve the high throughput while
    // limiting query latency impact" — at the Table 3 batch, throughput
    // is within 2x of the batch-128 plateau while latency stays well
    // below the batch-128 latency.
    use djinn_tonic::gpusim::{simulate, ServerConfig, ServiceWorkload};
    let cfg = ServerConfig::k40_server(1);
    for app in App::ALL {
        let run = |batch: usize| {
            let w = ServiceWorkload::for_app(&cfg.gpu, app, batch).unwrap();
            simulate(&cfg, &[(w, 0)], 20)
        };
        let chosen = run(app.service_meta().batch_size);
        let plateau = run(128);
        // FACE is exempt from the throughput check: the paper chose batch
        // 2 under GPU-memory/profiling constraints (§5.1 notes no FACE
        // data beyond batch 8), not at the throughput knee.
        if app != App::Face {
            assert!(
                chosen.qps > plateau.qps / 2.5,
                "{app}: chosen-batch QPS {} far below plateau {}",
                chosen.qps,
                plateau.qps
            );
        }
        assert!(
            chosen.mean_latency_s < plateau.mean_latency_s,
            "{app}: chosen-batch latency {} not below batch-128 {}",
            chosen.mean_latency_s,
            plateau.mean_latency_s
        );
    }
}

#[test]
fn claim_final_single_gpu_speedups() {
    // Abstract / Fig 10: over 100x for all but FACE (40x) after batching
    // and MPS. Our bands: FACE in [25, 100] and everything else above 75x
    // (DIG ≈ 96x and CHK ≈ 80x once real transfer overheads are charged).
    for app in App::ALL {
        let speedup = optimized_gpu_qps(app) / cpu_query_qps(app);
        if app == App::Face {
            assert!((25.0..100.0).contains(&speedup), "FACE {speedup}x");
        } else {
            assert!(speedup > 75.0, "{app} only {speedup}x");
        }
    }
}

#[test]
fn claim_8gpu_scaling_near_1000x_for_three_apps() {
    // §5.3: "For 3 out of 7 applications … 1000x throughput improvement
    // on our 8 GPU system over a CPU core."
    let base = ServerConfig::k40_server(1);
    let mut near_linear = 0;
    for app in App::ALL {
        let sweep = djinn_tonic::gpusim::server_sweep(&base, app, &[1, 8], 4, false).unwrap();
        let scale8 = sweep[1].1 / sweep[0].1;
        let total = sweep[1].1 / cpu_query_qps(app);
        if scale8 > 6.5 && total > 500.0 {
            near_linear += 1;
        }
    }
    assert!(
        near_linear >= 3,
        "only {near_linear} apps scale near-linearly to ~1000x"
    );
}

#[test]
fn claim_nlp_plateaus_by_4_gpus_without_pinning() {
    // §5.3/Fig 11: NLP throughput plateaus as the GPU count reaches 4.
    let base = ServerConfig::k40_server(1);
    for app in App::NLP {
        let sweep = djinn_tonic::gpusim::server_sweep(&base, app, &[4, 8], 4, false).unwrap();
        let growth = sweep[1].1 / sweep[0].1;
        assert!(growth < 1.4, "{app} still grows {growth}x from 4 to 8 GPUs");
    }
}

#[test]
fn claim_pinned_inputs_restore_linear_scaling() {
    // Fig 12: without PCIe limits every app scales near-linearly.
    let base = ServerConfig::k40_server(1);
    for app in App::ALL {
        let sweep = djinn_tonic::gpusim::server_sweep(&base, app, &[1, 8], 4, true).unwrap();
        let scale = sweep[1].1 / sweep[0].1;
        assert!(scale > 6.5, "{app} pinned scaling only {scale}x");
    }
}

#[test]
fn claim_tco_gains_4_to_20x() {
    // Abstract: "GPU-enabled WSCs improve TCO over CPU-only designs by
    // 4-20x, depending on the composition of the workload."
    let tech = NetworkTech::pcie_v3_10gbe();
    let params = TcoParams::paper();
    let gain = |mix: Mix| {
        let cpu = provision(WscDesign::CpuOnly, mix, 1.0, db(), &tech, &params);
        let dis = provision(WscDesign::DisaggregatedGpu, mix, 1.0, db(), &tech, &params);
        cpu.tco_total() / dis.tco_total()
    };
    let mixed = gain(Mix::Mixed);
    let nlp = gain(Mix::Nlp);
    assert!(mixed > 4.0, "MIXED gain {mixed}x");
    assert!((2.0..8.0).contains(&nlp), "NLP gain {nlp}x (paper: 4x max)");
    assert!(mixed > nlp, "MIXED {mixed}x must beat NLP {nlp}x");
}

#[test]
fn claim_network_upgrades_recover_nlp_performance() {
    // Abstract: "performance improvements of up to 4.5x over
    // bandwidth-constrained designs."
    let params = TcoParams::paper();
    let study = djinn_tonic::wsc::network_upgrade_study(
        Mix::Nlp,
        &NetworkTech::qpi_400gbe(),
        db(),
        &params,
    );
    assert!(
        (3.0..6.0).contains(&study.perf_improvement),
        "QPI/400GbE NLP improvement {}x",
        study.perf_improvement
    );
}
