//! Framing robustness: the server must stay byte-accurate when request
//! frames arrive in arbitrarily small pieces, arbitrarily slowly — the
//! slow-client / large-payload conditions of the paper's warehouse-scale
//! deployment. Before the stateful `FrameReader`, a read timeout firing
//! mid-frame silently discarded consumed bytes and desynced the stream.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use djinn_tonic::djinn::protocol::{read_frame, write_frame, Request, Response};
use djinn_tonic::djinn::{DjinnClient, DjinnServer, ModelRegistry, ServerConfig};
use djinn_tonic::dnn::{parser, Network};
use djinn_tonic::tensor::{Shape, Tensor};

const TINY_DEF: &str = "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n";

fn tiny_server() -> DjinnServer {
    let def = parser::parse_netdef(TINY_DEF).unwrap();
    let net = Network::with_random_weights(def, 1).unwrap();
    let mut reg = ModelRegistry::new();
    reg.register("tiny", net);
    DjinnServer::start(reg, ServerConfig::default()).unwrap()
}

/// The same network the server holds (same definition, same seed), for
/// computing expected outputs locally.
fn reference_net() -> Network {
    let def = parser::parse_netdef(TINY_DEF).unwrap();
    Network::with_random_weights(def, 1).unwrap()
}

fn infer_wire_bytes(input: &Tensor) -> Vec<u8> {
    let payload = Request::Infer {
        model: "tiny".into(),
        input: input.clone(),
    }
    .encode()
    .unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    wire
}

fn expect_output(wire_response: &[u8], input: &Tensor) {
    match Response::decode(wire_response).unwrap() {
        Response::Output(out) => {
            let want = reference_net().forward(input).unwrap();
            assert!(out.max_abs_diff(&want).unwrap() < 1e-5);
        }
        other => panic!("expected Output, got {other:?}"),
    }
}

/// The acceptance scenario: one `Infer` request delivered in >= 3 chunks
/// separated by sleeps longer than the server's old 500 ms read timeout,
/// with chunk boundaries inside the length prefix and inside the payload.
/// The stateless `read_frame` loop lost the consumed bytes at each fired
/// timeout; the `FrameReader` must answer correctly.
#[test]
fn request_split_across_slow_chunks_gets_a_correct_response() {
    let server = tiny_server();
    let addr = server.local_addr();
    let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 42);
    let wire = infer_wire_bytes(&input);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let cuts = [2, 10, wire.len() * 2 / 3];
    let mut prev = 0;
    for &cut in &cuts {
        stream.write_all(&wire[prev..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        prev = cut;
    }
    stream.write_all(&wire[prev..]).unwrap();
    stream.flush().unwrap();

    let rsp = read_frame(&mut stream).unwrap();
    expect_output(&rsp, &input);
    server.shutdown();
}

/// Byte-at-a-time delivery: the most adversarial split there is. Every
/// single byte is a separate TCP segment.
#[test]
fn byte_at_a_time_request_is_reassembled() {
    let server = tiny_server();
    let addr = server.local_addr();
    let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 7);
    let wire = infer_wire_bytes(&input);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    for &byte in &wire {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    let rsp = read_frame(&mut stream).unwrap();
    expect_output(&rsp, &input);
    server.shutdown();
}

/// Pipelining: two complete requests in one write. The server must answer
/// both — the second frame comes out of the reader's buffer, not the
/// socket.
#[test]
fn two_requests_in_one_write_get_two_responses() {
    let server = tiny_server();
    let addr = server.local_addr();
    let a = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 1);
    let b = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 2);
    let mut wire = infer_wire_bytes(&a);
    wire.extend_from_slice(&infer_wire_bytes(&b));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    let first = read_frame(&mut stream).unwrap();
    expect_output(&first, &a);
    let second = read_frame(&mut stream).unwrap();
    expect_output(&second, &b);
    server.shutdown();
}

/// A client with an I/O timeout must report a stall on a server that
/// accepts the connection but never answers, instead of hanging forever.
#[test]
fn client_timeout_fires_on_a_mute_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        // Accept and hold the connection open without ever responding.
        let (_stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
    });
    let mut client = DjinnClient::connect_with_timeout(addr, Duration::from_millis(300)).unwrap();
    let err = client.list_models().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("i/o error") || msg.contains("timed out"),
        "unexpected error: {msg}"
    );
    mute.join().unwrap();
}

/// Interleaved slow and fast clients: a slow writer mid-frame must not
/// disturb concurrent well-formed traffic on other connections.
#[test]
fn slow_client_does_not_disturb_fast_clients() {
    let server = tiny_server();
    let addr = server.local_addr();
    let slow_input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 11);
    let wire = infer_wire_bytes(&slow_input);

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mid = wire.len() / 2;
        stream.write_all(&wire[..mid]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(700));
        stream.write_all(&wire[mid..]).unwrap();
        stream.flush().unwrap();
        let rsp = read_frame(&mut stream).unwrap();
        expect_output(&rsp, &slow_input);
    });

    // Meanwhile a normal client hammers the server.
    let mut client = DjinnClient::connect(addr).unwrap();
    for seed in 0..10u64 {
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, seed);
        let out = client.infer("tiny", &input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
    }

    slow.join().unwrap();
    server.shutdown();
}
