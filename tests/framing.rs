//! Framing robustness: the server must stay byte-accurate when request
//! frames arrive in arbitrarily small pieces, arbitrarily slowly — the
//! slow-client / large-payload conditions of the paper's warehouse-scale
//! deployment. Before the stateful `FrameReader`, a read timeout firing
//! mid-frame silently discarded consumed bytes and desynced the stream.
//!
//! The `stale_responses` module pins the companion client-side bug: with
//! order-based correlation, a response that arrived *after* its request
//! timed out used to be returned as the answer to the **next** request.
//! Protocol v4 stamps every response with the ID of the request it
//! answers, and the client discards responses to abandoned requests.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use djinn_tonic::djinn::protocol::{
    read_frame, write_frame, Request, Response, StreamMode, VERSION,
};
use djinn_tonic::djinn::{
    DjinnClient, DjinnError, DjinnServer, ModelRegistry, ServerConfig, ServerTrace,
};
use djinn_tonic::dnn::{parser, Network};
use djinn_tonic::tensor::{Shape, Tensor};

const TINY_DEF: &str = "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n";

fn tiny_server() -> DjinnServer {
    let def = parser::parse_netdef(TINY_DEF).unwrap();
    let net = Network::with_random_weights(def, 1).unwrap();
    let mut reg = ModelRegistry::new();
    reg.register("tiny", net);
    DjinnServer::start(reg, ServerConfig::default()).unwrap()
}

/// The same network the server holds (same definition, same seed), for
/// computing expected outputs locally.
fn reference_net() -> Network {
    let def = parser::parse_netdef(TINY_DEF).unwrap();
    Network::with_random_weights(def, 1).unwrap()
}

fn infer_wire_bytes(input: &Tensor) -> Vec<u8> {
    let payload = Request::Infer {
        model: "tiny".into(),
        input: input.clone(),
        request_id: 1,
    }
    .encode()
    .unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    wire
}

fn expect_output(wire_response: &[u8], input: &Tensor) {
    match Response::decode(wire_response).unwrap() {
        Response::Output { tensor, .. } => {
            let want = reference_net().forward(input).unwrap();
            assert!(tensor.max_abs_diff(&want).unwrap() < 1e-5);
        }
        other => panic!("expected Output, got {other:?}"),
    }
}

/// The acceptance scenario: one `Infer` request delivered in >= 3 chunks
/// separated by sleeps longer than the server's old 500 ms read timeout,
/// with chunk boundaries inside the length prefix and inside the payload.
/// The stateless `read_frame` loop lost the consumed bytes at each fired
/// timeout; the `FrameReader` must answer correctly.
#[test]
fn request_split_across_slow_chunks_gets_a_correct_response() {
    let server = tiny_server();
    let addr = server.local_addr();
    let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 42);
    let wire = infer_wire_bytes(&input);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let cuts = [2, 10, wire.len() * 2 / 3];
    let mut prev = 0;
    for &cut in &cuts {
        stream.write_all(&wire[prev..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        prev = cut;
    }
    stream.write_all(&wire[prev..]).unwrap();
    stream.flush().unwrap();

    let rsp = read_frame(&mut stream).unwrap();
    expect_output(&rsp, &input);
    server.shutdown();
}

/// Byte-at-a-time delivery: the most adversarial split there is. Every
/// single byte is a separate TCP segment.
#[test]
fn byte_at_a_time_request_is_reassembled() {
    let server = tiny_server();
    let addr = server.local_addr();
    let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 7);
    let wire = infer_wire_bytes(&input);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    for &byte in &wire {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    let rsp = read_frame(&mut stream).unwrap();
    expect_output(&rsp, &input);
    server.shutdown();
}

/// Pipelining: two complete requests in one write. The server must answer
/// both — the second frame comes out of the reader's buffer, not the
/// socket.
#[test]
fn two_requests_in_one_write_get_two_responses() {
    let server = tiny_server();
    let addr = server.local_addr();
    let a = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 1);
    let b = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 2);
    let mut wire = infer_wire_bytes(&a);
    wire.extend_from_slice(&infer_wire_bytes(&b));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    let first = read_frame(&mut stream).unwrap();
    expect_output(&first, &a);
    let second = read_frame(&mut stream).unwrap();
    expect_output(&second, &b);
    server.shutdown();
}

/// A client with an I/O timeout must report a stall on a server that
/// accepts the connection but never answers, instead of hanging forever.
#[test]
fn client_timeout_fires_on_a_mute_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        // Accept and hold the connection open without ever responding.
        let (_stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
    });
    let mut client = DjinnClient::connect_with_timeout(addr, Duration::from_millis(300)).unwrap();
    let err = client.list_models().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("i/o error") || msg.contains("timed out"),
        "unexpected error: {msg}"
    );
    mute.join().unwrap();
}

/// Interleaved slow and fast clients: a slow writer mid-frame must not
/// disturb concurrent well-formed traffic on other connections.
#[test]
fn slow_client_does_not_disturb_fast_clients() {
    let server = tiny_server();
    let addr = server.local_addr();
    let slow_input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 11);
    let wire = infer_wire_bytes(&slow_input);

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mid = wire.len() / 2;
        stream.write_all(&wire[..mid]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(700));
        stream.write_all(&wire[mid..]).unwrap();
        stream.flush().unwrap();
        let rsp = read_frame(&mut stream).unwrap();
        expect_output(&rsp, &slow_input);
    });

    // Meanwhile a normal client hammers the server.
    let mut client = DjinnClient::connect(addr).unwrap();
    for seed in 0..10u64 {
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, seed);
        let out = client.infer("tiny", &input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
    }

    slow.join().unwrap();
    server.shutdown();
}

/// Protocol compatibility matrix: golden byte vectors for every wire
/// version, pinned byte-for-byte. These are the frames real v1/v2/v3
/// peers put on the wire; if encoding drifts, these tests — not a
/// production incident — catch it.
mod golden_vectors {
    use super::*;
    use djinn_tonic::djinn::ModelStats;

    const MAGIC: &[u8; 4] = b"DJNN";

    /// Golden infer request: model `"m"`, request ID 7, a 1x1 tensor
    /// holding 2.0. The infer layout is identical in v3 and v4 — only the
    /// version byte differs — so one builder covers both.
    fn infer_golden(version: u8) -> Vec<u8> {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(version);
        wire.push(1); // OP_INFER
        wire.extend_from_slice(&1u16.to_le_bytes()); // name length
        wire.push(b'm');
        wire.extend_from_slice(&7u64.to_le_bytes()); // request id
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        wire
    }

    fn infer_request() -> Request {
        Request::Infer {
            model: "m".into(),
            input: Tensor::from_vec(Shape::mat(1, 1), vec![2.0]).unwrap(),
            request_id: 7,
        }
    }

    #[test]
    fn v7_infer_encoding_matches_the_golden_bytes() {
        assert_eq!(VERSION, 7, "golden vectors pin wire version 7");
        let wire = infer_request().encode().unwrap();
        assert_eq!(&wire[..], &infer_golden(7)[..]);
    }

    #[test]
    fn v6_infer_golden_still_decodes_with_its_id() {
        let Request::Infer {
            model, request_id, ..
        } = Request::decode(&infer_golden(6)).unwrap()
        else {
            panic!("expected Infer");
        };
        assert_eq!((model.as_str(), request_id), ("m", 7));
    }

    #[test]
    fn v5_infer_golden_still_decodes_with_its_id() {
        let Request::Infer {
            model, request_id, ..
        } = Request::decode(&infer_golden(5)).unwrap()
        else {
            panic!("expected Infer");
        };
        assert_eq!((model.as_str(), request_id), ("m", 7));
    }

    #[test]
    fn v4_infer_golden_still_decodes_with_its_id() {
        let Request::Infer {
            model, request_id, ..
        } = Request::decode(&infer_golden(4)).unwrap()
        else {
            panic!("expected Infer");
        };
        assert_eq!((model.as_str(), request_id), ("m", 7));
    }

    #[test]
    fn v3_infer_golden_still_decodes_with_its_id() {
        let Request::Infer {
            model, request_id, ..
        } = Request::decode(&infer_golden(3)).unwrap()
        else {
            panic!("expected Infer");
        };
        assert_eq!((model.as_str(), request_id), ("m", 7));
    }

    /// Golden busy response, pinned byte-for-byte: the request ID the
    /// shed request carried comes right after the header — the field
    /// that makes `Busy` attributable under pipelining. The layout is
    /// identical from v4 through v7 (only the version byte differs), so
    /// the same bytes double as the v4/v5/v6 decode-compat checks.
    #[test]
    fn v7_busy_encoding_matches_the_golden_bytes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(7); // version 7
        wire.push(7); // OP_BUSY
        wire.extend_from_slice(&512u64.to_le_bytes()); // request id
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(b"imc");
        wire.extend_from_slice(&128u32.to_le_bytes());
        let rsp = Response::Busy {
            request_id: 512,
            model: "imc".into(),
            queue_depth: 128,
        };
        assert_eq!(&rsp.encode().unwrap()[..], &wire[..]);
        assert_eq!(Response::decode(&wire).unwrap(), rsp);
        for old in [6u8, 5, 4] {
            wire[4] = old; // same bytes at older versions decode identically
            assert_eq!(Response::decode(&wire).unwrap(), rsp);
        }
    }

    /// Golden error response, pinned byte-for-byte: the request ID
    /// follows the error status, so a pipelined client knows *which*
    /// request failed. Layout unchanged from v4 — the same bytes with
    /// the old version bytes double as the decode-compat checks.
    #[test]
    fn v7_error_encoding_matches_the_golden_bytes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(7); // version 7
        wire.push(2); // OP_RESULT
        wire.push(1); // STATUS_ERR
        wire.extend_from_slice(&9u64.to_le_bytes()); // request id
        wire.extend_from_slice(&4u16.to_le_bytes());
        wire.extend_from_slice(b"nope");
        let rsp = Response::Error {
            request_id: 9,
            message: "nope".into(),
        };
        assert_eq!(&rsp.encode().unwrap()[..], &wire[..]);
        assert_eq!(Response::decode(&wire).unwrap(), rsp);
        for old in [6u8, 5, 4] {
            wire[4] = old; // same bytes at older versions decode identically
            assert_eq!(Response::decode(&wire).unwrap(), rsp);
        }
    }

    /// Golden v3 error response: no ID on the wire — decodes as the
    /// uncorrelated sentinel 0.
    #[test]
    fn v3_error_golden_decodes_with_zero_id() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(3); // version 3 — last version without response IDs
        wire.push(2); // OP_RESULT
        wire.push(1); // STATUS_ERR
        wire.extend_from_slice(&4u16.to_le_bytes());
        wire.extend_from_slice(b"nope");
        assert_eq!(
            Response::decode(&wire).unwrap(),
            Response::Error {
                request_id: 0,
                message: "nope".into(),
            }
        );
    }

    #[test]
    fn v1_infer_golden_decodes_as_untraced() {
        // The same request as a v1 peer sends it: no request-id field.
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(1); // version 1
        wire.push(1); // OP_INFER
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(b'm');
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        let decoded = Request::decode(&wire).unwrap();
        let Request::Infer {
            model, request_id, ..
        } = decoded
        else {
            panic!("expected Infer");
        };
        assert_eq!(model, "m");
        assert_eq!(request_id, 0, "a v1 frame decodes as untraced (ID 0)");
    }

    /// Golden v2 output response: status OK, no trace block, the same
    /// 1x1 tensor. Must decode with an all-zero trace.
    #[test]
    fn v2_output_golden_decodes_with_zero_trace() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(2); // version 2
        wire.push(2); // OP_RESULT
        wire.push(0); // STATUS_OK
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        match Response::decode(&wire).unwrap() {
            Response::Output { tensor, trace } => {
                assert_eq!(tensor.data(), &[2.0]);
                assert_eq!(trace, ServerTrace::default());
            }
            other => panic!("expected Output, got {other:?}"),
        }
    }

    /// Golden v1 stats response: one 32-byte entry (4 u64 words). The
    /// queue and breakdown fields a v1 peer cannot send decode as zero —
    /// the documented zero-fill behaviour.
    #[test]
    fn v1_stats_golden_zero_fills_newer_fields() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(1); // version 1
        wire.push(6); // OP_STATS_RESULT
        wire.extend_from_slice(&1u16.to_le_bytes()); // one entry
        wire.extend_from_slice(&3u16.to_le_bytes()); // name length
        wire.extend_from_slice(b"dig");
        for word in [42u64, 1, 10_000, 900] {
            wire.extend_from_slice(&word.to_le_bytes());
        }
        let Response::Stats {
            request_id,
            unknown_model_requests,
            stats,
        } = Response::decode(&wire).unwrap()
        else {
            panic!("expected Stats");
        };
        assert_eq!(
            (request_id, unknown_model_requests),
            (0, 0),
            "v1 peers carry neither response IDs nor the unknown-model counter"
        );
        let s = &stats[0];
        assert_eq!((s.model.as_str(), s.requests, s.errors), ("dig", 42, 1));
        assert_eq!((s.queue_depth, s.shed, s.p99_queue_wait_us), (0, 0, 0));
        assert_eq!(
            (s.p50_batch_wait_us, s.p50_service_us, s.p50_wire_us),
            (0, 0, 0)
        );
    }

    /// Golden v2 stats response: one 72-byte entry (9 u64 words). Queue
    /// telemetry decodes; the v3 breakdown quantiles zero-fill.
    #[test]
    fn v2_stats_golden_zero_fills_v3_fields() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(2); // version 2
        wire.push(6); // OP_STATS_RESULT
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(b"pos");
        for word in [10u64, 0, 5_000, 800, 3, 2, 7, 120, 4_500] {
            wire.extend_from_slice(&word.to_le_bytes());
        }
        let Response::Stats { stats, .. } = Response::decode(&wire).unwrap() else {
            panic!("expected Stats");
        };
        let s = &stats[0];
        assert_eq!((s.queue_depth, s.in_flight, s.shed), (3, 2, 7));
        assert_eq!((s.p50_queue_wait_us, s.p99_queue_wait_us), (120, 4_500));
        assert_eq!(
            (s.p50_batch_wait_us, s.p99_service_us, s.p99_wire_us),
            (0, 0, 0),
            "v3 breakdown fields zero-fill from a v2 peer"
        );
    }

    /// Golden v5 output response: a 48-byte trace block with no cache
    /// word. The v6 `cache_hit` flag must decode as `false` — the
    /// documented zero-fill for frames from a pre-cache peer.
    #[test]
    fn v5_output_golden_decodes_with_zero_cache_flag() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(5); // version 5 — last version without the cache word
        wire.push(2); // OP_RESULT
        wire.push(0); // STATUS_OK
        for word in [7u64, 10, 20, 30, 40, 100] {
            // id, queue, batch, lease, service, server_total
            wire.extend_from_slice(&word.to_le_bytes());
        }
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        match Response::decode(&wire).unwrap() {
            Response::Output { tensor, trace } => {
                assert_eq!(tensor.data(), &[2.0]);
                assert_eq!(
                    trace,
                    ServerTrace {
                        request_id: 7,
                        queue_us: 10,
                        batch_us: 20,
                        lease_us: 30,
                        service_us: 40,
                        server_total_us: 100,
                        cache_hit: false,
                        first_token_us: 0,
                        tokens: 0,
                    }
                );
            }
            other => panic!("expected Output, got {other:?}"),
        }
    }

    /// Golden v5 stats response: one 17-word entry (no cache counters).
    /// The v6 cache fields must zero-fill.
    #[test]
    fn v5_stats_golden_zero_fills_cache_counters() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(5); // version 5
        wire.push(6); // OP_STATS_RESULT
        wire.extend_from_slice(&11u64.to_le_bytes()); // request id
        wire.extend_from_slice(&9u64.to_le_bytes()); // unknown models
        wire.extend_from_slice(&1u16.to_le_bytes()); // one entry
        wire.extend_from_slice(&3u16.to_le_bytes()); // name length
        wire.extend_from_slice(b"ner");
        for word in [
            42u64, 1, 10_000, 900, 3, 2, 7, 120, 4_500, 80, 1_900, 2_400, 3_100, 60, 700, 35, 880,
        ] {
            wire.extend_from_slice(&word.to_le_bytes());
        }
        let Response::Stats { stats, .. } = Response::decode(&wire).unwrap() else {
            panic!("expected Stats");
        };
        let s = &stats[0];
        assert_eq!((s.model.as_str(), s.requests), ("ner", 42));
        assert_eq!((s.p50_lease_wait_us, s.p99_lease_wait_us), (35, 880));
        assert_eq!(
            (s.cache_hits, s.cache_misses, s.cache_evictions),
            (0, 0, 0),
            "v6 cache counters zero-fill from a v5 peer"
        );
    }

    #[test]
    fn v2_busy_golden_decodes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(2); // version 2 — the version that introduced busy
        wire.push(7); // OP_BUSY
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(b"imc");
        wire.extend_from_slice(&128u32.to_le_bytes());
        assert_eq!(
            Response::decode(&wire).unwrap(),
            Response::Busy {
                request_id: 0,
                model: "imc".into(),
                queue_depth: 128,
            }
        );
    }

    /// Golden v7 stream request: model `"m"`, request ID 7, generative
    /// mode with a 3-token budget, a 1x1 tensor holding 2.0. The mode
    /// byte and `u32` parameter sit between the request ID and the
    /// tensor, so the ID keeps the same offset as a plain infer frame
    /// (the router rewrites both through one code path).
    #[test]
    fn v7_stream_infer_encoding_matches_the_golden_bytes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(7); // version 7
        wire.push(8); // OP_STREAM_INFER
        wire.extend_from_slice(&1u16.to_le_bytes()); // name length
        wire.push(b'm');
        wire.extend_from_slice(&7u64.to_le_bytes()); // request id
        wire.push(1); // mode byte: generative
        wire.extend_from_slice(&3u32.to_le_bytes()); // max_tokens
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        let req = Request::StreamInfer {
            model: "m".into(),
            input: Tensor::from_vec(Shape::mat(1, 1), vec![2.0]).unwrap(),
            request_id: 7,
            mode: StreamMode::Generative { max_tokens: 3 },
        };
        assert_eq!(&req.encode().unwrap()[..], &wire[..]);
        assert_eq!(Request::decode(&wire).unwrap(), req);
        // Stream frames are a v7 construct: the same bytes stamped with
        // an older version byte must be rejected, not misparsed.
        wire[4] = 6;
        assert!(Request::decode(&wire).is_err());
    }

    /// Golden v7 output chunk: the full 72-byte trace block, then the
    /// chunk sequence number and the final flag, then the tensor. The
    /// request ID stays at payload offset 7 — same as `Output` — so the
    /// router's in-place ID rewrite covers chunks for free.
    #[test]
    fn v7_chunk_encoding_matches_the_golden_bytes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(7); // version 7
        wire.push(9); // OP_OUTPUT_CHUNK
        wire.push(0); // STATUS_OK
        for word in [7u64, 10, 0, 30, 40, 100, 0, 55, 3] {
            // id, queue, batch, lease, service, total, cache,
            // first_token_us, tokens
            wire.extend_from_slice(&word.to_le_bytes());
        }
        wire.extend_from_slice(&2u32.to_le_bytes()); // seq
        wire.push(1); // CHUNK_FLAG_FINAL
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        let rsp = Response::Chunk {
            tensor: Tensor::from_vec(Shape::mat(1, 1), vec![2.0]).unwrap(),
            trace: ServerTrace {
                request_id: 7,
                queue_us: 10,
                batch_us: 0,
                lease_us: 30,
                service_us: 40,
                server_total_us: 100,
                cache_hit: false,
                first_token_us: 55,
                tokens: 3,
            },
            seq: 2,
            last: true,
        };
        assert_eq!(&rsp.encode().unwrap()[..], &wire[..]);
        assert_eq!(Response::decode(&wire).unwrap(), rsp);
        // Chunks are likewise v7-only on the wire.
        wire[4] = 6;
        assert!(Response::decode(&wire).is_err());
    }

    /// Golden v6 output response: a 56-byte trace block with no
    /// per-token words. The v7 `first_token_us`/`tokens` fields must
    /// decode as zero — the documented zero-fill for frames from a
    /// pre-streaming peer.
    #[test]
    fn v6_output_golden_decodes_with_zero_token_fields() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(6); // version 6 — last version without token words
        wire.push(2); // OP_RESULT
        wire.push(0); // STATUS_OK
        for word in [7u64, 10, 20, 30, 40, 100, 1] {
            // id, queue, batch, lease, service, server_total, cache_hit
            wire.extend_from_slice(&word.to_le_bytes());
        }
        wire.push(2); // rank
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2.0f32.to_le_bytes());
        match Response::decode(&wire).unwrap() {
            Response::Output { tensor, trace } => {
                assert_eq!(tensor.data(), &[2.0]);
                assert_eq!(
                    trace,
                    ServerTrace {
                        request_id: 7,
                        queue_us: 10,
                        batch_us: 20,
                        lease_us: 30,
                        service_us: 40,
                        server_total_us: 100,
                        cache_hit: true,
                        first_token_us: 0,
                        tokens: 0,
                    }
                );
            }
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn decoders_reject_versions_beyond_ours() {
        let mut wire = infer_golden(4);
        wire[4] = VERSION + 1;
        assert!(
            Request::decode(&wire).is_err(),
            "future version must be rejected, not misparsed"
        );
        wire[4] = 0;
        assert!(Request::decode(&wire).is_err(), "version 0 is invalid");
    }

    /// Round-trip stability: encode → decode → encode is byte-identical
    /// for every frame type, so re-encoding a relayed frame never
    /// perturbs the wire image.
    #[test]
    fn reencoding_is_byte_stable() {
        let stats_entry = ModelStats {
            model: "dig".into(),
            requests: 42,
            errors: 1,
            total_latency_us: 10_000,
            max_latency_us: 900,
            queue_depth: 3,
            in_flight: 2,
            shed: 7,
            p50_queue_wait_us: 120,
            p99_queue_wait_us: 4_500,
            p50_batch_wait_us: 80,
            p99_batch_wait_us: 1_900,
            p50_service_us: 2_400,
            p99_service_us: 3_100,
            p50_wire_us: 60,
            p99_wire_us: 700,
            p50_lease_wait_us: 35,
            p99_lease_wait_us: 880,
            cache_hits: 5,
            cache_misses: 37,
            cache_evictions: 1,
            tokens_out: 640,
            p50_token_gap_us: 210,
            p99_token_gap_us: 2_900,
        };
        let requests = [
            infer_request(),
            Request::ListModels { request_id: 3 },
            Request::Stats { request_id: 4 },
        ];
        for req in requests {
            let once = req.encode().unwrap();
            let again = Request::decode(&once).unwrap().encode().unwrap();
            assert_eq!(once, again, "request re-encode drifted");
        }
        let responses = [
            Response::Output {
                tensor: Tensor::from_vec(Shape::mat(1, 2), vec![1.0, 2.0]).unwrap(),
                trace: ServerTrace {
                    request_id: 7,
                    queue_us: 1,
                    batch_us: 2,
                    lease_us: 4,
                    service_us: 3,
                    server_total_us: 9,
                    cache_hit: true,
                    first_token_us: 0,
                    tokens: 0,
                },
            },
            Response::Error {
                request_id: 9,
                message: "nope".into(),
            },
            Response::Models {
                request_id: 5,
                names: vec!["a".into(), "b".into()],
            },
            Response::Stats {
                request_id: 6,
                unknown_model_requests: 2,
                stats: vec![stats_entry],
            },
            Response::Busy {
                request_id: 512,
                model: "imc".into(),
                queue_depth: 128,
            },
        ];
        for rsp in responses {
            let once = rsp.encode().unwrap();
            let again = Response::decode(&once).unwrap().encode().unwrap();
            assert_eq!(once, again, "response re-encode drifted");
        }
    }
}

/// The headline regression: before ID correlation, a response that
/// arrived after its request timed out sat in the read buffer and was
/// returned — wrong tensor and all — to whatever call read next.
mod stale_responses {
    use super::*;

    /// A scripted single-connection peer: decodes infer requests and
    /// answers them with caller-chosen tensors at caller-chosen times,
    /// so the test controls exactly when each response hits the wire.
    fn accept_one(listener: &TcpListener) -> TcpStream {
        let (stream, _) = listener.accept().unwrap();
        stream.set_nodelay(true).unwrap();
        stream
    }

    fn read_infer(stream: &mut TcpStream) -> u64 {
        let payload = read_frame(stream).unwrap();
        let Request::Infer { request_id, .. } = Request::decode(&payload).unwrap() else {
            panic!("expected Infer");
        };
        request_id
    }

    fn write_output(stream: &mut TcpStream, request_id: u64, value: f32) {
        let rsp = Response::Output {
            tensor: Tensor::from_vec(Shape::mat(1, 1), vec![value]).unwrap(),
            trace: ServerTrace {
                request_id,
                ..ServerTrace::default()
            },
        };
        write_frame(stream, &rsp.encode().unwrap()).unwrap();
    }

    /// A response delayed past the client's timeout must be *discarded*,
    /// never returned as the answer to the next call. Against the old
    /// order-based correlation this test fails: the second `infer`
    /// returned the first request's 111.0 tensor.
    #[test]
    fn late_response_is_never_returned_to_the_next_call() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = accept_one(&listener);
            let first = read_infer(&mut stream);
            // Answer the first request only after the client's 500 ms
            // timeout has long fired.
            std::thread::sleep(Duration::from_millis(800));
            write_output(&mut stream, first, 111.0);
            let second = read_infer(&mut stream);
            write_output(&mut stream, second, 222.0);
        });

        let mut client =
            DjinnClient::connect_with_timeout(addr, Duration::from_millis(500)).unwrap();
        let input = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]).unwrap();

        let err = client.infer("m", &input).unwrap_err();
        assert!(
            matches!(&err, DjinnError::Io(e) if e.kind() == std::io::ErrorKind::TimedOut),
            "first call must surface the timeout, got: {err}"
        );

        // The stale 111.0 response arrives *during* this second call; it
        // must be drained, and the call must return its own answer.
        let (out, record) = client.infer_traced("m", &input).unwrap();
        assert_eq!(
            out.data(),
            &[222.0],
            "second call returned the first call's stale response"
        );
        assert_ne!(record.request_id, 0);
        peer.join().unwrap();
    }

    /// The stale-only variant: the peer answers the timed-out request
    /// and then goes mute. The next call must time out — reporting the
    /// truth that *its* answer never came — rather than dressing the
    /// stale tensor up as a success.
    #[test]
    fn next_call_times_out_rather_than_accept_a_stale_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = accept_one(&listener);
            let first = read_infer(&mut stream);
            std::thread::sleep(Duration::from_millis(700));
            write_output(&mut stream, first, 111.0);
            let _second = read_infer(&mut stream);
            // Never answer the second request; keep the socket open so
            // the client's timeout — not a closed connection — decides.
            std::thread::sleep(Duration::from_millis(1500));
        });

        let mut client =
            DjinnClient::connect_with_timeout(addr, Duration::from_millis(400)).unwrap();
        let input = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]).unwrap();

        client.infer("m", &input).unwrap_err();
        let err = client.infer("m", &input).unwrap_err();
        assert!(
            matches!(&err, DjinnError::Io(e) if e.kind() == std::io::ErrorKind::TimedOut),
            "stale response must not satisfy the second call, got: {err}"
        );
        peer.join().unwrap();
    }

    /// Regression for the control-call correlation rule: an uncorrelated
    /// (id-0) `Error` arriving while a control call is blocked must
    /// answer the *control call*, even with infers in flight. The old
    /// rule only accepted an id-0 error when nothing was pending, so the
    /// error fell into the order-front fallback instead: it was
    /// misattributed to the oldest in-flight infer, and when the infer's
    /// real answer later arrived it correlated with nothing — the stats
    /// call came back `ConnectionPoisoned` and the infer's result was a
    /// lie.
    #[test]
    fn uncorrelated_error_answers_the_blocked_control_call() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = accept_one(&listener);
            let held = read_infer(&mut stream);
            // The stats frame arrives next; this peer cannot decode it
            // (say, a corrupted or unsupported control frame) and
            // answers with an uncorrelated error, like the real server
            // does for any undecodable request.
            let payload = read_frame(&mut stream).unwrap();
            assert!(matches!(
                Request::decode(&payload).unwrap(),
                Request::Stats { .. }
            ));
            let err = Response::Error {
                request_id: 0,
                message: "stats frame not supported".into(),
            };
            write_frame(&mut stream, &err.encode().unwrap()).unwrap();
            // The held infer completes only afterwards.
            write_output(&mut stream, held, 222.0);
        });

        let mut client = DjinnClient::connect_with_timeout(addr, Duration::from_secs(2)).unwrap();
        let input = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]).unwrap();
        let held_id = client.submit("m", &input).unwrap();

        // The control call must surface the server's error promptly —
        // not time out, not poison the connection.
        let err = client.stats().unwrap_err();
        assert!(
            matches!(&err, DjinnError::Remote { message } if message.contains("not supported")),
            "the uncorrelated error answers the control call, got: {err}"
        );

        // And the in-flight infer is untouched: its real completion
        // arrives with its own ID and the right tensor.
        let done = client.recv_next().unwrap();
        assert_eq!(done.request_id, held_id);
        let (out, _) = done.result.unwrap();
        assert_eq!(
            out.data(),
            &[222.0],
            "the pending infer must keep its own answer"
        );
        peer.join().unwrap();
    }

    /// Regression for the abandoned-ID window: the client remembers only
    /// the last 64 abandoned request IDs, so after 65 timeouts the
    /// *oldest* abandoned ID has been evicted — and its late response
    /// used to fall through the stale-drain into the poison path, killing
    /// a connection that had done nothing wrong. Any unknown response ID
    /// at or below the connection's issued high-water mark is now drained
    /// as stale; only IDs the client never issued poison.
    #[test]
    fn evicted_abandoned_ids_late_response_is_still_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = accept_one(&listener);
            // Swallow 65 requests without answering: every one of them
            // times out client-side and lands in the abandoned window,
            // evicting the first.
            let ids: Vec<u64> = (0..65).map(|_| read_infer(&mut stream)).collect();
            // The 66th request gets real service — but its answer is
            // preceded by the *evicted* oldest ID's late response.
            let live = read_infer(&mut stream);
            write_output(&mut stream, ids[0], 111.0);
            write_output(&mut stream, live, 222.0);
        });

        let mut client =
            DjinnClient::connect_with_timeout(addr, Duration::from_millis(40)).unwrap();
        let input = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]).unwrap();
        for i in 0..65 {
            let err = client.infer("m", &input).unwrap_err();
            assert!(
                matches!(&err, DjinnError::Io(e) if e.kind() == std::io::ErrorKind::TimedOut),
                "call {i} must time out, got: {err}"
            );
        }
        // Give the pending answers time to arrive for this final call.
        client.set_io_timeout(Some(Duration::from_secs(2))).unwrap();
        let out = client.infer("m", &input).expect(
            "a late response to an evicted abandoned ID must be drained, not poison the connection",
        );
        assert_eq!(out.data(), &[222.0]);
        peer.join().unwrap();
    }

    /// A response whose ID matches no in-flight request means the stream
    /// can no longer be trusted: the call fails with a poisoned-connection
    /// error and every later call fails fast the same way.
    #[test]
    fn uncorrelatable_response_poisons_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = accept_one(&listener);
            let _id = read_infer(&mut stream);
            write_output(&mut stream, 0xDEAD_BEEF, 333.0);
        });

        let mut client = DjinnClient::connect_with_timeout(addr, Duration::from_secs(2)).unwrap();
        let input = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]).unwrap();

        let err = client.infer("m", &input).unwrap_err();
        assert!(
            matches!(err, DjinnError::ConnectionPoisoned { .. }),
            "unknown correlation ID must poison, got: {err}"
        );
        // Fail-fast: no further I/O is attempted on a poisoned stream.
        let err = client.infer("m", &input).unwrap_err();
        assert!(matches!(err, DjinnError::ConnectionPoisoned { .. }));
        peer.join().unwrap();
    }
}
