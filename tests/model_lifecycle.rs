//! The full pretrained-model life cycle across crates: define in the text
//! format → train → save to a model file → load into a registry → serve
//! over TCP → predict correctly.

use djinn_tonic::djinn::{DjinnClient, DjinnServer, ModelRegistry, ServerConfig};
use djinn_tonic::dnn::train::{SgdConfig, Trainer};
use djinn_tonic::dnn::{modelfile, parser, Network};
use djinn_tonic::tensor::{Shape, Tensor};

/// Left-vs-right blob task on an 8x8 image.
fn sample(seed: u64) -> (Tensor, usize) {
    let label = (seed % 2) as usize;
    let cx = if label == 0 { 2i64 } else { 5 };
    let img = Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| {
        let y = (i / 8) as i64;
        let x = (i % 8) as i64;
        if (x - cx).abs() <= 1 && (y - 4).abs() <= 2 {
            1.0
        } else {
            0.0
        }
    });
    (img, label)
}

#[test]
fn train_save_load_serve_roundtrip() {
    let def = parser::parse_netdef(
        "
        name: leftright
        input: 1 8 8
        layer conv1 conv out=4 kernel=3 stride=1 pad=1
        layer relu1 relu
        layer pool1 maxpool kernel=2 stride=2
        layer fc1 fc out=2
        layer prob softmax
    ",
    )
    .unwrap();
    let net = Network::with_random_weights(def, 3).unwrap();
    let mut trainer = Trainer::new(
        net,
        SgdConfig {
            lr: 0.1,
            dropout_p: 0.0,
            ..SgdConfig::default()
        },
    );
    for step in 0..80 {
        let items: Vec<(Tensor, usize)> = (0..8).map(|i| sample(step * 8 + i)).collect();
        let batch =
            Tensor::stack_batch(&items.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>()).unwrap();
        let labels: Vec<usize> = items.iter().map(|(_, l)| *l).collect();
        trainer.step(&batch, &labels).unwrap();
    }
    let trained = trainer.into_network();

    // Save and reload through the model-file format.
    let mut file = Vec::new();
    modelfile::save(&trained, &mut file).unwrap();
    let loaded = modelfile::load(&file[..]).unwrap();
    assert_eq!(loaded, trained);

    // Serve the loaded model and classify held-out samples over TCP.
    let mut registry = ModelRegistry::new();
    registry.register("leftright", loaded);
    let server = DjinnServer::start(registry, ServerConfig::default()).unwrap();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let mut correct = 0;
    for seed in 9000..9030 {
        let (img, label) = sample(seed);
        let probs = client.infer("leftright", &img).unwrap();
        if probs.row_argmax(0) == label {
            correct += 1;
        }
    }
    assert!(correct >= 27, "only {correct}/30 correct after training");

    // Server-side stats reflect the traffic.
    let stats = client.stats().unwrap();
    let entry = stats.iter().find(|s| s.model == "leftright").unwrap();
    assert_eq!(entry.requests, 30);
    assert_eq!(entry.errors, 0);
    assert!(entry.mean_latency_us() > 0.0);
    server.shutdown();
}

#[test]
fn stats_count_errors_separately() {
    let server = DjinnServer::start_with_tonic_models(ServerConfig::default()).unwrap();
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    // One good request, one bad-shape request.
    let good = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
    client.infer("dig", &good).unwrap();
    let bad = Tensor::zeros(Shape::nchw(1, 3, 9, 9));
    assert!(client.infer("dig", &bad).is_err());
    let stats = client.stats().unwrap();
    let dig = stats.iter().find(|s| s.model == "dig").unwrap();
    assert_eq!(dig.requests, 1);
    assert_eq!(dig.errors, 1);
    server.shutdown();
}
