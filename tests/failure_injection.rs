//! Failure injection against the running service: slow clients, dropped
//! connections mid-frame, concurrent chaos — the server must stay up and
//! keep serving well-formed traffic.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use djinn_tonic::djinn::{BatchConfig, DjinnClient, DjinnServer, ServerConfig};
use djinn_tonic::tensor::{Shape, Tensor};

fn start() -> DjinnServer {
    let config = ServerConfig {
        batching: Some(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
        }),
        ..ServerConfig::default()
    };
    DjinnServer::start_with_tonic_models(config).unwrap()
}

#[test]
fn connection_dropped_mid_frame_does_not_wedge_the_server() {
    let server = start();
    let addr = server.local_addr();
    // Advertise a large frame, send half of it, vanish.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&(1_000_000u32).to_le_bytes()).unwrap();
        s.write_all(&vec![0xAB; 1000]).unwrap();
        // drop: connection closes with the frame incomplete
    }
    // Other clients are unaffected.
    let mut client = DjinnClient::connect(addr).unwrap();
    let out = client
        .infer("dig", &Tensor::zeros(Shape::nchw(1, 1, 28, 28)))
        .unwrap();
    assert_eq!(out.shape().as_matrix().1, 10);
    server.shutdown();
}

#[test]
fn zero_length_frames_are_survivable() {
    let server = start();
    let addr = server.local_addr();
    {
        let mut s = TcpStream::connect(addr).unwrap();
        // Three zero-length frames (decode fails; server answers errors or
        // drops — either way it must not crash).
        for _ in 0..3 {
            s.write_all(&0u32.to_le_bytes()).unwrap();
        }
        s.flush().unwrap();
    }
    let mut client = DjinnClient::connect(addr).unwrap();
    assert!(client.list_models().is_ok());
    server.shutdown();
}

#[test]
fn a_burst_of_mixed_good_and_bad_clients() {
    let server = start();
    let addr = server.local_addr();
    let mut handles = Vec::new();
    for i in 0..8u64 {
        handles.push(std::thread::spawn(move || {
            if i % 2 == 0 {
                // Hostile client: garbage frames.
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let junk = vec![(i % 251) as u8; 64];
                    let _ = s.write_all(&(junk.len() as u32).to_le_bytes());
                    let _ = s.write_all(&junk);
                }
                true
            } else {
                // Honest client: real queries.
                let mut c = DjinnClient::connect(addr).unwrap();
                let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, i);
                (0..4).all(|_| c.infer("dig", &input).is_ok())
            }
        }));
    }
    for h in handles {
        assert!(h.join().unwrap());
    }
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_without_allocation_bomb() {
    let server = start();
    let addr = server.local_addr();
    {
        let mut s = TcpStream::connect(addr).unwrap();
        // Advertise 4 GiB; the server must refuse rather than allocate.
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.flush().unwrap();
    }
    let mut client = DjinnClient::connect(addr).unwrap();
    assert!(client.list_models().is_ok());
    server.shutdown();
}
