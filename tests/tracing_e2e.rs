//! End-to-end request tracing over real TCP, against the tiny test zoo
//! so the whole file runs deterministically in well under a second.
//!
//! The acceptance criterion for the trace model: for every traced
//! request, the per-stage spans the client assembles (queue + batch +
//! service + wire) must account for the client-observed end-to-end
//! latency — the unattributed remainder (`server_other_us`: frame
//! decode/encode and reply bookkeeping inside the server) stays within a
//! small tolerance, and no span is ever negative or larger than the
//! whole.

use std::time::{Duration, Instant};

use djinn_tonic::djinn::protocol::{read_frame, write_frame, Request, Response};
use djinn_tonic::djinn::{
    BatchConfig, DjinnClient, DjinnServer, ModelRegistry, ServerConfig, TraceRecord,
};
use djinn_tonic::tensor::{Shape, Tensor};

/// Everything the server cannot attribute to queue/batch/service/wire
/// must fit in this budget per request. The work it covers is frame
/// decode + encode of a few-KB tensor — microseconds in practice; the
/// bound is generous to stay green on a loaded CI machine.
const OTHER_BUDGET: Duration = Duration::from_millis(20);

fn tiny_server(batching: Option<BatchConfig>) -> DjinnServer {
    let registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo builds");
    let config = ServerConfig {
        batching,
        ..ServerConfig::default()
    };
    DjinnServer::start(registry, config).expect("server starts on an ephemeral port")
}

fn senna_input(rows: usize) -> Tensor {
    Tensor::random_uniform(Shape::mat(rows, 30), 1.0, 0x7E57)
}

/// Span marks are independent clock reads truncated to whole
/// microseconds, so at wire-fast-path latencies (single-digit µs end to
/// end) each sub-µs stage can read as 1 µs and the stage sum can exceed
/// the — also truncated — end-to-end reading by a few ticks. This slack
/// absorbs exactly that quantization; a real attribution bug (a span
/// double-counted or measured on the wrong mark) is orders of magnitude
/// larger.
const QUANT_SLACK_US: u64 = 5;

fn assert_spans_account_for_e2e(record: &TraceRecord) {
    assert_ne!(record.request_id, 0, "traced requests carry a nonzero ID");
    let sum = record.stage_sum_us();
    assert!(
        sum <= record.e2e_us + QUANT_SLACK_US,
        "stage sum {sum}us exceeds end-to-end {}us",
        record.e2e_us
    );
    let other = Duration::from_micros(record.server_other_us());
    assert!(
        other <= OTHER_BUDGET,
        "unattributed server time {other:?} exceeds {OTHER_BUDGET:?} \
         (queue {} + batch {} + service {} + wire {} vs e2e {})",
        record.queue_us,
        record.batch_us,
        record.service_us,
        record.wire_us(),
        record.e2e_us
    );
    // Durations are u64 microseconds, so non-negativity is structural;
    // what can still go wrong is a span exceeding the whole.
    for (stage, us) in [
        ("queue", record.queue_us),
        ("batch", record.batch_us),
        ("service", record.service_us),
        ("wire", record.wire_us()),
    ] {
        assert!(
            us <= record.e2e_us + QUANT_SLACK_US,
            "{stage} span {us}us exceeds end-to-end {}us",
            record.e2e_us
        );
    }
}

/// Acceptance criterion: queue + batch + service + wire ≈ end-to-end,
/// for every request of a short run, on the immediate-dispatch path.
#[test]
fn spans_account_for_end_to_end_latency_immediate() {
    let server = tiny_server(None);
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = senna_input(4);
    for _ in 0..20 {
        let (out, record) = client.infer_traced("tiny-senna", &input).unwrap();
        assert_eq!(out.shape().dims(), &[4, 9]);
        assert_eq!(record.model, "tiny-senna");
        assert_spans_account_for_e2e(&record);
    }
    server.shutdown();
}

/// Same criterion on the batched path, where the coalescing wait must be
/// attributed to the batch span instead of silently inflating service.
#[test]
fn spans_account_for_end_to_end_latency_batched() {
    let max_delay = Duration::from_millis(5);
    let server = tiny_server(Some(BatchConfig {
        max_batch: 4,
        max_delay,
    }));
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = senna_input(2);
    // A lone client: every request waits out the coalescing delay, so
    // the batch span must absorb roughly max_delay. The tolerance on the
    // remainder is unchanged — the wait may not leak into `other`.
    for _ in 0..5 {
        let (_, record) = client.infer_traced("tiny-senna", &input).unwrap();
        assert_spans_account_for_e2e(&record);
        assert!(
            record.batch_us >= max_delay.as_micros() as u64 / 2,
            "lone batched request should wait out the coalescing delay, \
             batch span was {}us",
            record.batch_us
        );
    }
    server.shutdown();
}

/// The server must echo the client's request ID verbatim in the trace
/// block — checked over the raw protocol so the client-side "patch a
/// zero ID" fallback cannot mask a server that drops the ID.
#[test]
fn server_echoes_request_id_on_the_wire() {
    let server = tiny_server(None);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let req = Request::Infer {
        model: "tiny-senna".into(),
        input: senna_input(1),
        request_id: 0x00C0FFEE,
    };
    write_frame(&mut stream, &req.encode().unwrap()).unwrap();
    let frame = read_frame(&mut stream).unwrap();
    let Response::Output { trace, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an output response");
    };
    assert_eq!(trace.request_id, 0x00C0FFEE);
    assert!(
        trace.queue_us + trace.batch_us + trace.service_us <= trace.server_total_us,
        "span sum must fit inside the server's own total"
    );
    server.shutdown();
}

/// The tiny zoo exists so this whole file stays fast: a full traced
/// round-trip against it must complete in milliseconds, keeping the
/// serving-stack integration suite under a second.
#[test]
fn tiny_zoo_roundtrip_is_fast() {
    let server = tiny_server(None);
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = senna_input(2);
    // Warm up connection + first dispatch.
    client.infer_traced("tiny-senna", &input).unwrap();
    let t0 = Instant::now();
    for _ in 0..10 {
        client.infer_traced("tiny-senna", &input).unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "10 tiny-zoo round-trips took {elapsed:?}"
    );
    server.shutdown();
}

/// A caching server for the cache-trace tests: tiny zoo, the given
/// cache mode, a budget far larger than the tiny outputs need.
fn caching_server(mode: &str) -> DjinnServer {
    let registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo builds");
    let config = ServerConfig {
        cache_mode: mode.parse().expect("valid cache mode"),
        cache_bytes: 4 * 1024 * 1024,
        ..ServerConfig::default()
    };
    DjinnServer::start(registry, config).expect("server starts on an ephemeral port")
}

/// A cache hit answers at admission: it never queues, never waits for a
/// lease, never runs the executor. Its trace must say so — near-zero
/// queue + batch + lease + service — while still carrying the hit flag
/// and the request ID, and the span accounting must keep holding.
#[test]
fn cache_hit_trace_reports_near_zero_server_stages() {
    let server = caching_server("both");
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let input = senna_input(2);

    let (cold_out, cold) = client.infer_traced("tiny-senna", &input).unwrap();
    assert!(!cold.cache_hit, "first sight of an input must miss");

    let (hot_out, hot) = client.infer_traced("tiny-senna", &input).unwrap();
    assert!(hot.cache_hit, "byte-identical replay must hit");
    assert_eq!(
        cold_out.data(),
        hot_out.data(),
        "cached bytes must be the computed bytes"
    );
    assert_spans_account_for_e2e(&hot);
    // The hit path touches no engine stage; each span should be at most
    // clock-quantization noise, far under any real queue/service time.
    for (stage, us) in [
        ("queue", hot.queue_us),
        ("batch", hot.batch_us),
        ("lease", hot.lease_us),
        ("service", hot.service_us),
    ] {
        assert!(
            us <= 1_000,
            "cache hit spent {us}us in {stage}; hits must skip the engine"
        );
    }
    server.shutdown();
}

/// Server-side cache counters must reconcile with what the client saw:
/// hits + misses equals the successful exact-cache lookups, and the
/// number of hit-flagged trace records equals the server's hit counter.
#[test]
fn cache_stats_reconcile_with_client_observed_hits() {
    // Exact-only: every request makes exactly one cache lookup, so the
    // counters reconcile 1:1 with the request stream. (`both` would add
    // per-row embed-layer lookups for each miss on top.)
    let server = caching_server("exact");
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    // 3 distinct inputs, each sent 4 times: 3 misses, 9 hits.
    let inputs: Vec<Tensor> = (0..3)
        .map(|i| Tensor::random_uniform(Shape::mat(1, 30), 1.0, 1000 + i))
        .collect();
    let mut client_hits = 0u64;
    for round in 0..4 {
        for input in &inputs {
            let (_, record) = client.infer_traced("tiny-senna", input).unwrap();
            assert_eq!(
                record.cache_hit,
                round > 0,
                "every input must miss exactly once, then always hit"
            );
            client_hits += u64::from(record.cache_hit);
        }
    }
    let stats = client.stats().unwrap();
    let senna = stats
        .iter()
        .find(|s| s.model == "tiny-senna")
        .expect("stats entry for tiny-senna");
    assert_eq!(senna.cache_hits, client_hits, "server hits = client hits");
    assert_eq!(
        senna.cache_hits + senna.cache_misses,
        12,
        "every request probes the exact cache exactly once"
    );
    assert_eq!(senna.cache_evictions, 0, "budget was never exceeded");
    server.shutdown();
}

/// The embed layer counts **rows**, not requests — and the two units
/// must never be conflated when reconciling server counters against
/// client-observed hits. A 5-row SENNA batch replayed 3 times makes 4
/// requests but 20 row lookups; the client-observed `cache_hit` flag
/// (an *exact-layer, whole-request* signal) stays false throughout,
/// while the server's embed counters advance 5 per request. Hit rates
/// therefore reconcile per row (15/20), not per request — dividing the
/// 15 row hits by 4 requests would claim a nonsensical 375%.
#[test]
fn embed_cache_stats_count_rows_not_requests() {
    let server = caching_server("embed");
    let mut client = DjinnClient::connect(server.local_addr()).unwrap();
    let batch = senna_input(5); // multi-row: 5 embed lookups per request

    let mut client_hit_requests = 0u64;
    let requests = 4u64;
    for _ in 0..requests {
        let (_, record) = client.infer_traced("tiny-senna", &batch).unwrap();
        // Embed hits accelerate the prefix but the request still runs
        // the engine: the whole-request hit flag must stay false.
        assert!(
            !record.cache_hit,
            "embed row hits must not masquerade as whole-request hits"
        );
        client_hit_requests += u64::from(record.cache_hit);
    }

    let stats = client.stats().unwrap();
    let senna = stats
        .iter()
        .find(|s| s.model == "tiny-senna")
        .expect("stats entry for tiny-senna");
    let rows_sent = requests * 5;
    assert_eq!(
        senna.cache_hits + senna.cache_misses,
        rows_sent,
        "embed lookups tally rows sent, not requests sent"
    );
    // Cold batch: 5 row misses. Replays: 5 row hits each.
    assert_eq!(senna.cache_misses, 5);
    assert_eq!(senna.cache_hits, rows_sent - 5);
    assert_eq!(
        client_hit_requests, 0,
        "no request-level hits in embed mode"
    );
    assert!(
        senna.cache_hits > requests,
        "row hits exceed the request count — the only correct denominator \
         for the server's embed counters is rows, never requests"
    );
    server.shutdown();
}
