//! Client library for the DjiNN service.

use std::net::{SocketAddr, TcpStream};

use tensor::Tensor;

use crate::protocol::{read_frame, write_frame, ModelStats, Request, Response};
use crate::{DjinnError, Result};

/// A synchronous client holding one TCP connection to a DjiNN server.
///
/// Tonic Suite applications use this to send preprocessed inputs and
/// receive predictions; each client owns its connection, so one client per
/// thread.
#[derive(Debug)]
pub struct DjinnClient {
    stream: TcpStream,
}

impl DjinnClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(DjinnClient { stream })
    }

    /// Sends one inference request and waits for the prediction.
    ///
    /// The input's batch axis carries the number of stacked queries; the
    /// response preserves it.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Remote`] for server-reported failures and
    /// protocol/I/O errors otherwise.
    pub fn infer(&mut self, model: &str, input: &Tensor) -> Result<Tensor> {
        let req = Request::Infer {
            model: model.to_string(),
            input: input.clone(),
        };
        match self.roundtrip(&req)? {
            Response::Output(t) => Ok(t),
            Response::Error(message) => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Asks the server which models it serves.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn list_models(&mut self) -> Result<Vec<String>> {
        match self.roundtrip(&Request::ListModels)? {
            Response::Models(names) => Ok(names),
            Response::Error(message) => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Fetches per-model service statistics.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn stats(&mut self) -> Result<Vec<ModelStats>> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(message) => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }
}
