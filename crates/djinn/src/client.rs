//! Client library for the DjiNN service.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use tensor::Tensor;

use crate::protocol::{write_frame, FrameReader, ModelStats, Request, Response};
use crate::trace::{self, TraceRecord};
use crate::{DjinnError, Result};

/// A synchronous client holding one TCP connection to a DjiNN server.
///
/// Tonic Suite applications use this to send preprocessed inputs and
/// receive predictions; each client owns its connection, so one client per
/// thread.
///
/// By default every call blocks until the server answers. Production
/// callers should bound that wait with [`DjinnClient::connect_with_timeout`]
/// (or [`DjinnClient::set_io_timeout`]) so a hung server cannot wedge a
/// Tonic application forever: the timeout is a *stall* bound — it fires
/// only when the server makes no progress for the whole window, so a
/// large tensor trickling in steadily never trips it.
#[derive(Debug)]
pub struct DjinnClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl DjinnClient {
    /// Connects to a running server with no I/O timeouts (calls may block
    /// indefinitely on an unresponsive server).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with `timeout` bounding the connect itself and every
    /// subsequent read/write stall.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including the connect timing out.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        let mut client = Self::from_stream(stream)?;
        client.set_io_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        Ok(DjinnClient {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Sets (or clears, with `None`) the per-call read/write stall bound.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sends one inference request and waits for the prediction.
    ///
    /// The input's batch axis carries the number of stacked queries; the
    /// response preserves it.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Busy`] when the server shed the request at
    /// admission (back off and retry), [`DjinnError::Remote`] for other
    /// server-reported failures, and protocol/I/O errors otherwise.
    pub fn infer(&mut self, model: &str, input: &Tensor) -> Result<Tensor> {
        self.infer_traced(model, input).map(|(tensor, _)| tensor)
    }

    /// Like [`DjinnClient::infer`], but also returns the request's
    /// [`TraceRecord`]: the client-measured end-to-end latency combined
    /// with the server's span breakdown. A fresh request ID is drawn from
    /// [`trace::next_request_id`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn infer_traced(&mut self, model: &str, input: &Tensor) -> Result<(Tensor, TraceRecord)> {
        self.infer_traced_with_id(model, input, trace::next_request_id())
    }

    /// Like [`DjinnClient::infer_traced`], with a caller-supplied request
    /// ID — the hook retrying callers use to keep one ID (hence one
    /// trace) across `Busy` retries.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn infer_traced_with_id(
        &mut self,
        model: &str,
        input: &Tensor,
        request_id: u64,
    ) -> Result<(Tensor, TraceRecord)> {
        let req = Request::Infer {
            model: model.to_string(),
            input: input.clone(),
            request_id,
        };
        // The client-send span mark; client-recv is when the decoded
        // response is in hand.
        let sent = Instant::now();
        match self.roundtrip(&req)? {
            Response::Output { tensor, mut trace } => {
                let e2e_us = sent.elapsed().as_micros() as u64;
                // A pre-v3 server echoes no trace; keep the ID the caller
                // chose so the record still identifies the request.
                if trace.request_id == 0 {
                    trace.request_id = request_id;
                }
                Ok((tensor, TraceRecord::new(model, e2e_us, trace)))
            }
            Response::Error(message) => Err(DjinnError::Remote { message }),
            Response::Busy { model, queue_depth } => Err(DjinnError::Busy {
                model,
                queue_depth: queue_depth as usize,
            }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Asks the server which models it serves.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn list_models(&mut self) -> Result<Vec<String>> {
        match self.roundtrip(&Request::ListModels)? {
            Response::Models(names) => Ok(names),
            Response::Error(message) => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Fetches per-model service statistics.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn stats(&mut self) -> Result<Vec<ModelStats>> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(message) => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode()?)?;
        match self.reader.read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            // A fired read timeout means the server sent nothing for the
            // whole window: report the stall instead of waiting forever.
            // Partial response bytes stay buffered in the reader, so the
            // stream is still coherent if the caller retries.
            None => Err(DjinnError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "server made no progress within the read timeout",
            ))),
        }
    }
}
