//! Client library for the DjiNN service.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use tensor::Tensor;

use crate::protocol::{
    encode_infer_framed_into, FrameReader, ModelStats, Request, Response, StreamMode,
};
use crate::trace::{self, ServerTrace, TraceRecord};
use crate::{DjinnError, Result};

/// Abandoned request IDs remembered for exact stale-response draining.
/// A response whose ID fell off this window is still drained as long as
/// it is at or below the connection's issued high-water mark — only an
/// ID this client *never issued* poisons the connection.
const ABANDONED_CAP: usize = 64;

/// A completion demultiplexed from a pipelined connection: which request
/// it answers, and its per-request outcome.
#[derive(Debug)]
pub struct PipelinedResponse {
    /// The client-assigned ID of the request this answers.
    pub request_id: u64,
    /// The request's outcome: prediction plus trace, or its own typed
    /// error ([`DjinnError::Busy`] when shed, [`DjinnError::Remote`] for
    /// server-side failures). Per-request errors do not poison the
    /// connection.
    pub result: Result<(Tensor, TraceRecord)>,
}

/// What the client remembers about an in-flight infer until its
/// response arrives.
#[derive(Debug)]
struct PendingInfer {
    model: String,
    sent: Instant,
    /// Size of the request frame on the wire (length prefix included),
    /// combined with the response frame's size into the trace record's
    /// bytes-per-request accounting.
    sent_bytes: u64,
}

/// One partial response of a streaming inference (protocol v7): the
/// chunk's tensor, its position in the stream, and the server's span
/// breakdown (whose `first_token_us`/`tokens` fields carry the
/// per-token telemetry).
#[derive(Debug)]
pub struct StreamChunk {
    /// Zero-based position of this chunk within its stream.
    pub seq: u32,
    /// Whether this is the stream's final chunk.
    pub last: bool,
    /// The partial output (one generated token's scores, or one
    /// window's rows).
    pub tensor: Tensor,
    /// The server's span breakdown for this chunk.
    pub trace: ServerTrace,
}

/// What the client remembers about an in-flight stream.
#[derive(Debug)]
struct PendingStream {
    /// The next chunk sequence number this stream must deliver;
    /// anything else means frames were lost or reordered, which poisons
    /// the connection.
    next_seq: u32,
}

/// One routed inbound frame: a completed one-shot infer, or a chunk
/// (`Err` = terminal failure) of an in-flight stream.
#[derive(Debug)]
enum Routed {
    Infer(PipelinedResponse),
    Stream(u64, Result<StreamChunk>),
}

/// A synchronous client holding one TCP connection to a DjiNN server.
///
/// Tonic Suite applications use this to send preprocessed inputs and
/// receive predictions; each client owns its connection, so one client per
/// thread.
///
/// # Correlation, not order
///
/// Every request carries a client-assigned ID which the server echoes on
/// the response (protocol v4 echoes it on *every* frame — `Busy` and
/// error frames included), and the client matches responses to requests
/// **by ID, never by arrival order**. A response that outlived its
/// request (the classic case: a read timeout fired, then the late answer
/// arrived) is recognized as stale and discarded instead of being
/// returned as the answer to the next call. A response that correlates
/// with nothing poisons the connection.
///
/// # Pipelining
///
/// Because correlation is by ID, one connection can carry many requests
/// at once: [`DjinnClient::submit`] sends without waiting,
/// [`DjinnClient::recv_next`] blocks for whichever in-flight request
/// finishes first (the server answers out of order as its engines
/// complete), and [`DjinnClient::pipeline`] drives a fixed-size window
/// over a whole batch of inputs. Pipelining is what lets a single
/// connection keep the server's batcher fed.
///
/// # Poisoned connections
///
/// After a failed frame write the server may have received half a frame,
/// and after an uncorrelatable response the stream's framing can no
/// longer be trusted. Both poison the connection: every subsequent call
/// fails fast with [`DjinnError::ConnectionPoisoned`] instead of
/// desyncing further. The only recovery is a fresh connection.
///
/// By default every call blocks until the server answers. Production
/// callers should bound that wait with [`DjinnClient::connect_with_timeout`]
/// (or [`DjinnClient::set_io_timeout`]) so a hung server cannot wedge a
/// Tonic application forever: the timeout is a *stall* bound — it fires
/// only when the server makes no progress for the whole window, so a
/// large tensor trickling in steadily never trips it.
#[derive(Debug)]
pub struct DjinnClient {
    stream: TcpStream,
    reader: FrameReader,
    /// Scratch for framed request encoding, reused across sends: each
    /// request is laid out as one `[len | payload]` image here and written
    /// with a single `write_all` — one syscall, zero steady-state
    /// allocations per frame.
    send_buf: BytesMut,
    /// `Some(reason)` once the connection can no longer be trusted.
    poisoned: Option<String>,
    /// In-flight infer requests by ID.
    pending: HashMap<u64, PendingInfer>,
    /// Pending IDs in submission order — the fallback attribution order
    /// for uncorrelated (pre-v4 or ID-0) responses.
    order: VecDeque<u64>,
    /// IDs whose responses were abandoned (a timeout fired while waiting
    /// for them); their late responses are drained and discarded.
    abandoned: VecDeque<u64>,
    /// The highest request ID this connection has ever sent. An unknown
    /// response ID at or below this mark is a stale answer to some
    /// abandoned request (possibly evicted from `abandoned`) and is
    /// drained; an ID above it was never ours and poisons.
    issued_high: u64,
    /// Completions that arrived while waiting for a different request.
    stash: VecDeque<PipelinedResponse>,
    /// In-flight streams by ID.
    streams: HashMap<u64, PendingStream>,
    /// Stream chunks that arrived while waiting for a different request
    /// or stream.
    chunk_stash: VecDeque<(u64, Result<StreamChunk>)>,
}

impl DjinnClient {
    /// Connects to a running server with no I/O timeouts (calls may block
    /// indefinitely on an unresponsive server).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with `timeout` bounding the connect itself and every
    /// subsequent read/write stall.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including the connect timing out.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        let mut client = Self::from_stream(stream)?;
        client.set_io_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        Ok(DjinnClient {
            stream,
            reader: FrameReader::new(),
            send_buf: BytesMut::new(),
            poisoned: None,
            pending: HashMap::new(),
            order: VecDeque::new(),
            abandoned: VecDeque::new(),
            issued_high: 0,
            stash: VecDeque::new(),
            streams: HashMap::new(),
            chunk_stash: VecDeque::new(),
        })
    }

    /// Sets (or clears, with `None`) the per-call read/write stall bound.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sends one inference request and waits for the prediction.
    ///
    /// The input's batch axis carries the number of stacked queries; the
    /// response preserves it.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Busy`] when the server shed the request at
    /// admission (back off and retry), [`DjinnError::Remote`] for other
    /// server-reported failures, [`DjinnError::ConnectionPoisoned`] once
    /// the connection can no longer be trusted, and protocol/I/O errors
    /// otherwise.
    pub fn infer(&mut self, model: &str, input: &Tensor) -> Result<Tensor> {
        self.infer_traced(model, input).map(|(tensor, _)| tensor)
    }

    /// Like [`DjinnClient::infer`], but also returns the request's
    /// [`TraceRecord`]: the client-measured end-to-end latency combined
    /// with the server's span breakdown. A fresh request ID is drawn from
    /// [`trace::next_request_id`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn infer_traced(&mut self, model: &str, input: &Tensor) -> Result<(Tensor, TraceRecord)> {
        self.infer_traced_with_id(model, input, trace::next_request_id())
    }

    /// Like [`DjinnClient::infer_traced`], with a caller-supplied request
    /// ID — the hook retrying callers use to keep one ID (hence one
    /// trace) across `Busy` retries. An ID of 0 (the untraced sentinel)
    /// is replaced with a fresh one so the response stays correlatable.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn infer_traced_with_id(
        &mut self,
        model: &str,
        input: &Tensor,
        request_id: u64,
    ) -> Result<(Tensor, TraceRecord)> {
        let request_id = if request_id == 0 {
            trace::next_request_id()
        } else {
            request_id
        };
        self.submit_with_id(model, input, request_id)?;
        self.wait_infer(request_id)
    }

    /// Sends one inference request *without waiting* and returns its
    /// request ID; the response is claimed later via
    /// [`DjinnClient::recv_next`] (or [`DjinnClient::pipeline`], which
    /// wraps both ends). Any number of submits may be in flight on one
    /// connection.
    ///
    /// # Errors
    ///
    /// [`DjinnError::ConnectionPoisoned`] on an untrusted connection or
    /// after this write fails mid-frame; encoding errors otherwise.
    pub fn submit(&mut self, model: &str, input: &Tensor) -> Result<u64> {
        let request_id = trace::next_request_id();
        self.submit_with_id(model, input, request_id)?;
        Ok(request_id)
    }

    fn submit_with_id(&mut self, model: &str, input: &Tensor, request_id: u64) -> Result<()> {
        self.check_poisoned()?;
        if self.pending.contains_key(&request_id) {
            return Err(DjinnError::Protocol {
                reason: format!("request id {request_id} is already in flight"),
            });
        }
        // Encode straight from the borrowed parts into the reusable
        // scratch: no Request construction, no input clone.
        encode_infer_framed_into(&mut self.send_buf, model, input, request_id)?;
        let sent_bytes = self.send_buf.len() as u64;
        // The client-send span mark; client-recv is when the decoded
        // response is in hand. Stamped *before* the write: on a fast
        // localhost path the server can process the whole request before
        // this thread is rescheduled, so stamping after the write would
        // yield e2e readings smaller than the server's own span sum.
        let sent = Instant::now();
        self.issued_high = self.issued_high.max(request_id);
        self.write_send_buf()?;
        self.pending.insert(
            request_id,
            PendingInfer {
                model: model.to_string(),
                sent,
                sent_bytes,
            },
        );
        self.order.push_back(request_id);
        Ok(())
    }

    /// In-flight submits not yet claimed by a receive.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Blocks until *any* in-flight request completes and returns its
    /// demultiplexed response — completions arrive in the server's
    /// finish order, not submission order.
    ///
    /// # Errors
    ///
    /// [`DjinnError::Protocol`] when nothing is in flight; a `TimedOut`
    /// I/O error when the read stall bound fires (the requests stay in
    /// flight — call again to keep waiting);
    /// [`DjinnError::ConnectionPoisoned`] once correlation breaks.
    pub fn recv_next(&mut self) -> Result<PipelinedResponse> {
        if let Some(done) = self.stash.pop_front() {
            return Ok(done);
        }
        if self.pending.is_empty() {
            return Err(DjinnError::Protocol {
                reason: "recv_next with no request in flight".into(),
            });
        }
        self.check_poisoned()?;
        loop {
            let (rsp, frame_len) = self.read_response()?;
            match self.route(rsp, frame_len)? {
                Some(Routed::Infer(done)) => return Ok(done),
                Some(Routed::Stream(id, chunk)) => self.chunk_stash.push_back((id, chunk)),
                None => {}
            }
        }
    }

    /// Runs `inputs` through `model` with up to `window` requests in
    /// flight on this one connection, and returns one result per input,
    /// in input order. Per-request failures (shed, inference error) land
    /// in their own slot; a transport-level failure aborts the whole
    /// call.
    ///
    /// # Errors
    ///
    /// [`DjinnError::Protocol`] if other requests are already in flight;
    /// transport errors ([`DjinnError::ConnectionPoisoned`], I/O,
    /// timeouts) abort the call.
    pub fn pipeline(
        &mut self,
        model: &str,
        inputs: &[Tensor],
        window: usize,
    ) -> Result<Vec<Result<(Tensor, TraceRecord)>>> {
        if !self.pending.is_empty() || !self.stash.is_empty() {
            return Err(DjinnError::Protocol {
                reason: "pipeline requires no other requests in flight".into(),
            });
        }
        let window = window.max(1);
        let mut results: Vec<Option<Result<(Tensor, TraceRecord)>>> = Vec::new();
        results.resize_with(inputs.len(), || None);
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut next = 0usize;
        let mut done = 0usize;
        while done < inputs.len() {
            // Keep the window full...
            while next < inputs.len() && slot_of.len() - done < window {
                let id = self.submit(model, &inputs[next])?;
                slot_of.insert(id, next);
                next += 1;
            }
            // ...and claim whichever request finishes first.
            let completion = self.recv_next()?;
            let Some(&slot) = slot_of.get(&completion.request_id) else {
                return Err(DjinnError::Protocol {
                    reason: format!(
                        "completion for id {} not part of this pipeline",
                        completion.request_id
                    ),
                });
            };
            results[slot] = Some(completion.result);
            done += 1;
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot filled by the loop above"))
            .collect())
    }

    /// Asks the server which models it serves.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn list_models(&mut self) -> Result<Vec<String>> {
        let request_id = trace::next_request_id();
        self.send(&Request::ListModels { request_id })?;
        match self.wait_control(request_id)? {
            Response::Models { names, .. } => Ok(names),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Fetches per-model service statistics.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn stats(&mut self) -> Result<Vec<ModelStats>> {
        self.stats_with_unknown_count().map(|(stats, _)| stats)
    }

    /// Like [`DjinnClient::stats`], additionally returning the server's
    /// aggregate count of infer requests rejected for naming an
    /// unregistered model (0 from a pre-v4 server).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::infer`].
    pub fn stats_with_unknown_count(&mut self) -> Result<(Vec<ModelStats>, u64)> {
        let request_id = trace::next_request_id();
        self.send(&Request::Stats { request_id })?;
        match self.wait_control(request_id)? {
            Response::Stats {
                unknown_model_requests,
                stats,
                ..
            } => Ok((stats, unknown_model_requests)),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?}"),
            }),
        }
    }

    /// Starts a streaming inference (protocol v7) and returns its
    /// stream ID; chunks are claimed with [`DjinnClient::recv_chunk`].
    /// Any number of streams and one-shot infers may share the
    /// connection.
    ///
    /// # Errors
    ///
    /// [`DjinnError::ConnectionPoisoned`] on an untrusted connection or
    /// after the write fails mid-frame; encoding errors otherwise.
    pub fn stream_infer(&mut self, model: &str, input: &Tensor, mode: StreamMode) -> Result<u64> {
        self.check_poisoned()?;
        let request_id = trace::next_request_id();
        self.send(&Request::StreamInfer {
            model: model.to_string(),
            input: input.clone(),
            request_id,
            mode,
        })?;
        self.streams
            .insert(request_id, PendingStream { next_seq: 0 });
        Ok(request_id)
    }

    /// Blocks until the next chunk of `stream_id` arrives and returns
    /// it. Chunks arrive in strict sequence order; the one flagged
    /// [`StreamChunk::last`] ends the stream. Completions for other
    /// in-flight requests arriving meanwhile are stashed, not lost.
    ///
    /// # Errors
    ///
    /// [`DjinnError::Protocol`] when `stream_id` is not an in-flight
    /// stream; the stream's own terminal failure ([`DjinnError::Busy`]
    /// when shed, [`DjinnError::Remote`] for server-side errors) ends
    /// it; a `TimedOut` I/O error abandons the stream (late chunks are
    /// drained, never misattributed).
    pub fn recv_chunk(&mut self, stream_id: u64) -> Result<StreamChunk> {
        if let Some(pos) = self.chunk_stash.iter().position(|(id, _)| *id == stream_id) {
            return self
                .chunk_stash
                .remove(pos)
                .expect("position came from the stash")
                .1;
        }
        if !self.streams.contains_key(&stream_id) {
            return Err(DjinnError::Protocol {
                reason: format!("stream {stream_id} is not in flight"),
            });
        }
        self.check_poisoned()?;
        loop {
            let (rsp, frame_len) = match self.read_response() {
                Ok(r) => r,
                Err(e) => {
                    if is_timeout(&e) {
                        // A stalled stream cannot be resumed safely:
                        // abandon it so its late chunks are drained.
                        self.streams.remove(&stream_id);
                        self.abandon(stream_id);
                    }
                    return Err(e);
                }
            };
            match self.route(rsp, frame_len)? {
                Some(Routed::Stream(id, chunk)) if id == stream_id => return chunk,
                Some(Routed::Stream(id, chunk)) => self.chunk_stash.push_back((id, chunk)),
                Some(Routed::Infer(done)) => self.stash.push_back(done),
                None => {}
            }
        }
    }

    /// Runs one whole streaming inference as an iterator of chunks: ends
    /// after the final chunk or the first error. The convenience wrapper
    /// over [`DjinnClient::stream_infer`] + [`DjinnClient::recv_chunk`]
    /// most callers want.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DjinnClient::stream_infer`].
    pub fn stream(
        &mut self,
        model: &str,
        input: &Tensor,
        mode: StreamMode,
    ) -> Result<StreamIter<'_>> {
        let stream_id = self.stream_infer(model, input, mode)?;
        Ok(StreamIter {
            client: self,
            stream_id,
            done: false,
        })
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(reason) => Err(DjinnError::ConnectionPoisoned {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    fn poison(&mut self, reason: String) -> DjinnError {
        self.poisoned = Some(reason.clone());
        DjinnError::ConnectionPoisoned { reason }
    }

    /// Writes one request frame. A failed write may have left a partial
    /// frame on the wire — the server would misparse everything after it
    /// — so any write error poisons the connection.
    fn send(&mut self, req: &Request) -> Result<()> {
        self.check_poisoned()?;
        req.encode_framed_into(&mut self.send_buf)?; // nothing written yet: not poisoning
        self.issued_high = self.issued_high.max(req.request_id());
        self.write_send_buf()
    }

    /// Ships the pre-framed contents of `send_buf` in one `write_all`
    /// (one syscall on an unbuffered socket), poisoning on failure.
    fn write_send_buf(&mut self) -> Result<()> {
        let sent = self
            .stream
            .write_all(&self.send_buf)
            .and_then(|()| self.stream.flush());
        sent.map_err(|e| self.poison(format!("request write failed mid-frame: {e}")))
    }

    /// Reads and decodes one response frame, returning it with the
    /// frame's payload size on the wire. A fired read timeout surfaces
    /// as a `TimedOut` I/O error (partial bytes stay buffered, the
    /// stream stays coherent); an undecodable frame poisons the
    /// connection, since its contents — and the framing after it — can
    /// no longer be trusted.
    fn read_response(&mut self) -> Result<(Response, usize)> {
        // Decode borrows the frame straight from the reader's buffer —
        // no per-frame payload copy.
        let decoded = match self.reader.read_frame_ref(&mut self.stream) {
            Ok(Some(payload)) => Some((Response::decode(payload), payload.len())),
            Ok(None) => None,
            Err(e) => return Err(e),
        };
        match decoded {
            Some((Ok(rsp), frame_len)) => Ok((rsp, frame_len)),
            Some((Err(e), _)) => Err(self.poison(format!("undecodable response frame: {e}"))),
            None => Err(DjinnError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "server made no progress within the read timeout",
            ))),
        }
    }

    /// Correlates one response with an in-flight infer or stream.
    ///
    /// Returns `Ok(Some(_))` when a pending request produced something
    /// (a completion or a stream chunk), `Ok(None)` for a stale response
    /// that was drained (its request was abandoned after a timeout — the
    /// exact frame that used to be misattributed to the next call). A
    /// response correlating with nothing this connection ever issued
    /// poisons the connection rather than guessing.
    fn route(&mut self, rsp: Response, frame_len: usize) -> Result<Option<Routed>> {
        let wire_id = rsp.request_id();
        if let Some(pos) = self.abandoned.iter().position(|&a| a == wire_id) {
            self.abandoned.remove(pos);
            return Ok(None);
        }
        let id = if wire_id == 0 {
            // A pre-v4 peer (or an error for an undecodable request)
            // carries no ID: fall back to order-based attribution
            // against the oldest in-flight request — all a legacy,
            // strictly serial server permits anyway.
            match self.order.front().copied() {
                Some(oldest) => oldest,
                None => {
                    return Err(
                        self.poison("uncorrelated response with no request in flight".into())
                    )
                }
            }
        } else {
            wire_id
        };
        if self.streams.contains_key(&id) {
            return self.route_stream_frame(id, rsp);
        }
        let Some(p) = self.pending.remove(&id) else {
            if id <= self.issued_high {
                // A late response to some request this connection once
                // sent — abandoned long enough ago to have been evicted
                // from the exact window. Stale, not hostile: drain it.
                return Ok(None);
            }
            return Err(self.poison(format!(
                "response correlates with no request this client ever issued (id {id})"
            )));
        };
        self.order.retain(|&o| o != id);
        let e2e_us = p.sent.elapsed().as_micros() as u64;
        let result = match rsp {
            Response::Output { tensor, mut trace } => {
                // A pre-v3 server echoes no trace; keep the ID the
                // caller chose so the record still identifies the
                // request.
                if trace.request_id == 0 {
                    trace.request_id = id;
                }
                // Both frames' wire footprint: each is payload + the
                // 4-byte length prefix (the request size already
                // includes its prefix).
                let wire_bytes = p.sent_bytes + frame_len as u64 + 4;
                let record = TraceRecord::new(&p.model, e2e_us, trace).with_wire_bytes(wire_bytes);
                Ok((tensor, record))
            }
            Response::Busy {
                model, queue_depth, ..
            } => Err(DjinnError::Busy {
                model,
                queue_depth: queue_depth as usize,
            }),
            Response::Error { message, .. } => Err(DjinnError::Remote { message }),
            other => Err(DjinnError::Protocol {
                reason: format!("unexpected response {other:?} to an infer request"),
            }),
        };
        Ok(Some(Routed::Infer(PipelinedResponse {
            request_id: id,
            result,
        })))
    }

    /// Correlates one response with the in-flight stream `id`: chunks
    /// advance the stream (in strict sequence order — a gap means frames
    /// were lost, which poisons), `Busy`/`Error` terminate it.
    fn route_stream_frame(&mut self, id: u64, rsp: Response) -> Result<Option<Routed>> {
        match rsp {
            Response::Chunk {
                tensor,
                trace,
                seq,
                last,
            } => {
                let stream = self
                    .streams
                    .get_mut(&id)
                    .expect("caller checked the stream is in flight");
                if seq != stream.next_seq {
                    let want = stream.next_seq;
                    return Err(self.poison(format!(
                        "stream {id} chunk out of order: got seq {seq}, want {want}"
                    )));
                }
                stream.next_seq += 1;
                if last {
                    self.streams.remove(&id);
                }
                Ok(Some(Routed::Stream(
                    id,
                    Ok(StreamChunk {
                        seq,
                        last,
                        tensor,
                        trace,
                    }),
                )))
            }
            Response::Busy {
                model, queue_depth, ..
            } => {
                self.streams.remove(&id);
                Ok(Some(Routed::Stream(
                    id,
                    Err(DjinnError::Busy {
                        model,
                        queue_depth: queue_depth as usize,
                    }),
                )))
            }
            Response::Error { message, .. } => {
                self.streams.remove(&id);
                Ok(Some(Routed::Stream(
                    id,
                    Err(DjinnError::Remote { message }),
                )))
            }
            other => Err(self.poison(format!(
                "unexpected response {other:?} to streaming request {id}"
            ))),
        }
    }

    /// Blocks until the infer with `want_id` completes. Completions for
    /// *other* in-flight requests that arrive meanwhile are stashed, not
    /// lost. A timeout abandons `want_id`: its late response will be
    /// drained and discarded, never returned to a later call.
    fn wait_infer(&mut self, want_id: u64) -> Result<(Tensor, TraceRecord)> {
        if let Some(pos) = self.stash.iter().position(|r| r.request_id == want_id) {
            return self
                .stash
                .remove(pos)
                .expect("position came from the stash")
                .result;
        }
        loop {
            let (rsp, frame_len) = match self.read_response() {
                Ok(r) => r,
                Err(e) => {
                    if is_timeout(&e) {
                        self.abandon_pending(want_id);
                    }
                    return Err(e);
                }
            };
            match self.route(rsp, frame_len)? {
                Some(Routed::Infer(done)) => {
                    if done.request_id == want_id {
                        return done.result;
                    }
                    self.stash.push_back(done);
                }
                Some(Routed::Stream(id, chunk)) => self.chunk_stash.push_back((id, chunk)),
                None => {}
            }
        }
    }

    /// Blocks until the control (list/stats) response for `want_id`
    /// arrives; infer completions arriving meanwhile are stashed. A
    /// timeout abandons `want_id` like any other request.
    fn wait_control(&mut self, want_id: u64) -> Result<Response> {
        loop {
            let (rsp, frame_len) = match self.read_response() {
                Ok(r) => r,
                Err(e) => {
                    if is_timeout(&e) {
                        self.abandon(want_id);
                    }
                    return Err(e);
                }
            };
            match &rsp {
                // A pre-v4 server echoes no ID on control frames; with
                // one blocking control call at a time, the match is
                // unambiguous.
                Response::Models { request_id, .. } | Response::Stats { request_id, .. }
                    if *request_id == want_id || *request_id == 0 =>
                {
                    return Ok(rsp);
                }
                // An uncorrelated (id-0) error while a control call is
                // blocked answers the control call, *regardless* of
                // infers in flight: a v4 server stamps every infer's ID
                // on its error frames, so the only request of ours an
                // id-0 error can answer is one the server failed to
                // decode — and the frame most recently at risk is this
                // control request. The old rule (`id == 0` only with no
                // infers pending) dropped such an error into `route()`'s
                // order-front fallback instead, misattributing it to the
                // oldest in-flight infer and leaving this call blocked
                // until the read timeout.
                Response::Error { request_id, .. }
                    if *request_id == want_id || *request_id == 0 =>
                {
                    let Response::Error { message, .. } = rsp else {
                        unreachable!("matched Error above");
                    };
                    return Err(DjinnError::Remote { message });
                }
                _ => {}
            }
            match self.route(rsp, frame_len)? {
                Some(Routed::Infer(done)) => self.stash.push_back(done),
                Some(Routed::Stream(id, chunk)) => self.chunk_stash.push_back((id, chunk)),
                None => {}
            }
        }
    }

    /// Abandons a pending infer after its wait timed out.
    fn abandon_pending(&mut self, id: u64) {
        if self.pending.remove(&id).is_some() {
            self.order.retain(|&o| o != id);
            self.abandon(id);
        }
    }

    /// Remembers `id` so its late response is drained, not misattributed.
    fn abandon(&mut self, id: u64) {
        if id == 0 {
            return;
        }
        self.abandoned.push_back(id);
        while self.abandoned.len() > ABANDONED_CAP {
            self.abandoned.pop_front();
        }
    }
}

/// Iterator over one stream's chunks, from [`DjinnClient::stream`]:
/// yields each [`StreamChunk`] in order and stops after the final chunk
/// or the first error (errors are terminal — the stream is gone).
#[derive(Debug)]
pub struct StreamIter<'a> {
    client: &'a mut DjinnClient,
    stream_id: u64,
    done: bool,
}

impl StreamIter<'_> {
    /// The underlying stream's correlation ID.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }
}

impl Iterator for StreamIter<'_> {
    type Item = Result<StreamChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.client.recv_chunk(self.stream_id) {
            Ok(chunk) => {
                self.done = chunk.last;
                Some(Ok(chunk))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

fn is_timeout(e: &DjinnError) -> bool {
    matches!(e, DjinnError::Io(io)
        if io.kind() == std::io::ErrorKind::TimedOut
            || io.kind() == std::io::ErrorKind::WouldBlock)
}
