//! The DjiNN wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is `[u32 length | payload]` (little-endian length of the
//! payload). Payloads begin with the 4-byte magic `DJNN` and a version
//! byte, then an opcode:
//!
//! ```text
//! request   := magic version opcode=1 name:str id:u64 tensor
//! result_ok := magic version opcode=2 status=0 trace tensor
//! result_err:= magic version opcode=2 status=1 id:u64 message:str
//! list_req  := magic version opcode=3 id:u64
//! list_rsp  := magic version opcode=4 id:u64 count:u16 (str)*
//! stats_req := magic version opcode=5 id:u64
//! stats_rsp := magic version opcode=6 id:u64 unknown:u64 count:u16 entry*
//! busy      := magic version opcode=7 id:u64 name:str depth:u32
//! stream_req:= magic version opcode=8 name:str id:u64 mode:u8 param:u32 tensor
//! chunk     := magic version opcode=9 status=0 trace seq:u32 flags:u8 tensor
//! str       := u16 len, utf-8 bytes
//! tensor    := u8 rank, u32 dim*, f32 data* (little endian)
//! trace     := id:u64 queue_us:u64 batch_us:u64 [lease_us:u64] service_us:u64 total_us:u64
//! ```
//!
//! # Versioning
//!
//! Version 2 added the `busy` frame (admission-control backpressure) and
//! extended each stats entry with queue telemetry (depth, in-flight,
//! shed, p50/p99 queue wait). Version 3 added request tracing: an infer
//! request carries a client-assigned `id:u64` after the model name, a
//! successful response carries a 40-byte `trace` block (the echoed ID
//! plus queue/batch/service/server-total durations in microseconds)
//! before the tensor, and each stats entry appends six breakdown
//! quantiles (p50/p99 × batch-wait, service, wire). Version 4 makes
//! correlation by ID total: *every* request and response frame now
//! carries the request ID — `result_err` and `busy` echo the ID of the
//! infer they answer (so a shed or failed request can never be confused
//! with its neighbor), `list_req`/`stats_req` carry one and
//! `list_rsp`/`stats_rsp` echo it — and `stats_rsp` gains an aggregate
//! `unknown:u64` counter of requests rejected for naming an unregistered
//! model. With IDs on every frame the connection is full-duplex:
//! responses may arrive in any order and clients demultiplex by ID (see
//! `DjinnClient::pipeline`). Version 5 adds shared-device scheduling
//! telemetry: the trace block grows to 48 bytes with a `lease_us:u64`
//! (time the dispatch blocked acquiring its compute lease) between
//! `batch_us` and `service_us`, and each stats entry appends two lease
//! quantiles (p50/p99 lease wait). Version 7 opens the streaming regime:
//! a `stream_req` asks for one request to be answered by N ordered
//! `chunk` frames (each seq-numbered, the last carrying the `final` flag
//! bit 0), the trace block grows to 72 bytes with trailing
//! `first_token_us`/`tokens` words (time from admission to the first
//! emitted chunk, and total chunks emitted), and each stats entry
//! appends three per-token words (`tokens_out`, p50/p99 inter-token
//! gap). Decoders accept every version from 1 up to
//! [`VERSION`]: fields a version predates decode as zero (request ID 0
//! means "untraced"/"uncorrelated"; an all-zero trace means "the peer
//! reported none"), so a v4 client still understands a v1 server's reply
//! and vice versa. Encoders always emit [`VERSION`].
//!
//! # Framing under timeouts
//!
//! TCP delivers a frame in as many pieces as it likes: a multi-MB FACE or
//! ASR tensor routinely arrives in dozens of segments, and a slow client
//! can stretch one frame across seconds. Reading with `read_exact` on a
//! socket with a read timeout is therefore *unsound*: when the timeout
//! fires mid-frame, the bytes already consumed are lost and the stream is
//! desynchronized — the next read treats the middle of a payload as a
//! length prefix. [`FrameReader`] is the stateful alternative: it
//! accumulates partial reads across `WouldBlock`/`TimedOut` and yields a
//! frame only once it is complete, so a timeout is a clean "no frame yet"
//! signal instead of data loss. The stateless [`read_frame`] remains for
//! blocking sockets without a read timeout.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{IoSlice, Read, Write};

use tensor::{Shape, Tensor};

use crate::trace::ServerTrace;
use crate::{DjinnError, Result};

/// Protocol magic bytes.
pub const MAGIC: &[u8; 4] = b"DJNN";
/// Protocol version this implementation speaks. Decoding accepts any
/// version in `1..=VERSION`.
pub const VERSION: u8 = 7;
/// Upper bound on a frame, to reject hostile lengths (64 MiB holds the
/// largest Tonic batch comfortably).
pub const MAX_FRAME: usize = 64 << 20;
/// Longest string the wire format can carry (`u16` length prefix).
pub const MAX_STR: usize = u16::MAX as usize;

const OP_INFER: u8 = 1;
const OP_RESULT: u8 = 2;
const OP_LIST: u8 = 3;
const OP_LIST_RESULT: u8 = 4;
const OP_STATS: u8 = 5;
const OP_STATS_RESULT: u8 = 6;
const OP_BUSY: u8 = 7;
const OP_STREAM_INFER: u8 = 8;
const OP_OUTPUT_CHUNK: u8 = 9;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// `chunk` frame flag bit: this is the stream's last chunk.
const CHUNK_FLAG_FINAL: u8 = 1;

/// How a v7 `stream_req` wants its N partial responses produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Sliding-window evaluation (streaming ASR): the input's rows are
    /// fed through the model `window_rows` at a time and every window's
    /// scores are emitted as one chunk.
    Windowed {
        /// Rows per window (must be ≥ 1).
        window_rows: u32,
    },
    /// Autoregressive decode (text generation): the model's output
    /// feeds back as its next input, one chunk per generated token.
    Generative {
        /// Tokens to generate (must be ≥ 1).
        max_tokens: u32,
    },
}

impl StreamMode {
    /// Wire mode byte.
    fn opbyte(self) -> u8 {
        match self {
            StreamMode::Windowed { .. } => 0,
            StreamMode::Generative { .. } => 1,
        }
    }

    /// Wire parameter word (window rows or token budget).
    fn param(self) -> u32 {
        match self {
            StreamMode::Windowed { window_rows } => window_rows,
            StreamMode::Generative { max_tokens } => max_tokens,
        }
    }

    fn from_wire(mode: u8, param: u32) -> Result<Self> {
        match mode {
            0 => Ok(StreamMode::Windowed { window_rows: param }),
            1 => Ok(StreamMode::Generative { max_tokens: param }),
            other => Err(err(&format!("unknown stream mode {other}"))),
        }
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run inference on `model` with the given input tensor.
    Infer {
        /// Registered model name.
        model: String,
        /// Input tensor (batch axis = queries stacked by the client).
        input: Tensor,
        /// Client-assigned trace ID, echoed in the response's trace
        /// block. 0 means "untraced" (and is what a v1/v2 frame decodes
        /// as). IDs are client-scoped; the server never interprets them.
        request_id: u64,
    },
    /// List registered model names.
    ListModels {
        /// Client-assigned correlation ID, echoed by the response (0
        /// from a pre-v4 frame, which carried none).
        request_id: u64,
    },
    /// Fetch per-model service statistics.
    Stats {
        /// Client-assigned correlation ID, echoed by the response (0
        /// from a pre-v4 frame, which carried none).
        request_id: u64,
    },
    /// Run streaming inference on `model`: the server answers with N
    /// ordered [`Response::Chunk`] frames (the last flagged final)
    /// instead of one `Output`. v7+.
    StreamInfer {
        /// Registered model name.
        model: String,
        /// Seed input: the feature-frame matrix for windowed mode, the
        /// one-hot prompt token for generative mode.
        input: Tensor,
        /// Client-assigned trace ID, echoed by every chunk of the
        /// stream. Unlike one-shot infer, 0 is not meaningful here —
        /// chunks are only correlatable by ID.
        request_id: u64,
        /// How to produce the partial responses.
        mode: StreamMode,
    },
}

impl Request {
    /// The client-assigned correlation ID this request carries.
    pub fn request_id(&self) -> u64 {
        match self {
            Request::Infer { request_id, .. }
            | Request::ListModels { request_id }
            | Request::Stats { request_id }
            | Request::StreamInfer { request_id, .. } => *request_id,
        }
    }
}

/// Service statistics for one model, as reported by the `Stats` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Successful inference requests served.
    pub requests: u64,
    /// Failed inference requests.
    pub errors: u64,
    /// Total device latency attributed to this model, microseconds.
    pub total_latency_us: u64,
    /// Maximum single-request device latency, microseconds.
    pub max_latency_us: u64,
    /// Jobs waiting in the model's admission queue at snapshot time
    /// (0 when decoding a v1 peer).
    pub queue_depth: u64,
    /// Jobs executing on the backend at snapshot time (0 from a v1 peer).
    pub in_flight: u64,
    /// Requests shed at admission with `Busy` (0 from a v1 peer).
    pub shed: u64,
    /// Median queue wait before dispatch, microseconds (0 from a v1 peer).
    pub p50_queue_wait_us: u64,
    /// 99th-percentile queue wait, microseconds (0 from a v1 peer).
    pub p99_queue_wait_us: u64,
    /// Median batch coalescing wait (dequeue → executor start),
    /// microseconds (0 from a pre-v3 peer).
    pub p50_batch_wait_us: u64,
    /// 99th-percentile batch coalescing wait, microseconds (0 from a
    /// pre-v3 peer).
    pub p99_batch_wait_us: u64,
    /// Median device-lease wait (shared-device scheduling), microseconds
    /// (0 from a pre-v5 peer or a dedicated device).
    pub p50_lease_wait_us: u64,
    /// 99th-percentile device-lease wait, microseconds (0 from a pre-v5
    /// peer).
    pub p99_lease_wait_us: u64,
    /// Median service (forward-pass) latency, microseconds (0 from a
    /// pre-v3 peer).
    pub p50_service_us: u64,
    /// 99th-percentile service latency, microseconds (0 from a pre-v3
    /// peer).
    pub p99_service_us: u64,
    /// Median response-write (wire) time as seen by the server,
    /// microseconds (0 from a pre-v3 peer).
    pub p50_wire_us: u64,
    /// 99th-percentile response-write time, microseconds (0 from a
    /// pre-v3 peer).
    pub p99_wire_us: u64,
    /// Requests answered by the inference cache without touching the
    /// queue, lease, or executor (0 from a pre-v6 peer or with
    /// caching off). Exact-match hits count requests; embedding-layer
    /// hits count rows.
    pub cache_hits: u64,
    /// Cache lookups that found nothing and fell through to the full
    /// serving path (0 from a pre-v6 peer).
    pub cache_misses: u64,
    /// Cache entries evicted to stay under the byte budget (0 from a
    /// pre-v6 peer).
    pub cache_evictions: u64,
    /// Stream chunks (tokens / partial hypotheses) emitted by streaming
    /// requests against this model (0 from a pre-v7 peer).
    pub tokens_out: u64,
    /// Median gap between consecutive chunks of a stream, microseconds
    /// (0 from a pre-v7 peer or with no streaming traffic).
    pub p50_token_gap_us: u64,
    /// 99th-percentile inter-chunk gap, microseconds (0 from a pre-v7
    /// peer).
    pub p99_token_gap_us: u64,
}

impl ModelStats {
    /// Mean device latency per successful request, microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }

    /// Cache hits over cache lookups, 0.0 when nothing was looked up
    /// (caching off, or a pre-v6 peer).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// A server→client message. Since v4 every variant carries the ID of
/// the request it answers ([`Response::request_id`]), so responses can
/// arrive in any order and clients correlate by ID instead of trusting
/// arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful inference: the output tensor plus the server-side
    /// trace of the request that produced it.
    Output {
        /// The prediction.
        tensor: Tensor,
        /// Server-side span durations and the echoed request ID
        /// (all-zero when decoding a pre-v3 peer).
        trace: ServerTrace,
    },
    /// Application-level failure.
    Error {
        /// ID of the request that failed (0 from a pre-v4 peer, or when
        /// the request itself was undecodable).
        request_id: u64,
        /// Server-provided message.
        message: String,
    },
    /// Registered model names.
    Models {
        /// Echoed `list_req` correlation ID (0 from a pre-v4 peer).
        request_id: u64,
        /// The names.
        names: Vec<String>,
    },
    /// Per-model service statistics.
    Stats {
        /// Echoed `stats_req` correlation ID (0 from a pre-v4 peer).
        request_id: u64,
        /// Total infer requests rejected because they named a model the
        /// server does not serve. One aggregate counter — unknown names
        /// never create per-model entries (0 from a pre-v4 peer).
        unknown_model_requests: u64,
        /// Per-model entries, registered models only.
        stats: Vec<ModelStats>,
    },
    /// The model's admission queue is full: the request was shed, not
    /// queued. The client should back off and retry.
    Busy {
        /// ID of the shed request (0 from a pre-v4 peer).
        request_id: u64,
        /// Model whose queue rejected the request.
        model: String,
        /// Queue depth observed at admission (the configured bound).
        queue_depth: u32,
    },
    /// One partial response of a streaming request (v7+). A
    /// [`Request::StreamInfer`] is answered by a run of these, ordered
    /// by `seq` and closed by the one with `last` set; each carries the
    /// stream's request ID in its trace block.
    Chunk {
        /// The partial output (one window's scores, one token's
        /// distribution).
        tensor: Tensor,
        /// Server-side spans as of this chunk; the final chunk carries
        /// the stream totals (`first_token_us`, `tokens`).
        trace: ServerTrace,
        /// Position in the stream, starting at 0.
        seq: u32,
        /// Whether this is the stream's last chunk.
        last: bool,
    },
}

impl Response {
    /// The ID of the request this response answers. 0 means
    /// uncorrelated: a pre-v4 peer, an untraced request, or an error
    /// answering an undecodable frame.
    pub fn request_id(&self) -> u64 {
        match self {
            Response::Output { trace, .. } | Response::Chunk { trace, .. } => trace.request_id,
            Response::Error { request_id, .. }
            | Response::Models { request_id, .. }
            | Response::Stats { request_id, .. }
            | Response::Busy { request_id, .. } => *request_id,
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) -> Result<()> {
    if s.len() > MAX_STR {
        return Err(err(&format!(
            "string of {} bytes exceeds the wire limit of {MAX_STR}",
            s.len()
        )));
    }
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Truncates `s` to at most [`MAX_STR`] bytes at a char boundary, so error
/// messages always fit the wire format instead of failing to encode.
fn clamp_str(s: &str) -> &str {
    if s.len() <= MAX_STR {
        return s;
    }
    let mut end = MAX_STR;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn put_count(buf: &mut BytesMut, n: usize, what: &str) -> Result<()> {
    if n > u16::MAX as usize {
        return Err(err(&format!("{n} {what} exceed the u16 wire count")));
    }
    buf.put_u16_le(n as u16);
    Ok(())
}

/// Encoded size of a tensor on the wire: rank byte + u32 dims + f32 data.
fn tensor_wire_len(t: &Tensor) -> usize {
    1 + 4 * t.shape().rank() + 4 * t.data().len()
}

/// f32s converted per stack-buffer flush in [`put_tensor`]: 1 KiB chunks —
/// bulk enough to amortize the `put_slice` bounds check, small enough for
/// the stack.
const F32_ENC_CHUNK: usize = 256;

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.reserve(tensor_wire_len(t));
    buf.put_u8(t.shape().rank() as u8);
    for &d in t.shape().dims() {
        buf.put_u32_le(d as u32);
    }
    // Bulk-encode the f32 payload through a stack chunk: multi-MB
    // FACE/ASR tensors dominate the frame, so one `put_slice` per float
    // is a hot spot.
    let mut chunk = [0u8; 4 * F32_ENC_CHUNK];
    for vals in t.data().chunks(F32_ENC_CHUNK) {
        for (slot, &v) in chunk.chunks_exact_mut(4).zip(vals) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(&chunk[..4 * vals.len()]);
    }
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 2 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string body"));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| err("string is not utf-8"))
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor> {
    let mut data = Vec::new();
    let shape = get_tensor_into(buf, &mut data)?;
    Ok(Tensor::from_vec(shape, data).expect("volume matches by construction"))
}

/// Decodes a wire tensor into `data` (cleared first, capacity reused);
/// returns the decoded shape. The borrow-on-decode primitive behind
/// [`get_tensor`] and [`Response::decode_output_into`]: a consumer that
/// keeps one `Vec<f32>` per connection pays no per-frame allocation for
/// the multi-MB f32 section.
fn get_tensor_into(buf: &mut &[u8], data: &mut Vec<f32>) -> Result<Shape> {
    if buf.remaining() < 1 {
        return Err(err("truncated tensor rank"));
    }
    let rank = buf.get_u8() as usize;
    if rank == 0 || rank > 4 {
        return Err(err(&format!("tensor rank {rank} out of 1..=4")));
    }
    if buf.remaining() < rank * 4 {
        return Err(err("truncated tensor dims"));
    }
    let mut dims = [0usize; 4];
    for d in dims.iter_mut().take(rank) {
        *d = buf.get_u32_le() as usize;
    }
    let shape = Shape::new(&dims[..rank]).map_err(|e| err(&format!("bad tensor shape: {e}")))?;
    let n = shape.volume();
    if buf.remaining() < n * 4 {
        return Err(err("truncated tensor data"));
    }
    // Bulk-decode the f32 payload: multi-MB FACE/ASR tensors dominate the
    // frame, so the per-element `get_f32_le` cursor loop is a hot spot.
    data.clear();
    data.reserve(n);
    data.extend(
        buf[..n * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
    buf.advance(n * 4);
    Ok(shape)
}

fn err(reason: &str) -> DjinnError {
    DjinnError::Protocol {
        reason: reason.to_string(),
    }
}

/// Reads the correlation ID v4 added to control and error frames; a
/// pre-v4 frame has none and decodes as the uncorrelated sentinel 0.
fn get_request_id(buf: &mut &[u8], version: u8) -> Result<u64> {
    if version < 4 {
        return Ok(0);
    }
    if buf.remaining() < 8 {
        return Err(err("truncated request id"));
    }
    Ok(buf.get_u64_le())
}

/// Reads the trace block prefixed to successful results: 40 bytes from
/// a v3/v4 peer, 48 from v5 (which inserts `lease_us` between the batch
/// and service spans), 56 from v6 (which appends a cache-hit word — at
/// the *end*, so the request ID keeps its fixed offset for in-place
/// rewriting; see [`response_id_slot`]), 72 from v7 (which appends the
/// per-token words `first_token_us` and `tokens`, again trailing). A
/// pre-v3 response has none and decodes as the all-zero "peer reported
/// none" trace.
fn get_trace(buf: &mut &[u8], version: u8) -> Result<ServerTrace> {
    if version < 3 {
        return Ok(ServerTrace::default());
    }
    let len = match version {
        3 | 4 => 40,
        5 => 48,
        6 => 56,
        _ => 72,
    };
    if buf.remaining() < len {
        return Err(err("truncated trace block"));
    }
    let request_id = buf.get_u64_le();
    let queue_us = buf.get_u64_le();
    let batch_us = buf.get_u64_le();
    let lease_us = if version >= 5 { buf.get_u64_le() } else { 0 };
    let service_us = buf.get_u64_le();
    let server_total_us = buf.get_u64_le();
    let cache_hit = version >= 6 && buf.get_u64_le() != 0;
    let (first_token_us, tokens) = if version >= 7 {
        (buf.get_u64_le(), buf.get_u64_le())
    } else {
        (0, 0)
    };
    Ok(ServerTrace {
        request_id,
        queue_us,
        batch_us,
        lease_us,
        service_us,
        server_total_us,
        cache_hit,
        first_token_us,
        tokens,
    })
}

/// Writes the 72-byte v7 trace block — shared by the `Output` and
/// `Chunk` encoders so both stay byte-identical in layout.
fn put_trace(buf: &mut BytesMut, trace: &ServerTrace) {
    buf.put_u64_le(trace.request_id);
    buf.put_u64_le(trace.queue_us);
    buf.put_u64_le(trace.batch_us);
    buf.put_u64_le(trace.lease_us);
    buf.put_u64_le(trace.service_us);
    buf.put_u64_le(trace.server_total_us);
    buf.put_u64_le(trace.cache_hit as u64);
    buf.put_u64_le(trace.first_token_us);
    buf.put_u64_le(trace.tokens);
}

fn header(buf: &mut BytesMut, opcode: u8) {
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(opcode);
}

/// Validates magic and version; returns `(version, opcode)`. Every
/// version from 1 through [`VERSION`] is accepted so newer peers can
/// still decode frames from older ones.
fn check_header(buf: &mut &[u8]) -> Result<(u8, u8)> {
    if buf.remaining() < 6 {
        return Err(err("frame shorter than header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = buf.get_u8();
    if !(1..=VERSION).contains(&version) {
        return Err(err(&format!("unsupported version {version}")));
    }
    Ok((version, buf.get_u8()))
}

/// Encodes an infer payload from borrowed parts — shared by
/// [`Request::encode_into`] and [`encode_infer_framed_into`] so the
/// borrowed fast path is byte-identical by construction.
fn put_infer_payload(
    buf: &mut BytesMut,
    model: &str,
    input: &Tensor,
    request_id: u64,
) -> Result<()> {
    header(buf, OP_INFER);
    put_str(buf, model)?;
    buf.put_u64_le(request_id);
    put_tensor(buf, input);
    Ok(())
}

/// Lays out one complete `[u32 len | payload]` frame in `buf`: clears it
/// (keeping capacity), reserves the length slot, runs the payload
/// encoder, then backfills the little-endian length — leaving `buf` ready
/// for a single `write_all`.
fn frame_into(buf: &mut BytesMut, encode: impl FnOnce(&mut BytesMut) -> Result<()>) -> Result<()> {
    buf.clear();
    buf.put_u32_le(0); // length, backfilled below
    encode(buf)?;
    let len = buf.len() - 4;
    if len > MAX_FRAME {
        return Err(err(&format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    buf[..4].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Encodes a complete infer request *frame* (length prefix included) from
/// borrowed parts into a reusable buffer: no `Request` construction, no
/// tensor clone, no steady-state allocation. Byte-identical to encoding
/// `Request::Infer { .. }` with [`Request::encode_framed_into`].
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] if a field cannot be represented on
/// the wire (e.g. a model name longer than [`MAX_STR`]).
pub fn encode_infer_framed_into(
    buf: &mut BytesMut,
    model: &str,
    input: &Tensor,
    request_id: u64,
) -> Result<()> {
    frame_into(buf, |b| put_infer_payload(b, model, input, request_id))
}

impl Request {
    /// Serializes the request into a payload (without the frame length).
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] if a field cannot be represented
    /// on the wire (e.g. a model name longer than [`MAX_STR`]).
    pub fn encode(&self) -> Result<BytesMut> {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the encoded payload to `buf` without clearing it, so hot
    /// paths can reuse one scratch buffer across frames.
    ///
    /// # Errors
    ///
    /// Same as [`Request::encode`].
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<()> {
        match self {
            Request::Infer {
                model,
                input,
                request_id,
            } => put_infer_payload(buf, model, input, *request_id)?,
            Request::ListModels { request_id } => {
                header(buf, OP_LIST);
                buf.put_u64_le(*request_id);
            }
            Request::Stats { request_id } => {
                header(buf, OP_STATS);
                buf.put_u64_le(*request_id);
            }
            Request::StreamInfer {
                model,
                input,
                request_id,
                mode,
            } => {
                header(buf, OP_STREAM_INFER);
                put_str(buf, model)?;
                buf.put_u64_le(*request_id);
                buf.put_u8(mode.opbyte());
                buf.put_u32_le(mode.param());
                put_tensor(buf, input);
            }
        }
        Ok(())
    }

    /// Encodes one complete `[len | payload]` frame into `buf` (cleared
    /// first, capacity kept), ready for a single `write_all` — the
    /// zero-allocation steady-state send path.
    ///
    /// # Errors
    ///
    /// Same as [`Request::encode`].
    pub fn encode_framed_into(&self, buf: &mut BytesMut) -> Result<()> {
        frame_into(buf, |b| self.encode_into(b))
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for any malformed frame.
    pub fn decode(mut payload: &[u8]) -> Result<Self> {
        let buf = &mut payload;
        let (version, opcode) = check_header(buf)?;
        match opcode {
            OP_INFER => {
                let model = get_str(buf)?;
                // v3 added the client-assigned trace ID; a pre-v3 frame
                // has none and decodes as the untraced sentinel 0.
                let request_id = if version >= 3 {
                    if buf.remaining() < 8 {
                        return Err(err("truncated request id"));
                    }
                    buf.get_u64_le()
                } else {
                    0
                };
                let input = get_tensor(buf)?;
                Ok(Request::Infer {
                    model,
                    input,
                    request_id,
                })
            }
            OP_LIST => Ok(Request::ListModels {
                request_id: get_request_id(buf, version)?,
            }),
            OP_STATS => Ok(Request::Stats {
                request_id: get_request_id(buf, version)?,
            }),
            OP_STREAM_INFER => {
                if version < 7 {
                    return Err(err("stream_req frames require protocol v7"));
                }
                let model = get_str(buf)?;
                if buf.remaining() < 8 + 1 + 4 {
                    return Err(err("truncated stream request"));
                }
                let request_id = buf.get_u64_le();
                let mode_byte = buf.get_u8();
                let param = buf.get_u32_le();
                let mode = StreamMode::from_wire(mode_byte, param)?;
                let input = get_tensor(buf)?;
                Ok(Request::StreamInfer {
                    model,
                    input,
                    request_id,
                    mode,
                })
            }
            other => Err(err(&format!("unexpected request opcode {other}"))),
        }
    }
}

impl Response {
    /// Serializes the response into a payload (without the frame length).
    ///
    /// Error messages are clamped to [`MAX_STR`] bytes so a
    /// [`Response::Error`] always encodes; other over-long strings (model
    /// names) are protocol errors.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] if a field cannot be represented
    /// on the wire.
    pub fn encode(&self) -> Result<BytesMut> {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the encoded payload to `buf` without clearing it, so hot
    /// paths can reuse one scratch buffer across frames.
    ///
    /// # Errors
    ///
    /// Same as [`Response::encode`].
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<()> {
        match self {
            Response::Output { tensor, trace } => {
                header(buf, OP_RESULT);
                buf.put_u8(STATUS_OK);
                put_trace(buf, trace);
                put_tensor(buf, tensor);
            }
            Response::Chunk {
                tensor,
                trace,
                seq,
                last,
            } => {
                header(buf, OP_OUTPUT_CHUNK);
                buf.put_u8(STATUS_OK);
                put_trace(buf, trace);
                buf.put_u32_le(*seq);
                buf.put_u8(if *last { CHUNK_FLAG_FINAL } else { 0 });
                put_tensor(buf, tensor);
            }
            Response::Error {
                request_id,
                message,
            } => {
                header(buf, OP_RESULT);
                buf.put_u8(STATUS_ERR);
                buf.put_u64_le(*request_id);
                put_str(buf, clamp_str(message))?;
            }
            Response::Models { request_id, names } => {
                header(buf, OP_LIST_RESULT);
                buf.put_u64_le(*request_id);
                put_count(buf, names.len(), "model names")?;
                for n in names {
                    put_str(buf, n)?;
                }
            }
            Response::Stats {
                request_id,
                unknown_model_requests,
                stats,
            } => {
                header(buf, OP_STATS_RESULT);
                buf.put_u64_le(*request_id);
                buf.put_u64_le(*unknown_model_requests);
                put_count(buf, stats.len(), "stats entries")?;
                for s in stats {
                    put_str(buf, &s.model)?;
                    buf.put_u64_le(s.requests);
                    buf.put_u64_le(s.errors);
                    buf.put_u64_le(s.total_latency_us);
                    buf.put_u64_le(s.max_latency_us);
                    buf.put_u64_le(s.queue_depth);
                    buf.put_u64_le(s.in_flight);
                    buf.put_u64_le(s.shed);
                    buf.put_u64_le(s.p50_queue_wait_us);
                    buf.put_u64_le(s.p99_queue_wait_us);
                    buf.put_u64_le(s.p50_batch_wait_us);
                    buf.put_u64_le(s.p99_batch_wait_us);
                    buf.put_u64_le(s.p50_service_us);
                    buf.put_u64_le(s.p99_service_us);
                    buf.put_u64_le(s.p50_wire_us);
                    buf.put_u64_le(s.p99_wire_us);
                    buf.put_u64_le(s.p50_lease_wait_us);
                    buf.put_u64_le(s.p99_lease_wait_us);
                    buf.put_u64_le(s.cache_hits);
                    buf.put_u64_le(s.cache_misses);
                    buf.put_u64_le(s.cache_evictions);
                    buf.put_u64_le(s.tokens_out);
                    buf.put_u64_le(s.p50_token_gap_us);
                    buf.put_u64_le(s.p99_token_gap_us);
                }
            }
            Response::Busy {
                request_id,
                model,
                queue_depth,
            } => {
                header(buf, OP_BUSY);
                buf.put_u64_le(*request_id);
                put_str(buf, model)?;
                buf.put_u32_le(*queue_depth);
            }
        }
        Ok(())
    }

    /// Encodes one complete `[len | payload]` frame into `buf` (cleared
    /// first, capacity kept), ready for a single `write_all` — the
    /// zero-allocation steady-state reply path.
    ///
    /// # Errors
    ///
    /// Same as [`Response::encode`].
    pub fn encode_framed_into(&self, buf: &mut BytesMut) -> Result<()> {
        frame_into(buf, |b| self.encode_into(b))
    }

    /// Decodes a successful `Output` payload, landing the f32 tensor data
    /// in the caller's reusable buffer (cleared first, capacity kept)
    /// instead of allocating per frame. Returns the tensor's shape and
    /// the server trace. Any other frame kind — including a well-formed
    /// `Error` or `Busy` — is a protocol error; general consumers that
    /// must handle those use [`Response::decode`].
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for malformed frames and for
    /// frames that are not a successful inference result.
    pub fn decode_output_into(
        mut payload: &[u8],
        data: &mut Vec<f32>,
    ) -> Result<(Shape, ServerTrace)> {
        let buf = &mut payload;
        let (version, opcode) = check_header(buf)?;
        if opcode != OP_RESULT {
            return Err(err(&format!(
                "expected an inference result, got opcode {opcode}"
            )));
        }
        if buf.remaining() < 1 {
            return Err(err("truncated status"));
        }
        let status = buf.get_u8();
        if status != STATUS_OK {
            return Err(err(&format!(
                "expected a successful result, got status {status}"
            )));
        }
        let trace = get_trace(buf, version)?;
        let shape = get_tensor_into(buf, data)?;
        Ok((shape, trace))
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for any malformed frame.
    pub fn decode(mut payload: &[u8]) -> Result<Self> {
        let buf = &mut payload;
        let (version, opcode) = check_header(buf)?;
        match opcode {
            OP_RESULT => {
                if buf.remaining() < 1 {
                    return Err(err("truncated status"));
                }
                match buf.get_u8() {
                    STATUS_OK => {
                        let trace = get_trace(buf, version)?;
                        Ok(Response::Output {
                            tensor: get_tensor(buf)?,
                            trace,
                        })
                    }
                    STATUS_ERR => Ok(Response::Error {
                        request_id: get_request_id(buf, version)?,
                        message: get_str(buf)?,
                    }),
                    s => Err(err(&format!("unknown status {s}"))),
                }
            }
            OP_OUTPUT_CHUNK => {
                if version < 7 {
                    return Err(err("chunk frames require protocol v7"));
                }
                if buf.remaining() < 1 {
                    return Err(err("truncated status"));
                }
                let status = buf.get_u8();
                if status != STATUS_OK {
                    return Err(err(&format!("unknown chunk status {status}")));
                }
                let trace = get_trace(buf, version)?;
                if buf.remaining() < 5 {
                    return Err(err("truncated chunk sequence"));
                }
                let seq = buf.get_u32_le();
                let flags = buf.get_u8();
                Ok(Response::Chunk {
                    tensor: get_tensor(buf)?,
                    trace,
                    seq,
                    last: flags & CHUNK_FLAG_FINAL != 0,
                })
            }
            OP_LIST_RESULT => {
                let request_id = get_request_id(buf, version)?;
                if buf.remaining() < 2 {
                    return Err(err("truncated model count"));
                }
                let count = buf.get_u16_le() as usize;
                let mut names = Vec::with_capacity(count);
                for _ in 0..count {
                    names.push(get_str(buf)?);
                }
                Ok(Response::Models { request_id, names })
            }
            OP_STATS_RESULT => {
                let request_id = get_request_id(buf, version)?;
                let unknown_model_requests = if version >= 4 {
                    if buf.remaining() < 8 {
                        return Err(err("truncated unknown-model counter"));
                    }
                    buf.get_u64_le()
                } else {
                    0
                };
                if buf.remaining() < 2 {
                    return Err(err("truncated stats count"));
                }
                let count = buf.get_u16_le() as usize;
                // v1 entries carry 4 u64 counters; v2 appends 5 more for
                // queue telemetry; v3 appends 6 breakdown quantiles; v5
                // appends 2 lease-wait quantiles; v6 appends 3 cache
                // counters; v7 appends 3 per-token words. Fields a
                // version predates decode as 0.
                let words = match version {
                    1 => 4,
                    2 => 9,
                    3 | 4 => 15,
                    5 => 17,
                    6 => 20,
                    _ => 23,
                };
                let mut stats = Vec::with_capacity(count);
                for _ in 0..count {
                    let model = get_str(buf)?;
                    if buf.remaining() < words * 8 {
                        return Err(err("truncated stats entry"));
                    }
                    let mut entry = ModelStats {
                        model,
                        requests: buf.get_u64_le(),
                        errors: buf.get_u64_le(),
                        total_latency_us: buf.get_u64_le(),
                        max_latency_us: buf.get_u64_le(),
                        queue_depth: 0,
                        in_flight: 0,
                        shed: 0,
                        p50_queue_wait_us: 0,
                        p99_queue_wait_us: 0,
                        p50_batch_wait_us: 0,
                        p99_batch_wait_us: 0,
                        p50_service_us: 0,
                        p99_service_us: 0,
                        p50_wire_us: 0,
                        p99_wire_us: 0,
                        p50_lease_wait_us: 0,
                        p99_lease_wait_us: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_evictions: 0,
                        tokens_out: 0,
                        p50_token_gap_us: 0,
                        p99_token_gap_us: 0,
                    };
                    if version >= 2 {
                        entry.queue_depth = buf.get_u64_le();
                        entry.in_flight = buf.get_u64_le();
                        entry.shed = buf.get_u64_le();
                        entry.p50_queue_wait_us = buf.get_u64_le();
                        entry.p99_queue_wait_us = buf.get_u64_le();
                    }
                    if version >= 3 {
                        entry.p50_batch_wait_us = buf.get_u64_le();
                        entry.p99_batch_wait_us = buf.get_u64_le();
                        entry.p50_service_us = buf.get_u64_le();
                        entry.p99_service_us = buf.get_u64_le();
                        entry.p50_wire_us = buf.get_u64_le();
                        entry.p99_wire_us = buf.get_u64_le();
                    }
                    if version >= 5 {
                        entry.p50_lease_wait_us = buf.get_u64_le();
                        entry.p99_lease_wait_us = buf.get_u64_le();
                    }
                    if version >= 6 {
                        entry.cache_hits = buf.get_u64_le();
                        entry.cache_misses = buf.get_u64_le();
                        entry.cache_evictions = buf.get_u64_le();
                    }
                    if version >= 7 {
                        entry.tokens_out = buf.get_u64_le();
                        entry.p50_token_gap_us = buf.get_u64_le();
                        entry.p99_token_gap_us = buf.get_u64_le();
                    }
                    stats.push(entry);
                }
                Ok(Response::Stats {
                    request_id,
                    unknown_model_requests,
                    stats,
                })
            }
            OP_BUSY => {
                let request_id = get_request_id(buf, version)?;
                let model = get_str(buf)?;
                if buf.remaining() < 4 {
                    return Err(err("truncated busy depth"));
                }
                Ok(Response::Busy {
                    request_id,
                    model,
                    queue_depth: buf.get_u32_le(),
                })
            }
            other => Err(err(&format!("unexpected response opcode {other}"))),
        }
    }
}

/// Writes one length-prefixed frame as a *single* vectored write.
///
/// The old implementation issued two `write_all` calls (4-byte length
/// prefix, then payload); on an unbuffered `TcpStream` without
/// `TCP_NODELAY` that two-syscall pattern triggers the Nagle +
/// delayed-ACK interaction and pins small-frame latency at ~40 ms. Here
/// prefix and payload go out together through `write_vectored` (`writev`
/// on a socket: one syscall, one segment). The partial-write loop is
/// correct for *any* writer, including those whose default
/// `write_vectored` degrades to writing only the first non-empty buffer
/// per call — the loop simply advances through both slices until done.
/// Hot paths that must guarantee one syscall regardless of writer
/// support instead pre-frame into a scratch buffer with
/// [`Request::encode_framed_into`]/[`Response::encode_framed_into`] and
/// issue a single contiguous `write_all`.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] for a payload exceeding
/// [`MAX_FRAME`]; propagates I/O failures (a writer that accepts zero
/// bytes surfaces as `WriteZero`).
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(err(&format!(
            "frame length {} exceeds cap {MAX_FRAME}",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    let mut prefix: &[u8] = &len;
    let mut rest = payload;
    while !prefix.is_empty() || !rest.is_empty() {
        let bufs = [IoSlice::new(prefix), IoSlice::new(rest)];
        match w.write_vectored(&bufs) {
            Ok(0) => {
                return Err(DjinnError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "writer accepted zero bytes mid-frame",
                )));
            }
            Ok(mut n) => {
                let from_prefix = n.min(prefix.len());
                prefix = &prefix[from_prefix..];
                n -= from_prefix;
                rest = &rest[n..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from a *blocking* stream.
///
/// Unsuitable for sockets with a read timeout: `read_exact` discards
/// already-consumed bytes when the timeout fires mid-frame, desyncing the
/// stream. Use [`FrameReader`] there.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] if the advertised length exceeds
/// [`MAX_FRAME`]; propagates I/O failures (including clean EOF as
/// `UnexpectedEof`).
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(err(&format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    // Read into reserved-but-uninitialized capacity via `take` +
    // `read_to_end`: no zero-fill pass over a multi-MB payload before the
    // bytes land. The up-front reservation is capped so a hostile prefix
    // (already bounded by MAX_FRAME) can claim at most 1 MiB before any
    // payload byte arrives; `read_to_end` grows the rest on demand.
    const INITIAL_FRAME_RESERVE: usize = 1 << 20;
    let mut payload = Vec::with_capacity(len.min(INITIAL_FRAME_RESERVE));
    let got = (&mut r).take(len as u64).read_to_end(&mut payload)?;
    if got < len {
        return Err(DjinnError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        )));
    }
    Ok(payload)
}

/// A stateful, buffered frame reader that survives read timeouts without
/// losing bytes.
///
/// Partial reads accumulate in an internal buffer across calls; a read
/// timeout (`WouldBlock`/`TimedOut`) surfaces as `Ok(None)` — "no complete
/// frame yet" — with every byte retained, so the caller can poll a stop
/// flag (or give up) and come back. Hostile length prefixes are rejected
/// as soon as the four prefix bytes arrive, before any payload is
/// buffered. One `FrameReader` serves one stream for the stream's
/// lifetime; bytes of a later frame that arrive early (pipelined
/// requests) are kept and yielded on the next call without touching the
/// socket.
///
/// Internally the buffer is managed as a read/consume cursor pair:
/// consuming a frame just advances `pos` (the old implementation
/// `drain`ed the front of the buffer, copying every remaining byte once
/// per frame), the socket reads directly into the spare tail of the
/// buffer (no intermediate stack chunk), and compaction runs only when
/// the tail is exhausted *and* at least half the filled region is
/// already consumed — so the copy cost stays amortized O(1) per byte.
/// [`FrameReader::read_frame_ref`] additionally yields the frame as a
/// borrowed slice of this buffer: the steady-state receive path performs
/// zero per-frame allocations.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Backing storage: `buf[pos..end]` is buffered-but-unconsumed wire
    /// data, `buf[end..]` is initialized spare space the next socket
    /// read lands in. `buf.len()` only grows, so the zero-fill of new
    /// spare space is paid once per growth, not per read.
    buf: Vec<u8>,
    /// Consume cursor: start of unconsumed bytes.
    pos: usize,
    /// Fill cursor: end of unconsumed bytes.
    end: usize,
}

/// Read granularity: spare buffer space grows in steps of this size, so
/// one syscall can pull at most this much past what is already buffered.
const READ_CHUNK: usize = 64 * 1024;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Bytes buffered toward the next frame (diagnostics and tests).
    pub fn buffered(&self) -> usize {
        self.end - self.pos
    }

    /// Pulls the next complete frame, reading from `r` as needed.
    ///
    /// Returns `Ok(Some(payload))` once a whole frame is available,
    /// `Ok(None)` when the stream's read timeout fired first (partial
    /// bytes stay buffered for the next call).
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for a length prefix exceeding
    /// [`MAX_FRAME`], `UnexpectedEof` when the stream closes (mid-frame or
    /// between frames), and propagates other I/O failures.
    pub fn read_frame<R: Read>(&mut self, r: R) -> Result<Option<Vec<u8>>> {
        Ok(self.read_frame_ref(r)?.map(<[u8]>::to_vec))
    }

    /// Like [`FrameReader::read_frame`], but yields the frame as a slice
    /// borrowed from the internal buffer — no per-frame allocation. The
    /// slice is valid until the next call on this reader; decode it (or
    /// copy what outlives the call) before reading again.
    ///
    /// # Errors
    ///
    /// Same as [`FrameReader::read_frame`].
    pub fn read_frame_ref<R: Read>(&mut self, mut r: R) -> Result<Option<&[u8]>> {
        loop {
            if let Some(range) = self.buffered_frame_range()? {
                return Ok(Some(&self.buf[range]));
            }
            self.ensure_read_space();
            match r.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    let reason = if self.buffered() == 0 {
                        "connection closed"
                    } else {
                        "connection closed mid-frame"
                    };
                    return Err(DjinnError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        reason,
                    )));
                }
                Ok(n) => self.end += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Locates the next complete frame in the buffer and consumes it by
    /// advancing the cursor; returns the payload's range within `buf`.
    /// (Returning a range instead of a slice keeps the borrow short, so
    /// the caller's read loop can keep mutating the buffer.)
    fn buffered_frame_range(&mut self) -> Result<Option<std::ops::Range<usize>>> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let prefix = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(err(&format!("frame length {len} exceeds cap {MAX_FRAME}")));
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        self.pos = start + len;
        Ok(Some(start..start + len))
    }

    /// Guarantees `buf[end..]` is non-empty so a read can make progress:
    /// resets the cursors when everything is consumed (free), compacts
    /// when the filled region hits the end and at least half of it is
    /// consumed (the copy recovers more space than it moves), and
    /// otherwise grows the initialized region by [`READ_CHUNK`].
    fn ensure_read_space(&mut self) {
        if self.pos == self.end {
            self.pos = 0;
            self.end = 0;
        } else if self.end == self.buf.len() && self.pos >= self.end - self.pos {
            self.buf.copy_within(self.pos..self.end, 0);
            self.end -= self.pos;
            self.pos = 0;
        }
        if self.end == self.buf.len() {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
    }
}

/// The routing-relevant fields of a request frame, read without decoding
/// the payload.
///
/// A proxy (see [`crate::DjinnRouter`]) needs three things from an inbound
/// frame: which kind of request it is, which model it names, and where
/// the correlation ID sits so the ID can be rewritten *in place* — the
/// multi-MB tensor section is never parsed, validated, or copied beyond
/// the forwarding memcpy. `id_at` is the byte offset of the 8-byte
/// little-endian ID within the payload, or `None` when the frame's
/// version predates that field (pre-v3 `Infer`, pre-v4 control frames),
/// in which case `request_id` is the uncorrelated sentinel 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPeek<'a> {
    /// An `Infer` frame for `model`; the tensor bytes are untouched.
    Infer {
        /// Model name, borrowed from the frame.
        model: &'a str,
        /// Client-assigned ID (0 for a pre-v3 frame).
        request_id: u64,
        /// Offset of the ID field, `None` on a pre-v3 frame.
        id_at: Option<usize>,
    },
    /// A `ListModels` control frame.
    ListModels {
        /// Client-assigned ID (0 for a pre-v4 frame).
        request_id: u64,
        /// Offset of the ID field, `None` on a pre-v4 frame.
        id_at: Option<usize>,
    },
    /// A `Stats` control frame.
    Stats {
        /// Client-assigned ID (0 for a pre-v4 frame).
        request_id: u64,
        /// Offset of the ID field, `None` on a pre-v4 frame.
        id_at: Option<usize>,
    },
    /// A v7 `StreamInfer` frame for `model`; routed like an `Infer` (the
    /// name and ID sit at the same offsets) but answered by a run of
    /// chunk frames that must all return through the same upstream.
    StreamInfer {
        /// Model name, borrowed from the frame.
        model: &'a str,
        /// Client-assigned stream ID.
        request_id: u64,
        /// Offset of the ID field (always present: the frame is v7+).
        id_at: Option<usize>,
    },
}

impl RequestPeek<'_> {
    /// The frame's correlation ID (0 when the version carries none).
    pub fn request_id(&self) -> u64 {
        match self {
            RequestPeek::Infer { request_id, .. }
            | RequestPeek::StreamInfer { request_id, .. }
            | RequestPeek::ListModels { request_id, .. }
            | RequestPeek::Stats { request_id, .. } => *request_id,
        }
    }

    /// Byte offset of the ID field within the payload, if the frame's
    /// version carries one.
    pub fn id_at(&self) -> Option<usize> {
        match self {
            RequestPeek::Infer { id_at, .. }
            | RequestPeek::StreamInfer { id_at, .. }
            | RequestPeek::ListModels { id_at, .. }
            | RequestPeek::Stats { id_at, .. } => *id_at,
        }
    }
}

/// Reads a request frame's kind, model name, and correlation-ID location
/// without decoding the tensor payload. See [`RequestPeek`].
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] for a malformed header, a truncated
/// name/ID field, or an unknown request opcode. The tensor section is
/// *not* validated — the serving backend that eventually decodes the
/// frame still performs the full check.
pub fn peek_request(payload: &[u8]) -> Result<RequestPeek<'_>> {
    let mut hdr = payload;
    let (version, opcode) = check_header(&mut hdr)?;
    match opcode {
        OP_INFER | OP_STREAM_INFER => {
            if opcode == OP_STREAM_INFER && version < 7 {
                return Err(err("stream_req frames require protocol v7"));
            }
            if payload.len() < 8 {
                return Err(err("truncated string length"));
            }
            let name_len = u16::from_le_bytes([payload[6], payload[7]]) as usize;
            let name_end = 8 + name_len;
            if payload.len() < name_end {
                return Err(err("truncated string body"));
            }
            let model = std::str::from_utf8(&payload[8..name_end])
                .map_err(|_| err("string is not utf-8"))?;
            if opcode == OP_STREAM_INFER {
                if payload.len() < name_end + 8 {
                    return Err(err("truncated request id"));
                }
                let request_id = u64::from_le_bytes(
                    payload[name_end..name_end + 8].try_into().expect("8 bytes"),
                );
                return Ok(RequestPeek::StreamInfer {
                    model,
                    request_id,
                    id_at: Some(name_end),
                });
            }
            if version >= 3 {
                if payload.len() < name_end + 8 {
                    return Err(err("truncated request id"));
                }
                let request_id = u64::from_le_bytes(
                    payload[name_end..name_end + 8].try_into().expect("8 bytes"),
                );
                Ok(RequestPeek::Infer {
                    model,
                    request_id,
                    id_at: Some(name_end),
                })
            } else {
                Ok(RequestPeek::Infer {
                    model,
                    request_id: 0,
                    id_at: None,
                })
            }
        }
        OP_LIST | OP_STATS => {
            let (request_id, id_at) = if version >= 4 {
                if payload.len() < 14 {
                    return Err(err("truncated request id"));
                }
                let id = u64::from_le_bytes(payload[6..14].try_into().expect("8 bytes"));
                (id, Some(6))
            } else {
                (0, None)
            };
            Ok(if opcode == OP_LIST {
                RequestPeek::ListModels { request_id, id_at }
            } else {
                RequestPeek::Stats { request_id, id_at }
            })
        }
        other => Err(err(&format!("unexpected request opcode {other}"))),
    }
}

/// Locates a response frame's correlation ID without decoding the
/// payload: returns `(request_id, byte offset of the 8-byte field)`, or
/// `None` when the frame's version predates the field (pre-v3 `Output`
/// trace, pre-v4 `Error`/`Busy`/control responses) and the response is
/// therefore uncorrelated. The tensor/stats sections are not validated.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] for a malformed header, a truncated
/// ID field, an unknown status byte, or an unknown response opcode.
/// Whether a response payload is a `Busy` (load-shed) frame, checked
/// from the header bytes alone. A router uses this to feed its live
/// shed signal without decoding the frame it is forwarding: a replica
/// at queue-full answers instantly, so by outstanding-count alone it
/// looks *idle* — exactly the trap that floods a shedding replica.
pub fn is_busy_response(payload: &[u8]) -> bool {
    payload.len() > 5 && payload[..4] == *MAGIC && payload[5] == OP_BUSY
}

/// Whether `payload` is a *non-final* `chunk` frame, judged from the
/// fixed-offset header bytes alone (no tensor decode). A router uses
/// this to keep a stream's in-flight entry registered — every chunk of
/// a stream must flow back through the replica that owns it — until the
/// final chunk retires the request. Anything that is not a well-formed
/// v7 chunk (including a truncated one) answers `false`, so malformed
/// frames fall through to the normal retire-on-reply path.
pub fn is_partial_chunk(payload: &[u8]) -> bool {
    // magic(4) version(1) opcode(1) status(1) trace(72) seq(4) flags(1):
    // the flags byte sits at offset 83. Chunks exist only from v7 on,
    // where the trace block is always the full 72 bytes.
    payload.len() > 83
        && payload[..4] == *MAGIC
        && payload[4] >= 7
        && payload[5] == OP_OUTPUT_CHUNK
        && payload[83] & CHUNK_FLAG_FINAL == 0
}

pub fn response_id_slot(payload: &[u8]) -> Result<Option<(u64, usize)>> {
    let mut hdr = payload;
    let (version, opcode) = check_header(&mut hdr)?;
    let at = match opcode {
        OP_RESULT => {
            if payload.len() < 7 {
                return Err(err("truncated status"));
            }
            match payload[6] {
                // A successful result leads with the v3 trace block whose
                // first word is the echoed ID; an error result leads with
                // the v4 ID field. Both land at offset 7.
                STATUS_OK if version >= 3 => Some(7),
                STATUS_ERR if version >= 4 => Some(7),
                STATUS_OK | STATUS_ERR => None,
                s => return Err(err(&format!("unknown status {s}"))),
            }
        }
        OP_OUTPUT_CHUNK => {
            // Chunks only exist from v7 on; like a successful result,
            // the trace block (whose first word is the echoed ID)
            // follows the status byte.
            if version < 7 {
                return Err(err("chunk frames require protocol v7"));
            }
            if payload.len() < 7 {
                return Err(err("truncated status"));
            }
            Some(7)
        }
        OP_LIST_RESULT | OP_STATS_RESULT | OP_BUSY => {
            if version >= 4 {
                Some(6)
            } else {
                None
            }
        }
        other => return Err(err(&format!("unexpected response opcode {other}"))),
    };
    match at {
        Some(at) => {
            if payload.len() < at + 8 {
                return Err(err("truncated request id"));
            }
            let id = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
            Ok(Some((id, at)))
        }
        None => Ok(None),
    }
}

/// Rewrites a request frame's correlation ID in place, returning the old
/// ID. The forwarding primitive behind [`crate::DjinnRouter`]: a proxy
/// stamps
/// its own upstream ID into the client's frame and relays the bytes
/// untouched otherwise.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] for malformed frames and for frames
/// whose version carries no ID slot (pre-v3 `Infer`, pre-v4 control) —
/// those cannot participate in ID-correlated forwarding.
pub fn rewrite_request_id(payload: &mut [u8], new_id: u64) -> Result<u64> {
    let peek = peek_request(payload)?;
    let Some(at) = peek.id_at() else {
        return Err(err("frame version carries no request-id slot"));
    };
    let old = peek.request_id();
    payload[at..at + 8].copy_from_slice(&new_id.to_le_bytes());
    Ok(old)
}

/// Rewrites a response frame's correlation ID in place, returning the old
/// ID — the return leg of [`rewrite_request_id`]: the proxy looks up the
/// answered upstream ID and restores the originating client's ID before
/// relaying the bytes.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] for malformed frames and for
/// uncorrelated frames (versions predating the ID field).
pub fn rewrite_response_id(payload: &mut [u8], new_id: u64) -> Result<u64> {
    let Some((old, at)) = response_id_slot(payload)? else {
        return Err(err("frame version carries no request-id slot"));
    };
    payload[at..at + 8].copy_from_slice(&new_id.to_le_bytes());
    Ok(old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Infer {
            model: "imc".into(),
            input: Tensor::random_uniform(Shape::nchw(2, 3, 4, 4), 1.0, 1),
            request_id: 0xDEAD_BEEF_0042,
        };
        let decoded = Request::decode(&req.encode().unwrap()).unwrap();
        assert_eq!(decoded, req);
        let list = Request::ListModels { request_id: 31 };
        assert_eq!(Request::decode(&list.encode().unwrap()).unwrap(), list);
        let stats = Request::Stats { request_id: 32 };
        assert_eq!(Request::decode(&stats.encode().unwrap()).unwrap(), stats);
    }

    fn stats_entry(model: &str) -> ModelStats {
        ModelStats {
            model: model.into(),
            requests: 42,
            errors: 1,
            total_latency_us: 10_000,
            max_latency_us: 900,
            queue_depth: 3,
            in_flight: 2,
            shed: 7,
            p50_queue_wait_us: 120,
            p99_queue_wait_us: 4_500,
            p50_batch_wait_us: 80,
            p99_batch_wait_us: 1_900,
            p50_service_us: 2_400,
            p99_service_us: 3_100,
            p50_wire_us: 60,
            p99_wire_us: 700,
            p50_lease_wait_us: 35,
            p99_lease_wait_us: 880,
            cache_hits: 18,
            cache_misses: 24,
            cache_evictions: 2,
            tokens_out: 640,
            p50_token_gap_us: 210,
            p99_token_gap_us: 2_900,
        }
    }

    #[test]
    fn stats_response_roundtrip() {
        let rsp = Response::Stats {
            request_id: 88,
            unknown_model_requests: 5,
            stats: vec![stats_entry("dig"), stats_entry("pos")],
        };
        assert_eq!(Response::decode(&rsp.encode().unwrap()).unwrap(), rsp);
    }

    #[test]
    fn mean_latency_handles_zero_requests() {
        let s = ModelStats {
            requests: 0,
            total_latency_us: 0,
            ..stats_entry("m")
        };
        assert_eq!(s.mean_latency_us(), 0.0);
    }

    #[test]
    fn version_constant_matches_the_correlated_protocol() {
        // v7 added streaming inference (stream_req/chunk frames, 72-byte
        // trace block with trailing first-token/token-count words, three
        // extra per-token stats words) on top of v6's cache telemetry;
        // bump this test alongside any future wire change.
        assert_eq!(VERSION, 7);
        let wire = Request::ListModels { request_id: 1 }.encode().unwrap();
        assert_eq!(wire[4], VERSION, "encoders must stamp VERSION");
    }

    #[test]
    fn busy_response_roundtrips() {
        let rsp = Response::Busy {
            request_id: 512,
            model: "imc".into(),
            queue_depth: 128,
        };
        assert_eq!(Response::decode(&rsp.encode().unwrap()).unwrap(), rsp);
    }

    #[test]
    fn every_response_variant_reports_its_request_id() {
        let variants: Vec<Response> = vec![
            Response::Output {
                tensor: Tensor::zeros(Shape::mat(1, 1)),
                trace: ServerTrace {
                    request_id: 7,
                    ..ServerTrace::default()
                },
            },
            Response::Error {
                request_id: 7,
                message: "boom".into(),
            },
            Response::Models {
                request_id: 7,
                names: vec![],
            },
            Response::Stats {
                request_id: 7,
                unknown_model_requests: 0,
                stats: vec![],
            },
            Response::Busy {
                request_id: 7,
                model: "imc".into(),
                queue_depth: 1,
            },
            Response::Chunk {
                tensor: Tensor::zeros(Shape::mat(1, 1)),
                trace: ServerTrace {
                    request_id: 7,
                    ..ServerTrace::default()
                },
                seq: 3,
                last: false,
            },
        ];
        for rsp in variants {
            assert_eq!(rsp.request_id(), 7, "{rsp:?}");
            let back = Response::decode(&rsp.encode().unwrap()).unwrap();
            assert_eq!(back.request_id(), 7, "id lost on the wire: {back:?}");
        }
    }

    #[test]
    fn stream_request_roundtrips_both_modes() {
        for mode in [
            StreamMode::Windowed { window_rows: 4 },
            StreamMode::Generative { max_tokens: 32 },
        ] {
            let req = Request::StreamInfer {
                model: "asr".into(),
                input: Tensor::random_uniform(Shape::mat(8, 5), 1.0, 3),
                request_id: 0xFACE,
                mode,
            };
            let back = Request::decode(&req.encode().unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn stream_request_rejects_unknown_mode_byte() {
        let mut wire = Request::StreamInfer {
            model: "m".into(),
            input: Tensor::zeros(Shape::mat(1, 1)),
            request_id: 5,
            mode: StreamMode::Windowed { window_rows: 1 },
        }
        .encode()
        .unwrap()
        .to_vec();
        // mode byte sits after magic+ver+op (6) + name (2+1) + id (8)
        wire[17] = 9;
        assert!(matches!(
            Request::decode(&wire),
            Err(DjinnError::Protocol { .. })
        ));
    }

    #[test]
    fn chunk_response_roundtrips_with_seq_and_final_flag() {
        for (seq, last) in [(0u32, false), (7, true)] {
            let rsp = Response::Chunk {
                tensor: Tensor::random_uniform(Shape::mat(1, 6), 1.0, 9),
                trace: ServerTrace {
                    request_id: 41,
                    queue_us: 5,
                    lease_us: 2,
                    service_us: 11,
                    server_total_us: 30,
                    first_token_us: 9,
                    tokens: u64::from(seq) + 1,
                    ..ServerTrace::default()
                },
                seq,
                last,
            };
            let back = Response::decode(&rsp.encode().unwrap()).unwrap();
            assert_eq!(back, rsp);
        }
    }

    #[test]
    fn peek_reads_stream_request_kind_and_id() {
        let req = Request::StreamInfer {
            model: "lm".into(),
            input: Tensor::zeros(Shape::mat(1, 4)),
            request_id: 0xBEEF,
            mode: StreamMode::Generative { max_tokens: 8 },
        };
        let wire = req.encode().unwrap();
        assert_eq!(
            peek_request(&wire).unwrap(),
            RequestPeek::StreamInfer {
                model: "lm",
                request_id: 0xBEEF,
                // Same slot as Infer: after magic+ver+op and the name.
                id_at: Some(4 + 1 + 1 + 2 + 2),
            }
        );
    }

    #[test]
    fn is_partial_chunk_spots_only_nonfinal_chunks() {
        let chunk = |last| Response::Chunk {
            tensor: Tensor::zeros(Shape::mat(1, 1)),
            trace: ServerTrace::default(),
            seq: 0,
            last,
        };
        let partial = chunk(false).encode().unwrap();
        assert!(is_partial_chunk(&partial));
        let terminal = chunk(true).encode().unwrap();
        assert!(!is_partial_chunk(&terminal));
        // Non-chunk frames and junk are never partial.
        let output = Response::Output {
            tensor: Tensor::zeros(Shape::mat(1, 1)),
            trace: ServerTrace::default(),
        }
        .encode()
        .unwrap();
        assert!(!is_partial_chunk(&output));
        assert!(!is_partial_chunk(b"DJNN"));
        assert!(!is_partial_chunk(&[]));
    }

    #[test]
    fn pre_v4_control_and_error_frames_decode_with_zero_id() {
        // v3 frames carry no correlation ID outside Infer/Output: splice
        // the v4 id (and the stats unknown-counter) bytes out and rewrite
        // the version byte; everything must decode with id 0.
        let mut list = Request::ListModels { request_id: 9 }
            .encode()
            .unwrap()
            .to_vec();
        list.drain(6..14);
        list[4] = 3;
        assert_eq!(
            Request::decode(&list).unwrap(),
            Request::ListModels { request_id: 0 }
        );

        let mut error = Response::Error {
            request_id: 9,
            message: "bad".into(),
        }
        .encode()
        .unwrap()
        .to_vec();
        error.drain(7..15); // id sits after magic+ver+op+status
        error[4] = 3;
        assert_eq!(
            Response::decode(&error).unwrap(),
            Response::Error {
                request_id: 0,
                message: "bad".into(),
            }
        );

        let mut busy = Response::Busy {
            request_id: 9,
            model: "imc".into(),
            queue_depth: 3,
        }
        .encode()
        .unwrap()
        .to_vec();
        busy.drain(6..14);
        busy[4] = 3;
        assert_eq!(
            Response::decode(&busy).unwrap(),
            Response::Busy {
                request_id: 0,
                model: "imc".into(),
                queue_depth: 3,
            }
        );

        let mut stats = Response::Stats {
            request_id: 9,
            unknown_model_requests: 4,
            stats: vec![stats_entry("dig")],
        }
        .encode()
        .unwrap()
        .to_vec();
        stats.drain(6..22); // id + unknown counter
        stats[4] = 3;
        // A v3 entry has no lease quantiles, cache counters, or token
        // words: they decode as zero (the eight extra encoded words
        // trail the entry and are ignored).
        let mut v3_entry = stats_entry("dig");
        v3_entry.p50_lease_wait_us = 0;
        v3_entry.p99_lease_wait_us = 0;
        v3_entry.cache_hits = 0;
        v3_entry.cache_misses = 0;
        v3_entry.cache_evictions = 0;
        v3_entry.tokens_out = 0;
        v3_entry.p50_token_gap_us = 0;
        v3_entry.p99_token_gap_us = 0;
        assert_eq!(
            Response::decode(&stats).unwrap(),
            Response::Stats {
                request_id: 0,
                unknown_model_requests: 0,
                stats: vec![v3_entry],
            }
        );
    }

    #[test]
    fn v5_frames_decode_with_zero_cache_fields() {
        // v5 → v7 compat: splice the trailing cache + token words out of
        // an Output trace block (and the six trailing counters out of a
        // stats entry), rewrite the version byte, and everything must
        // decode with the cache and token fields zero-filled.
        let tensor = Tensor::random_uniform(Shape::mat(1, 3), 1.0, 6);
        let rsp = Response::Output {
            tensor: tensor.clone(),
            trace: ServerTrace {
                request_id: 12,
                queue_us: 1,
                batch_us: 2,
                lease_us: 3,
                service_us: 4,
                server_total_us: 10,
                cache_hit: true,
                first_token_us: 5,
                tokens: 8,
            },
        };
        let mut wire = rsp.encode().unwrap().to_vec();
        wire.drain(7 + 48..7 + 72); // the v6 cache word + v7 token words
        wire[4] = 5;
        let decoded = Response::decode(&wire).unwrap();
        assert_eq!(
            decoded,
            Response::Output {
                tensor,
                trace: ServerTrace {
                    request_id: 12,
                    queue_us: 1,
                    batch_us: 2,
                    lease_us: 3,
                    service_us: 4,
                    server_total_us: 10,
                    cache_hit: false,
                    first_token_us: 0,
                    tokens: 0,
                },
            },
            "v5 peers report no cache disposition and no token telemetry"
        );

        let mut stats = Response::Stats {
            request_id: 9,
            unknown_model_requests: 0,
            stats: vec![stats_entry("pos")],
        }
        .encode()
        .unwrap()
        .to_vec();
        stats.drain(stats.len() - 48..); // 3 cache counters + 3 token words
        stats[4] = 5;
        let mut v5_entry = stats_entry("pos");
        v5_entry.cache_hits = 0;
        v5_entry.cache_misses = 0;
        v5_entry.cache_evictions = 0;
        v5_entry.tokens_out = 0;
        v5_entry.p50_token_gap_us = 0;
        v5_entry.p99_token_gap_us = 0;
        assert_eq!(v5_entry.cache_hit_rate(), 0.0);
        assert_eq!(
            Response::decode(&stats).unwrap(),
            Response::Stats {
                request_id: 9,
                unknown_model_requests: 0,
                stats: vec![v5_entry],
            }
        );
    }

    #[test]
    fn v6_frames_decode_with_zero_token_fields() {
        // v6 → v7 compat: a v6 Output trace block stops after the
        // cache-hit word and a v6 stats entry after the cache counters;
        // splice the v7 tails off and everything must decode with the
        // token fields zero-filled.
        let tensor = Tensor::random_uniform(Shape::mat(2, 2), 1.0, 13);
        let rsp = Response::Output {
            tensor: tensor.clone(),
            trace: ServerTrace {
                request_id: 21,
                queue_us: 7,
                batch_us: 8,
                lease_us: 9,
                service_us: 10,
                server_total_us: 40,
                cache_hit: true,
                first_token_us: 11,
                tokens: 12,
            },
        };
        let mut wire = rsp.encode().unwrap().to_vec();
        wire.drain(7 + 56..7 + 72); // the two trailing v7 token words
        wire[4] = 6;
        let decoded = Response::decode(&wire).unwrap();
        assert_eq!(
            decoded,
            Response::Output {
                tensor,
                trace: ServerTrace {
                    request_id: 21,
                    queue_us: 7,
                    batch_us: 8,
                    lease_us: 9,
                    service_us: 10,
                    server_total_us: 40,
                    cache_hit: true,
                    first_token_us: 0,
                    tokens: 0,
                },
            },
            "v6 peers keep their cache flag but report no token telemetry"
        );

        let mut stats = Response::Stats {
            request_id: 3,
            unknown_model_requests: 0,
            stats: vec![stats_entry("asr")],
        }
        .encode()
        .unwrap()
        .to_vec();
        stats.drain(stats.len() - 24..); // the 3 trailing token words
        stats[4] = 6;
        let mut v6_entry = stats_entry("asr");
        v6_entry.tokens_out = 0;
        v6_entry.p50_token_gap_us = 0;
        v6_entry.p99_token_gap_us = 0;
        assert_eq!(
            Response::decode(&stats).unwrap(),
            Response::Stats {
                request_id: 3,
                unknown_model_requests: 0,
                stats: vec![v6_entry],
            }
        );
    }

    #[test]
    fn cache_hit_rate_is_hits_over_lookups() {
        let s = stats_entry("pos"); // 18 hits, 24 misses
        assert!((s.cache_hit_rate() - 18.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn v1_stats_frames_still_decode_with_zero_queue_fields() {
        // Handcraft the 32-byte-entry v1 stats frame an old server sends.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(1); // protocol version 1
        buf.put_u8(6); // OP_STATS_RESULT
        buf.put_u16_le(1);
        buf.put_u16_le(3);
        buf.put_slice(b"dig");
        buf.put_u64_le(42); // requests
        buf.put_u64_le(1); // errors
        buf.put_u64_le(10_000); // total_latency_us
        buf.put_u64_le(900); // max_latency_us
        let decoded = Response::decode(&buf).unwrap();
        let Response::Stats {
            request_id,
            unknown_model_requests,
            stats,
        } = decoded
        else {
            panic!("expected Stats, got {decoded:?}");
        };
        assert_eq!(
            (request_id, unknown_model_requests),
            (0, 0),
            "v4 correlation fields must decode as zero from a v1 peer"
        );
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!((s.model.as_str(), s.requests, s.errors), ("dig", 42, 1));
        assert_eq!(s.total_latency_us, 10_000);
        assert_eq!(s.max_latency_us, 900);
        assert_eq!(
            (s.queue_depth, s.in_flight, s.shed),
            (0, 0, 0),
            "v1 queue fields must decode as zero"
        );
        assert_eq!((s.p50_queue_wait_us, s.p99_queue_wait_us), (0, 0));
        assert_eq!(
            (s.p50_batch_wait_us, s.p50_service_us, s.p50_wire_us),
            (0, 0, 0),
            "v3 breakdown fields must decode as zero from a v1 peer"
        );
    }

    #[test]
    fn v1_infer_requests_still_decode() {
        let req = Request::Infer {
            model: "m".into(),
            input: Tensor::zeros(Shape::mat(2, 2)),
            request_id: 77,
        };
        // A v1 frame has no request-id field: splice the 8 ID bytes out
        // (they sit right after the length-prefixed model name) and
        // rewrite the version byte.
        let mut wire = req.encode().unwrap().to_vec();
        let id_at = 4 + 1 + 1 + 2 + "m".len();
        wire.drain(id_at..id_at + 8);
        wire[4] = 1;
        let decoded = Request::decode(&wire).unwrap();
        let Request::Infer {
            model,
            input,
            request_id,
        } = decoded
        else {
            panic!("expected Infer");
        };
        assert_eq!(model, "m");
        assert_eq!(input, Tensor::zeros(Shape::mat(2, 2)));
        assert_eq!(request_id, 0, "pre-v3 frames decode as untraced");
        // Version 0 and versions beyond ours stay rejected.
        wire[4] = 0;
        assert!(Request::decode(&wire).is_err());
        wire[4] = VERSION + 1;
        assert!(Request::decode(&wire).is_err());
    }

    #[test]
    fn v2_output_frames_decode_with_zero_trace() {
        let tensor = Tensor::random_uniform(Shape::mat(2, 3), 1.0, 4);
        let rsp = Response::Output {
            tensor: tensor.clone(),
            trace: ServerTrace {
                request_id: 1,
                queue_us: 2,
                batch_us: 3,
                lease_us: 9,
                service_us: 4,
                server_total_us: 5,
                cache_hit: true,
                first_token_us: 6,
                tokens: 7,
            },
        };
        // A v2 frame has no trace block: splice out the 72 bytes that
        // follow the status byte and rewrite the version.
        let mut wire = rsp.encode().unwrap().to_vec();
        wire.drain(7..79);
        wire[4] = 2;
        let decoded = Response::decode(&wire).unwrap();
        assert_eq!(
            decoded,
            Response::Output {
                tensor,
                trace: ServerTrace::default(),
            },
            "pre-v3 responses decode with an all-zero trace"
        );
    }

    #[test]
    fn v4_output_frames_decode_with_zero_lease() {
        let tensor = Tensor::random_uniform(Shape::mat(1, 2), 1.0, 8);
        let rsp = Response::Output {
            tensor: tensor.clone(),
            trace: ServerTrace {
                request_id: 4,
                queue_us: 10,
                batch_us: 20,
                lease_us: 30,
                service_us: 40,
                server_total_us: 100,
                cache_hit: true,
                first_token_us: 50,
                tokens: 3,
            },
        };
        // A v4 frame has a 40-byte trace block without the lease word,
        // the v6 cache word, or the v7 token words: splice the trailing
        // three words out, then lease_us (it sits after id+queue+batch),
        // and rewrite the version byte.
        let mut wire = rsp.encode().unwrap().to_vec();
        wire.drain(7 + 48..7 + 72);
        wire.drain(7 + 24..7 + 32);
        wire[4] = 4;
        let decoded = Response::decode(&wire).unwrap();
        assert_eq!(
            decoded,
            Response::Output {
                tensor,
                trace: ServerTrace {
                    request_id: 4,
                    queue_us: 10,
                    batch_us: 20,
                    lease_us: 0,
                    service_us: 40,
                    server_total_us: 100,
                    cache_hit: false,
                    first_token_us: 0,
                    tokens: 0,
                },
            },
            "v4 peers report no lease wait and no cache flag"
        );
    }

    #[test]
    fn response_roundtrip() {
        for rsp in [
            Response::Output {
                tensor: Tensor::random_uniform(Shape::mat(3, 5), 1.0, 2),
                trace: ServerTrace {
                    request_id: 9,
                    queue_us: 120,
                    batch_us: 40,
                    lease_us: 15,
                    service_us: 2_000,
                    server_total_us: 2_300,
                    cache_hit: true,
                    first_token_us: 88,
                    tokens: 16,
                },
            },
            Response::Error {
                request_id: 10,
                message: "nope".into(),
            },
            Response::Models {
                request_id: 11,
                names: vec!["a".into(), "b".into()],
            },
        ] {
            assert_eq!(Response::decode(&rsp.encode().unwrap()).unwrap(), rsp);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let list = Request::ListModels { request_id: 0 };
        let mut buf = list.encode().unwrap().to_vec();
        buf[0] = b'X';
        assert!(Request::decode(&buf).is_err());
        let mut buf2 = list.encode().unwrap().to_vec();
        buf2[4] = 99;
        assert!(Request::decode(&buf2).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let full = Request::Infer {
            model: "m".into(),
            input: Tensor::zeros(Shape::mat(2, 2)),
            request_id: 5,
        }
        .encode()
        .unwrap()
        .to_vec();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn oversized_model_name_is_a_protocol_error_not_truncation() {
        let req = Request::Infer {
            model: "x".repeat(MAX_STR + 1),
            input: Tensor::zeros(Shape::mat(1, 1)),
            request_id: 0,
        };
        assert!(matches!(req.encode(), Err(DjinnError::Protocol { .. })));
        let rsp = Response::Models {
            request_id: 0,
            names: vec!["y".repeat(70_000)],
        };
        assert!(matches!(rsp.encode(), Err(DjinnError::Protocol { .. })));
    }

    #[test]
    fn oversized_error_message_is_clamped_to_a_valid_frame() {
        // 70k of a multi-byte char: clamping must stay on a char boundary
        // and the frame must decode with a consistent length.
        let msg = "é".repeat(40_000);
        let rsp = Response::Error {
            request_id: 3,
            message: msg.clone(),
        };
        let wire = rsp.encode().unwrap();
        match Response::decode(&wire).unwrap() {
            Response::Error {
                request_id,
                message: m,
            } => {
                assert_eq!(request_id, 3);
                assert!(m.len() <= MAX_STR);
                assert!(msg.starts_with(&m));
                assert!(!m.is_empty());
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn frame_io_roundtrip() {
        let payload = b"hello djinn".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let got = read_frame(&wire[..]).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn frame_rejects_hostile_length() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&wire[..]),
            Err(DjinnError::Protocol { .. })
        ));
    }

    #[test]
    fn rejects_zero_and_overlong_rank() {
        // Handcraft a tensor with rank 0 (after a valid zeroed trace
        // block, so the failure is the rank, not a truncated trace).
        let mut buf = BytesMut::new();
        header(&mut buf, OP_RESULT);
        buf.put_u8(STATUS_OK);
        buf.put_slice(&[0u8; 72]);
        buf.put_u8(0);
        assert!(Response::decode(&buf).is_err());
    }

    /// A reader delivering the wire bytes in predetermined chunks, with a
    /// simulated read timeout (`WouldBlock`) between consecutive chunks —
    /// exactly what a slow client looks like to the server.
    struct ChunkedStream {
        chunks: Vec<Vec<u8>>,
        next: usize,
        timeout_pending: bool,
    }

    impl ChunkedStream {
        fn new(chunks: Vec<Vec<u8>>) -> Self {
            ChunkedStream {
                chunks,
                next: 0,
                timeout_pending: false,
            }
        }
    }

    impl Read for ChunkedStream {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_pending {
                self.timeout_pending = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "simulated read timeout",
                ));
            }
            if self.next >= self.chunks.len() {
                return Ok(0); // EOF
            }
            let chunk = &mut self.chunks[self.next];
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            chunk.drain(..n);
            if chunk.is_empty() {
                self.next += 1;
                self.timeout_pending = true;
            }
            Ok(n)
        }
    }

    /// Drains every frame out of a chunked stream, treating `Ok(None)`
    /// timeouts as "poll again" like the server's connection loop does.
    fn collect_frames(stream: &mut ChunkedStream) -> (Vec<Vec<u8>>, DjinnError) {
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_frame(&mut *stream) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => continue,
                Err(e) => return (frames, e),
            }
        }
    }

    /// Same as [`collect_frames`] but through the borrowing fast path.
    fn collect_frames_ref(stream: &mut ChunkedStream) -> (Vec<Vec<u8>>, DjinnError) {
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_frame_ref(&mut *stream) {
                Ok(Some(f)) => frames.push(f.to_vec()),
                Ok(None) => continue,
                Err(e) => return (frames, e),
            }
        }
    }

    /// A writer that accepts at most `max` bytes per call — plain and
    /// vectored alike — forcing `write_frame`'s partial-write loop to
    /// straddle the prefix/payload boundary at every offset.
    struct TrickleWriter {
        out: Vec<u8>,
        max: usize,
        vectored_calls: usize,
    }

    impl TrickleWriter {
        fn new(max: usize) -> Self {
            TrickleWriter {
                out: Vec::new(),
                max,
                vectored_calls: 0,
            }
        }
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.max);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.vectored_calls += 1;
            let mut budget = self.max;
            let mut written = 0;
            for b in bufs {
                let n = b.len().min(budget);
                self.out.extend_from_slice(&b[..n]);
                written += n;
                budget -= n;
                if budget == 0 {
                    break;
                }
            }
            Ok(written)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer with *no* `write_vectored` override: the std default
    /// forwards only the first non-empty buffer to `write`, which is the
    /// degraded path `write_frame` must also survive.
    struct FirstBufferOnly {
        out: Vec<u8>,
        max: usize,
    }

    impl Write for FirstBufferOnly {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.max);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(payload);
        wire
    }

    #[test]
    fn write_frame_survives_partial_vectored_writes() {
        for payload in [&b""[..], &b"x"[..], &b"hello djinn, twelve"[..]] {
            for max in 1..=6 {
                let mut w = TrickleWriter::new(max);
                write_frame(&mut w, payload).unwrap();
                assert_eq!(w.out, framed(payload), "max={max}");
                assert!(w.vectored_calls >= 1);
            }
        }
    }

    #[test]
    fn write_frame_survives_default_first_buffer_vectored_impl() {
        let payload = b"prefix straddling payload";
        for max in [1, 3, 4, 7, 1024] {
            let mut w = FirstBufferOnly {
                out: Vec::new(),
                max,
            };
            write_frame(&mut w, payload).unwrap();
            assert_eq!(w.out, framed(payload), "max={max}");
        }
    }

    #[test]
    fn write_frame_retries_interrupted_writes() {
        /// Fails every other call with `Interrupted`.
        struct Flaky {
            inner: TrickleWriter,
            next_fails: bool,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.inner.write(buf)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
                self.next_fails = !self.next_fails;
                if self.next_fails {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "signal",
                    ));
                }
                self.inner.write_vectored(bufs)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = Flaky {
            inner: TrickleWriter::new(2),
            next_fails: false,
        };
        write_frame(&mut w, b"abcdef").unwrap();
        assert_eq!(w.inner.out, framed(b"abcdef"));
    }

    #[test]
    fn write_frame_errors_on_writer_that_accepts_nothing() {
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let got = write_frame(Stuck, b"payload");
        assert!(matches!(got, Err(DjinnError::Io(ref e))
            if e.kind() == std::io::ErrorKind::WriteZero));
    }

    #[test]
    fn framed_encode_matches_write_frame_bytes() {
        let request = Request::Infer {
            model: "imc".into(),
            input: Tensor::random_uniform(Shape::nchw(1, 3, 4, 4), 1.0, 9),
            request_id: 41,
        };
        let responses = [
            Response::Output {
                tensor: Tensor::random_uniform(Shape::mat(3, 5), 1.0, 2),
                trace: ServerTrace {
                    request_id: 9,
                    queue_us: 120,
                    batch_us: 40,
                    lease_us: 15,
                    service_us: 2_000,
                    server_total_us: 2_300,
                    cache_hit: false,
                    first_token_us: 75,
                    tokens: 2,
                },
            },
            Response::Error {
                request_id: 10,
                message: "nope".into(),
            },
            Response::Busy {
                request_id: 11,
                model: "imc".into(),
                queue_depth: 64,
            },
        ];
        // One dirty scratch buffer reused across every frame: framed
        // encoding must clear it and still match write_frame(encode())
        // byte for byte.
        let mut scratch = BytesMut::new();
        scratch.put_slice(b"stale bytes from a previous frame");

        let mut expected = Vec::new();
        write_frame(&mut expected, &request.encode().unwrap()).unwrap();
        request.encode_framed_into(&mut scratch).unwrap();
        assert_eq!(&scratch[..], &expected[..]);

        for rsp in &responses {
            let mut expected = Vec::new();
            write_frame(&mut expected, &rsp.encode().unwrap()).unwrap();
            rsp.encode_framed_into(&mut scratch).unwrap();
            assert_eq!(&scratch[..], &expected[..], "{rsp:?}");
        }
    }

    #[test]
    fn borrowed_infer_encoder_matches_owned() {
        let input = Tensor::random_uniform(Shape::nchw(2, 1, 3, 3), 1.0, 5);
        let owned = Request::Infer {
            model: "face".into(),
            input: input.clone(),
            request_id: 99,
        };
        let mut via_owned = BytesMut::new();
        owned.encode_framed_into(&mut via_owned).unwrap();
        let mut via_borrowed = BytesMut::new();
        encode_infer_framed_into(&mut via_borrowed, "face", &input, 99).unwrap();
        assert_eq!(&via_owned[..], &via_borrowed[..]);
    }

    #[test]
    fn decode_output_into_matches_decode() {
        let tensor = Tensor::random_uniform(Shape::mat(4, 7), 2.0, 8);
        let trace = ServerTrace {
            request_id: 17,
            queue_us: 1,
            batch_us: 2,
            lease_us: 0,
            service_us: 3,
            server_total_us: 6,
            cache_hit: true,
            first_token_us: 4,
            tokens: 5,
        };
        let rsp = Response::Output {
            tensor: tensor.clone(),
            trace,
        };
        let wire = rsp.encode().unwrap();
        // A pre-dirtied, pre-sized buffer must be cleared and refilled.
        let mut data = vec![f32::NAN; 3];
        let (shape, got_trace) = Response::decode_output_into(&wire, &mut data).unwrap();
        assert_eq!(shape, *tensor.shape());
        assert_eq!(&data[..], tensor.data());
        assert_eq!(got_trace, trace);

        // Non-output frames are protocol errors, not silent misreads.
        for other in [
            Response::Error {
                request_id: 1,
                message: "boom".into(),
            },
            Response::Busy {
                request_id: 1,
                model: "imc".into(),
                queue_depth: 2,
            },
            Response::Models {
                request_id: 1,
                names: vec![],
            },
        ] {
            let wire = other.encode().unwrap();
            assert!(
                matches!(
                    Response::decode_output_into(&wire, &mut data),
                    Err(DjinnError::Protocol { .. })
                ),
                "{other:?}"
            );
        }
    }

    #[test]
    fn stateless_read_frame_reports_eof_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0xCD; 100]).unwrap();
        wire.truncate(40);
        let got = read_frame(&wire[..]);
        assert!(matches!(got, Err(DjinnError::Io(ref e))
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn frame_reader_ref_consumes_pipelined_frames_by_cursor() {
        // Several frames delivered in one chunk: each read_frame_ref call
        // must yield the next one from the buffer (advancing the cursor,
        // not copying), and `buffered()` must count only unconsumed bytes.
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize * 7]).collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let total = wire.len();
        let mut consumed = 0;
        let mut stream = ChunkedStream::new(vec![wire]);
        let mut reader = FrameReader::new();
        for expect in &payloads {
            let got = reader.read_frame_ref(&mut stream).unwrap().unwrap();
            assert_eq!(got, &expect[..]);
            consumed += 4 + expect.len();
            assert_eq!(reader.buffered(), total - consumed);
        }
    }

    #[test]
    fn frame_reader_compacts_partial_frames_across_chunk_growth() {
        // A stream of frames sized near READ_CHUNK forces the cursor to
        // wrap: full frames are consumed from the front while a partial
        // frame's tail is still arriving, exercising compaction + growth.
        let payloads: Vec<Vec<u8>> = (0..6u8)
            .map(|i| vec![i ^ 0x5A; READ_CHUNK / 2 + i as usize * 1_000])
            .collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        // Deliver in chunks that never align with frame boundaries.
        let chunks: Vec<Vec<u8>> = wire
            .chunks(READ_CHUNK / 3 + 17)
            .map(<[u8]>::to_vec)
            .collect();
        let mut stream = ChunkedStream::new(chunks);
        let (frames, end) = collect_frames_ref(&mut stream);
        assert_eq!(frames, payloads);
        assert!(matches!(end, DjinnError::Io(ref e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let payload = Request::Infer {
            model: "m".into(),
            input: Tensor::random_uniform(Shape::mat(4, 4), 1.0, 3),
            request_id: 11,
        }
        .encode()
        .unwrap()
        .to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Split inside the length prefix AND inside the payload.
        let cuts = [2usize, 9, wire.len() / 2];
        let mut chunks = Vec::new();
        let mut prev = 0;
        for &c in &cuts {
            chunks.push(wire[prev..c].to_vec());
            prev = c;
        }
        chunks.push(wire[prev..].to_vec());
        let mut stream = ChunkedStream::new(chunks);
        let (frames, end) = collect_frames(&mut stream);
        assert_eq!(frames, vec![payload]);
        assert!(matches!(end, DjinnError::Io(ref e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn frame_reader_yields_pipelined_frames_without_new_reads() {
        // Two frames delivered in ONE chunk: the second must come out of
        // the buffer even though the stream has hit EOF.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut stream = ChunkedStream::new(vec![wire]);
        let (frames, _) = collect_frames(&mut stream);
        assert_eq!(frames, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn frame_reader_rejects_hostile_length_before_buffering_payload() {
        let mut reader = FrameReader::new();
        let hostile = u32::MAX.to_le_bytes().to_vec();
        let got = reader.read_frame(&hostile[..]);
        assert!(matches!(got, Err(DjinnError::Protocol { .. })));
    }

    #[test]
    fn frame_reader_reports_eof_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0xAB; 100]).unwrap();
        wire.truncate(40); // stream dies mid-payload
        let mut stream = ChunkedStream::new(vec![wire]);
        let (frames, end) = collect_frames(&mut stream);
        assert!(frames.is_empty());
        assert!(matches!(end, DjinnError::Io(ref e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
    }

    proptest! {
        #[test]
        fn arbitrary_tensor_roundtrips(
            rank in 1usize..=4,
            seed in 0u64..500,
        ) {
            let dims: Vec<usize> = (0..rank).map(|i| 1 + (seed as usize + i * 3) % 5).collect();
            let shape = Shape::new(&dims).unwrap();
            let t = Tensor::random_uniform(shape, 10.0, seed);
            let rsp = Response::Output {
                tensor: t.clone(),
                trace: ServerTrace {
                    request_id: seed,
                    queue_us: seed % 997,
                    batch_us: seed % 31,
                    lease_us: seed % 211,
                    service_us: seed % 4_001,
                    server_total_us: seed % 5_003,
                    cache_hit: seed % 2 == 1,
                    first_token_us: seed % 13,
                    tokens: seed % 7,
                },
            };
            let back = Response::decode(&rsp.encode().unwrap()).unwrap();
            prop_assert_eq!(back, rsp);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding hostile bytes must fail cleanly, never panic.
            let _ = Request::decode(&data);
            let _ = Response::decode(&data);
        }

        #[test]
        fn frame_reader_reassembles_arbitrary_splits(
            frame_count in 1usize..=4,
            sizes_seed in 0u64..10_000,
            cut_seed in 0u64..10_000,
        ) {
            // Build a wire image of several frames with pseudo-random
            // payload sizes, then slice it at pseudo-random boundaries
            // (with a simulated timeout between every slice) and check
            // that the reader reproduces the frames exactly.
            let mut size_rng = proptest::TestRng::new(sizes_seed);
            let mut payloads = Vec::new();
            let mut wire = Vec::new();
            for i in 0..frame_count {
                let len = size_rng.below(2000);
                let payload: Vec<u8> =
                    (0..len).map(|j| (i * 31 + j * 7) as u8).collect();
                write_frame(&mut wire, &payload).unwrap();
                payloads.push(payload);
            }
            let mut cut_rng = proptest::TestRng::new(cut_seed);
            let mut cuts: Vec<usize> =
                (0..cut_rng.below(8)).map(|_| cut_rng.below(wire.len().max(1))).collect();
            cuts.sort_unstable();
            let mut chunks = Vec::new();
            let mut prev = 0;
            for c in cuts {
                chunks.push(wire[prev..c].to_vec());
                prev = c;
            }
            chunks.push(wire[prev..].to_vec());
            // Owned and borrowed paths must reassemble identically.
            let mut stream = ChunkedStream::new(chunks.clone());
            let (frames, end) = collect_frames(&mut stream);
            prop_assert_eq!(&frames, &payloads);
            prop_assert!(matches!(end, DjinnError::Io(ref e)
                if e.kind() == std::io::ErrorKind::UnexpectedEof));
            let mut stream = ChunkedStream::new(chunks);
            let (frames_ref, end) = collect_frames_ref(&mut stream);
            prop_assert_eq!(frames_ref, payloads);
            prop_assert!(matches!(end, DjinnError::Io(ref e)
                if e.kind() == std::io::ErrorKind::UnexpectedEof));
        }
    }

    #[test]
    fn peek_request_reads_kind_model_and_id_without_decoding() {
        let infer = Request::Infer {
            model: "imc".into(),
            input: Tensor::random_uniform(Shape::nchw(1, 3, 4, 4), 1.0, 9),
            request_id: 0xAB,
        };
        let wire = infer.encode().unwrap();
        let peek = peek_request(&wire).unwrap();
        assert_eq!(
            peek,
            RequestPeek::Infer {
                model: "imc",
                request_id: 0xAB,
                id_at: Some(4 + 1 + 1 + 2 + 3),
            }
        );
        assert_eq!(peek.request_id(), 0xAB);

        let list = Request::ListModels { request_id: 7 }.encode().unwrap();
        assert_eq!(
            peek_request(&list).unwrap(),
            RequestPeek::ListModels {
                request_id: 7,
                id_at: Some(6),
            }
        );
        let stats = Request::Stats { request_id: 8 }.encode().unwrap();
        assert_eq!(
            peek_request(&stats).unwrap(),
            RequestPeek::Stats {
                request_id: 8,
                id_at: Some(6),
            }
        );
    }

    #[test]
    fn peek_request_reports_legacy_frames_as_slotless() {
        // Pre-v3 infer: splice out the 8 ID bytes after the name.
        let mut infer = Request::Infer {
            model: "m".into(),
            input: Tensor::zeros(Shape::mat(1, 1)),
            request_id: 3,
        }
        .encode()
        .unwrap()
        .to_vec();
        let id_at = 4 + 1 + 1 + 2 + 1;
        infer.drain(id_at..id_at + 8);
        infer[4] = 2;
        assert_eq!(
            peek_request(&infer).unwrap(),
            RequestPeek::Infer {
                model: "m",
                request_id: 0,
                id_at: None,
            }
        );
        assert!(rewrite_request_id(&mut infer, 9).is_err());

        // Pre-v4 control frame: no ID field at all.
        let mut list = Request::ListModels { request_id: 7 }
            .encode()
            .unwrap()
            .to_vec();
        list.drain(6..14);
        list[4] = 3;
        assert_eq!(
            peek_request(&list).unwrap(),
            RequestPeek::ListModels {
                request_id: 0,
                id_at: None,
            }
        );
        assert!(rewrite_request_id(&mut list, 9).is_err());
    }

    #[test]
    fn rewrite_request_id_matches_a_full_reencode() {
        let input = Tensor::random_uniform(Shape::mat(2, 5), 1.0, 3);
        for req in [
            Request::Infer {
                model: "dig".into(),
                input: input.clone(),
                request_id: 41,
            },
            Request::ListModels { request_id: 41 },
            Request::Stats { request_id: 41 },
            Request::StreamInfer {
                model: "dig".into(),
                input: input.clone(),
                request_id: 41,
                mode: StreamMode::Windowed { window_rows: 2 },
            },
        ] {
            let mut wire = req.encode().unwrap().to_vec();
            let old = rewrite_request_id(&mut wire, 0x1234_5678_9ABC).unwrap();
            assert_eq!(old, 41);
            // The patched frame must be byte-identical to encoding the
            // request with the new ID directly.
            let renumbered = match req {
                Request::Infer { model, input, .. } => Request::Infer {
                    model,
                    input,
                    request_id: 0x1234_5678_9ABC,
                },
                Request::ListModels { .. } => Request::ListModels {
                    request_id: 0x1234_5678_9ABC,
                },
                Request::Stats { .. } => Request::Stats {
                    request_id: 0x1234_5678_9ABC,
                },
                Request::StreamInfer {
                    model, input, mode, ..
                } => Request::StreamInfer {
                    model,
                    input,
                    mode,
                    request_id: 0x1234_5678_9ABC,
                },
            };
            assert_eq!(&wire[..], &renumbered.encode().unwrap()[..]);
        }
    }

    #[test]
    fn rewrite_response_id_round_trips_every_variant() {
        let variants: Vec<Response> = vec![
            Response::Output {
                tensor: Tensor::random_uniform(Shape::mat(1, 4), 1.0, 2),
                trace: ServerTrace {
                    request_id: 55,
                    queue_us: 1,
                    batch_us: 2,
                    lease_us: 0,
                    service_us: 3,
                    server_total_us: 4,
                    cache_hit: false,
                    first_token_us: 0,
                    tokens: 0,
                },
            },
            Response::Error {
                request_id: 55,
                message: "boom".into(),
            },
            Response::Models {
                request_id: 55,
                names: vec!["a".into(), "b".into()],
            },
            Response::Stats {
                request_id: 55,
                unknown_model_requests: 2,
                stats: vec![stats_entry("dig")],
            },
            Response::Busy {
                request_id: 55,
                model: "dig".into(),
                queue_depth: 16,
            },
            Response::Chunk {
                tensor: Tensor::random_uniform(Shape::mat(1, 4), 1.0, 2),
                trace: ServerTrace {
                    request_id: 55,
                    first_token_us: 12,
                    tokens: 2,
                    ..ServerTrace::default()
                },
                seq: 1,
                last: false,
            },
        ];
        for rsp in variants {
            let mut wire = rsp.encode().unwrap().to_vec();
            let (id, _) = response_id_slot(&wire).unwrap().expect("v4 has a slot");
            assert_eq!(id, 55, "{rsp:?}");
            let old = rewrite_response_id(&mut wire, 77).unwrap();
            assert_eq!(old, 55);
            let back = Response::decode(&wire).unwrap();
            assert_eq!(back.request_id(), 77, "{back:?}");
            // Only the ID changed: restoring it reproduces the original.
            rewrite_response_id(&mut wire, 55).unwrap();
            assert_eq!(Response::decode(&wire).unwrap(), rsp);
        }
    }

    #[test]
    fn response_id_slot_reports_uncorrelated_legacy_frames() {
        // v3 error: status byte, no ID field.
        let mut error = Response::Error {
            request_id: 9,
            message: "bad".into(),
        }
        .encode()
        .unwrap()
        .to_vec();
        error.drain(7..15);
        error[4] = 3;
        assert_eq!(response_id_slot(&error).unwrap(), None);
        assert!(rewrite_response_id(&mut error, 1).is_err());

        // v2 output: no trace block, hence no echoed ID.
        let mut out = Response::Output {
            tensor: Tensor::zeros(Shape::mat(1, 1)),
            trace: ServerTrace::default(),
        }
        .encode()
        .unwrap()
        .to_vec();
        out.drain(7..47);
        out[4] = 2;
        assert_eq!(response_id_slot(&out).unwrap(), None);

        // Truncated-just-after-status frames fail loudly, not as None.
        let wire = Response::Error {
            request_id: 9,
            message: "bad".into(),
        }
        .encode()
        .unwrap();
        assert!(response_id_slot(&wire[..8]).is_err());
    }
}
