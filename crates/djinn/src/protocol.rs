//! The DjiNN wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is `[u32 length | payload]` (little-endian length of the
//! payload). Payloads begin with the 4-byte magic `DJNN` and a version
//! byte, then an opcode:
//!
//! ```text
//! request  := magic version opcode=1 name:str tensor
//! response := magic version opcode=2 status:u8 (tensor | str)
//! list_req := magic version opcode=3
//! list_rsp := magic version opcode=4 count:u16 (str)*
//! str      := u16 len, utf-8 bytes
//! tensor   := u8 rank, u32 dim*, f32 data* (little endian)
//! ```

use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};

use tensor::{Shape, Tensor};

use crate::{DjinnError, Result};

/// Protocol magic bytes.
pub const MAGIC: &[u8; 4] = b"DJNN";
/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;
/// Upper bound on a frame, to reject hostile lengths (64 MiB holds the
/// largest Tonic batch comfortably).
pub const MAX_FRAME: usize = 64 << 20;

const OP_INFER: u8 = 1;
const OP_RESULT: u8 = 2;
const OP_LIST: u8 = 3;
const OP_LIST_RESULT: u8 = 4;
const OP_STATS: u8 = 5;
const OP_STATS_RESULT: u8 = 6;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run inference on `model` with the given input tensor.
    Infer {
        /// Registered model name.
        model: String,
        /// Input tensor (batch axis = queries stacked by the client).
        input: Tensor,
    },
    /// List registered model names.
    ListModels,
    /// Fetch per-model service statistics.
    Stats,
}

/// Service statistics for one model, as reported by the `Stats` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Successful inference requests served.
    pub requests: u64,
    /// Failed inference requests.
    pub errors: u64,
    /// Total device latency attributed to this model, microseconds.
    pub total_latency_us: u64,
    /// Maximum single-request device latency, microseconds.
    pub max_latency_us: u64,
}

impl ModelStats {
    /// Mean device latency per successful request, microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful inference: the output tensor.
    Output(Tensor),
    /// Application-level failure.
    Error(String),
    /// Registered model names.
    Models(Vec<String>),
    /// Per-model service statistics.
    Stats(Vec<ModelStats>),
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.shape().rank() as u8);
    for &d in t.shape().dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 2 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string body"));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| err("string is not utf-8"))
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor> {
    if buf.remaining() < 1 {
        return Err(err("truncated tensor rank"));
    }
    let rank = buf.get_u8() as usize;
    if rank == 0 || rank > 4 {
        return Err(err(&format!("tensor rank {rank} out of 1..=4")));
    }
    if buf.remaining() < rank * 4 {
        return Err(err("truncated tensor dims"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u32_le() as usize);
    }
    let shape = Shape::new(&dims).map_err(|e| err(&format!("bad tensor shape: {e}")))?;
    let n = shape.volume();
    if buf.remaining() < n * 4 {
        return Err(err("truncated tensor data"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(shape, data).expect("volume matches by construction"))
}

fn err(reason: &str) -> DjinnError {
    DjinnError::Protocol {
        reason: reason.to_string(),
    }
}

fn header(buf: &mut BytesMut, opcode: u8) {
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(opcode);
}

fn check_header(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 6 {
        return Err(err("frame shorter than header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    Ok(buf.get_u8())
}

impl Request {
    /// Serializes the request into a payload (without the frame length).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::new();
        match self {
            Request::Infer { model, input } => {
                header(&mut buf, OP_INFER);
                put_str(&mut buf, model);
                put_tensor(&mut buf, input);
            }
            Request::ListModels => header(&mut buf, OP_LIST),
            Request::Stats => header(&mut buf, OP_STATS),
        }
        buf
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for any malformed frame.
    pub fn decode(mut payload: &[u8]) -> Result<Self> {
        let buf = &mut payload;
        match check_header(buf)? {
            OP_INFER => {
                let model = get_str(buf)?;
                let input = get_tensor(buf)?;
                Ok(Request::Infer { model, input })
            }
            OP_LIST => Ok(Request::ListModels),
            OP_STATS => Ok(Request::Stats),
            other => Err(err(&format!("unexpected request opcode {other}"))),
        }
    }
}

impl Response {
    /// Serializes the response into a payload (without the frame length).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::new();
        match self {
            Response::Output(t) => {
                header(&mut buf, OP_RESULT);
                buf.put_u8(STATUS_OK);
                put_tensor(&mut buf, t);
            }
            Response::Error(msg) => {
                header(&mut buf, OP_RESULT);
                buf.put_u8(STATUS_ERR);
                put_str(&mut buf, msg);
            }
            Response::Models(names) => {
                header(&mut buf, OP_LIST_RESULT);
                buf.put_u16_le(names.len() as u16);
                for n in names {
                    put_str(&mut buf, n);
                }
            }
            Response::Stats(stats) => {
                header(&mut buf, OP_STATS_RESULT);
                buf.put_u16_le(stats.len() as u16);
                for s in stats {
                    put_str(&mut buf, &s.model);
                    buf.put_u64_le(s.requests);
                    buf.put_u64_le(s.errors);
                    buf.put_u64_le(s.total_latency_us);
                    buf.put_u64_le(s.max_latency_us);
                }
            }
        }
        buf
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Protocol`] for any malformed frame.
    pub fn decode(mut payload: &[u8]) -> Result<Self> {
        let buf = &mut payload;
        match check_header(buf)? {
            OP_RESULT => {
                if buf.remaining() < 1 {
                    return Err(err("truncated status"));
                }
                match buf.get_u8() {
                    STATUS_OK => Ok(Response::Output(get_tensor(buf)?)),
                    STATUS_ERR => Ok(Response::Error(get_str(buf)?)),
                    s => Err(err(&format!("unknown status {s}"))),
                }
            }
            OP_LIST_RESULT => {
                if buf.remaining() < 2 {
                    return Err(err("truncated model count"));
                }
                let count = buf.get_u16_le() as usize;
                let mut names = Vec::with_capacity(count);
                for _ in 0..count {
                    names.push(get_str(buf)?);
                }
                Ok(Response::Models(names))
            }
            OP_STATS_RESULT => {
                if buf.remaining() < 2 {
                    return Err(err("truncated stats count"));
                }
                let count = buf.get_u16_le() as usize;
                let mut stats = Vec::with_capacity(count);
                for _ in 0..count {
                    let model = get_str(buf)?;
                    if buf.remaining() < 32 {
                        return Err(err("truncated stats entry"));
                    }
                    stats.push(ModelStats {
                        model,
                        requests: buf.get_u64_le(),
                        errors: buf.get_u64_le(),
                        total_latency_us: buf.get_u64_le(),
                        max_latency_us: buf.get_u64_le(),
                    });
                }
                Ok(Response::Stats(stats))
            }
            other => Err(err(&format!("unexpected response opcode {other}"))),
        }
    }
}

/// Writes one length-prefixed frame. The writer may be a `&mut` reference.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. The reader may be a `&mut` reference.
///
/// # Errors
///
/// Returns [`DjinnError::Protocol`] if the advertised length exceeds
/// [`MAX_FRAME`]; propagates I/O failures (including clean EOF as
/// `UnexpectedEof`).
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(err(&format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Infer {
            model: "imc".into(),
            input: Tensor::random_uniform(Shape::nchw(2, 3, 4, 4), 1.0, 1),
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        let list = Request::ListModels;
        assert_eq!(Request::decode(&list.encode()).unwrap(), list);
        let stats = Request::Stats;
        assert_eq!(Request::decode(&stats.encode()).unwrap(), stats);
    }

    #[test]
    fn stats_response_roundtrip() {
        let rsp = Response::Stats(vec![
            ModelStats {
                model: "dig".into(),
                requests: 42,
                errors: 1,
                total_latency_us: 10_000,
                max_latency_us: 900,
            },
            ModelStats {
                model: "pos".into(),
                requests: 0,
                errors: 0,
                total_latency_us: 0,
                max_latency_us: 0,
            },
        ]);
        assert_eq!(Response::decode(&rsp.encode()).unwrap(), rsp);
    }

    #[test]
    fn mean_latency_handles_zero_requests() {
        let s = ModelStats {
            model: "m".into(),
            requests: 0,
            errors: 0,
            total_latency_us: 0,
            max_latency_us: 0,
        };
        assert_eq!(s.mean_latency_us(), 0.0);
    }

    #[test]
    fn response_roundtrip() {
        for rsp in [
            Response::Output(Tensor::random_uniform(Shape::mat(3, 5), 1.0, 2)),
            Response::Error("nope".into()),
            Response::Models(vec!["a".into(), "b".into()]),
        ] {
            assert_eq!(Response::decode(&rsp.encode()).unwrap(), rsp);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Request::ListModels.encode().to_vec();
        buf[0] = b'X';
        assert!(Request::decode(&buf).is_err());
        let mut buf2 = Request::ListModels.encode().to_vec();
        buf2[4] = 99;
        assert!(Request::decode(&buf2).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let full = Request::Infer {
            model: "m".into(),
            input: Tensor::zeros(Shape::mat(2, 2)),
        }
        .encode()
        .to_vec();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn frame_io_roundtrip() {
        let payload = b"hello djinn".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let got = read_frame(&wire[..]).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn frame_rejects_hostile_length() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&wire[..]),
            Err(DjinnError::Protocol { .. })
        ));
    }

    #[test]
    fn rejects_zero_and_overlong_rank() {
        // Handcraft a tensor with rank 0.
        let mut buf = BytesMut::new();
        header(&mut buf, OP_RESULT);
        buf.put_u8(STATUS_OK);
        buf.put_u8(0);
        assert!(Response::decode(&buf).is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_tensor_roundtrips(
            rank in 1usize..=4,
            seed in 0u64..500,
        ) {
            let dims: Vec<usize> = (0..rank).map(|i| 1 + (seed as usize + i * 3) % 5).collect();
            let shape = Shape::new(&dims).unwrap();
            let t = Tensor::random_uniform(shape, 10.0, seed);
            let rsp = Response::Output(t.clone());
            let back = Response::decode(&rsp.encode()).unwrap();
            prop_assert_eq!(back, rsp);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding hostile bytes must fail cleanly, never panic.
            let _ = Request::decode(&data);
            let _ = Response::decode(&data);
        }
    }
}
