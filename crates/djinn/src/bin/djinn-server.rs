//! The DjiNN service daemon.
//!
//! ```text
//! djinn-server [--addr HOST:PORT] [--backend cpu|sim-gpu]
//!              [--batch N] [--threads N] [--queue N] [--workers N]
//!              [--device-threads N] [--policy batch|colocate|dynamic]
//!              [--sla-ms N] [--models DIR] [--tiny-zoo] [--lm] [--only NAME,NAME]
//!              [--service-delay-us N] [--cache off|exact|embed|both]
//!              [--cache-mb N] [--export DIR]
//! ```
//!
//! `--queue` bounds each model's admission queue (requests beyond it are
//! shed with a `Busy` reply); `--workers` sets the per-model dispatch
//! workers for unbatched serving.
//!
//! With `--models DIR`, every `*.djnm` model file in the directory is
//! served under its file stem; otherwise the seven built-in Tonic models
//! are served. `--tiny-zoo` serves the miniature test models instead —
//! the harness for protocol benchmarks (e.g. measuring `--pipeline`
//! speedups with djinn-loadgen) where model compute should not dominate.
//! `--export DIR` writes the built-in models as `.djnm` files and exits
//! (a way to bootstrap a model repository). `--lm` additionally serves
//! the `textgen` generative LM (a small MLP language model decoded
//! token-at-a-time over protocol-v7 streams — pair with
//! `djinn-loadgen --stream`).
//!
//! `--only a,b` restricts the loaded registry to the named models — how
//! a replica in a sharded, router-fronted deployment serves its slice.
//! `--service-delay-us N` adds a fixed sleep to every forward pass,
//! modeling a device-bound backend so scale-out experiments on a small
//! host measure the serving tier, not CPU contention between colocated
//! replicas.
//!
//! `--device-threads N` puts every model on one shared device of `N`
//! compute units (CPU threads, or MPS kernel slots under `sim-gpu`):
//! engines then acquire bounded leases from a single scheduler before
//! running inference, and lease waits show up as the `lease` trace
//! stage. `--policy` picks how batched engines trade batching against
//! co-location (`batch` coalesces up to the full window, `colocate`
//! dispatches immediately, `dynamic` splits the difference from queue
//! depth and the `--sla-ms` latency budget; defaults to `batch`).
//!
//! `--cache` turns on content-keyed inference caching (`exact` memoizes
//! whole outputs by input bytes, `embed` caches per-row embedding-layer
//! lookups, `both` layers the two; defaults to `off`). `--cache-mb`
//! bounds the total cache budget in MiB, split across the loaded
//! models (default 64).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use djinn::{
    Backend, BatchConfig, CacheMode, ColocationPolicy, DjinnServer, ModelRegistry, ServerConfig,
};

struct Args {
    addr: String,
    backend: Backend,
    batch: Option<usize>,
    threads: usize,
    queue: usize,
    workers: usize,
    models: Option<PathBuf>,
    tiny_zoo: bool,
    lm: bool,
    only: Vec<String>,
    service_delay: Option<Duration>,
    device_threads: Option<usize>,
    policy: String,
    sla: Duration,
    cache: CacheMode,
    cache_mb: usize,
    export: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:7400".into(),
        backend: Backend::Cpu,
        batch: None,
        threads: 1,
        queue: defaults.queue_capacity,
        workers: defaults.engine_workers,
        models: None,
        tiny_zoo: false,
        lm: false,
        only: Vec::new(),
        service_delay: None,
        device_threads: None,
        policy: "batch".into(),
        sla: Duration::from_millis(50),
        cache: CacheMode::Off,
        cache_mb: 64,
        export: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "cpu" => Backend::Cpu,
                    "sim-gpu" => Backend::SimGpu,
                    other => return Err(format!("unknown backend `{other}`")),
                }
            }
            "--batch" => {
                args.batch = Some(
                    value("--batch")?
                        .parse()
                        .map_err(|e| format!("bad --batch: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?;
                if args.queue == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--models" => args.models = Some(PathBuf::from(value("--models")?)),
            "--tiny-zoo" => args.tiny_zoo = true,
            "--lm" => args.lm = true,
            "--only" => {
                args.only.extend(
                    value("--only")?
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--device-threads" => {
                let n: usize = value("--device-threads")?
                    .parse()
                    .map_err(|e| format!("bad --device-threads: {e}"))?;
                if n == 0 {
                    return Err("--device-threads must be at least 1".into());
                }
                args.device_threads = Some(n);
            }
            "--policy" => {
                args.policy = value("--policy")?;
                if !matches!(args.policy.as_str(), "batch" | "colocate" | "dynamic") {
                    return Err(format!(
                        "unknown policy `{}` (want batch|colocate|dynamic)",
                        args.policy
                    ));
                }
            }
            "--sla-ms" => {
                let ms: u64 = value("--sla-ms")?
                    .parse()
                    .map_err(|e| format!("bad --sla-ms: {e}"))?;
                if ms == 0 {
                    return Err("--sla-ms must be at least 1".into());
                }
                args.sla = Duration::from_millis(ms);
            }
            "--service-delay-us" => {
                let us: u64 = value("--service-delay-us")?
                    .parse()
                    .map_err(|e| format!("bad --service-delay-us: {e}"))?;
                args.service_delay = Some(Duration::from_micros(us));
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e: String| format!("bad --cache: {e}"))?;
            }
            "--cache-mb" => {
                args.cache_mb = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("bad --cache-mb: {e}"))?;
                if args.cache_mb == 0 {
                    return Err("--cache-mb must be at least 1".into());
                }
            }
            "--export" => args.export = Some(PathBuf::from(value("--export")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: djinn-server [--addr HOST:PORT] [--backend cpu|sim-gpu] \
                            [--batch N] [--threads N] [--queue N] [--workers N] \
                            [--device-threads N] [--policy batch|colocate|dynamic] \
                            [--sla-ms N] [--models DIR] [--tiny-zoo] [--lm] [--only NAME,NAME] \
                            [--service-delay-us N] [--cache off|exact|embed|both] \
                            [--cache-mb N] [--export DIR]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = args.export {
        return export_models(&dir);
    }

    if args.tiny_zoo && args.models.is_some() {
        eprintln!("--tiny-zoo and --models are mutually exclusive");
        return ExitCode::FAILURE;
    }
    let mut registry = match (&args.models, args.tiny_zoo) {
        (Some(dir), _) => match ModelRegistry::from_dir(dir) {
            Ok(reg) if !reg.is_empty() => reg,
            Ok(_) => {
                eprintln!("no .djnm model files found in {}", dir.display());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("failed to load models from {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        (None, true) => match ModelRegistry::with_tiny_test_zoo() {
            Ok(reg) => reg,
            Err(e) => {
                eprintln!("failed to build tiny test zoo: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, false) => match ModelRegistry::with_tonic_models() {
            Ok(reg) => reg,
            Err(e) => {
                eprintln!("failed to build Tonic models: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if !args.only.is_empty() {
        if let Err(e) = registry.retain_only(&args.only) {
            eprintln!("bad --only: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.lm {
        // The generative LM rides alongside whichever zoo was chosen;
        // the fixed seed makes every `--lm` server serve the same
        // weights, so routed replicas stay interchangeable.
        match dnn::Network::with_random_weights(dnn::zoo::textgen(), 0x7E47) {
            Ok(net) => registry.register("textgen", net),
            Err(e) => {
                eprintln!("failed to build textgen LM: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "loaded {} models ({:.1} MB resident): {}",
        registry.len(),
        registry.resident_bytes() as f64 / 1e6,
        registry.names().join(", ")
    );

    let config = ServerConfig {
        bind_addr: args.addr,
        backend: args.backend,
        batching: args.batch.map(|max_batch| BatchConfig {
            max_batch,
            max_delay: Duration::from_millis(2),
        }),
        threads: args.threads,
        queue_capacity: args.queue,
        engine_workers: args.workers,
        service_delay: args.service_delay,
        device_capacity: args.device_threads,
        colocation: match args.policy.as_str() {
            "colocate" => ColocationPolicy::AlwaysColocate,
            "dynamic" => ColocationPolicy::Dynamic { sla: args.sla },
            _ => ColocationPolicy::AlwaysBatch,
        },
        cache_mode: args.cache,
        cache_bytes: args.cache_mb * 1024 * 1024,
        ..ServerConfig::default()
    };
    let server = match DjinnServer::start(registry, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("DjiNN serving on {}", server.local_addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn export_models(dir: &std::path::Path) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for app in dnn::zoo::App::ALL {
        let net = match dnn::zoo::network(app) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("building {app}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = dir.join(format!("{}.djnm", app.name().to_lowercase()));
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("creating {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = dnn::modelfile::save(&net, std::io::BufWriter::new(file)) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
