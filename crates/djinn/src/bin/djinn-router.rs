//! The DjiNN scale-out front end daemon.
//!
//! ```text
//! djinn-router [--addr HOST:PORT] --replica HOST:PORT [--replica ...]
//!              [--policy load-aware|round-robin]
//!              [--stats-interval-ms N] [--max-clients N]
//! ```
//!
//! Clients connect to the router exactly as they would to a single
//! `djinn-server`; each infer frame is forwarded to a backing replica
//! chosen by model affinity and load (see the `djinn::router` module
//! docs). `--replica` repeats once per replica and also accepts a
//! comma-separated list. All replicas must be up at startup.

use std::process::ExitCode;
use std::time::Duration;

use djinn::{DjinnRouter, RoutePolicy, RouterConfig};

struct Args {
    addr: String,
    replicas: Vec<std::net::SocketAddr>,
    policy: RoutePolicy,
    stats_interval: Duration,
    max_clients: usize,
}

fn parse_args() -> Result<Args, String> {
    let defaults = RouterConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:7500".into(),
        replicas: Vec::new(),
        policy: defaults.policy,
        stats_interval: defaults.stats_interval,
        max_clients: defaults.max_clients,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--replica" => {
                for part in value("--replica")?.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    args.replicas.push(
                        part.parse()
                            .map_err(|e| format!("bad replica {part}: {e}"))?,
                    );
                }
            }
            "--policy" => args.policy = value("--policy")?.parse()?,
            "--stats-interval-ms" => {
                let ms: u64 = value("--stats-interval-ms")?
                    .parse()
                    .map_err(|e| format!("bad --stats-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--stats-interval-ms must be at least 1".into());
                }
                args.stats_interval = Duration::from_millis(ms);
            }
            "--max-clients" => {
                args.max_clients = value("--max-clients")?
                    .parse()
                    .map_err(|e| format!("bad --max-clients: {e}"))?;
                if args.max_clients == 0 {
                    return Err("--max-clients must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: djinn-router [--addr HOST:PORT] --replica HOST:PORT [--replica ...] \
                     [--policy load-aware|round-robin] [--stats-interval-ms N] [--max-clients N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.replicas.is_empty() {
        return Err("at least one --replica is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = RouterConfig {
        bind_addr: args.addr,
        replicas: args.replicas.clone(),
        policy: args.policy,
        stats_interval: args.stats_interval,
        max_clients: args.max_clients,
    };
    let router = match DjinnRouter::start(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to start router: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "DjiNN router on {} -> {} replicas ({:?})",
        router.local_addr(),
        args.replicas.len(),
        args.policy,
    );
    // Route until the process is killed.
    loop {
        std::thread::park();
    }
}
