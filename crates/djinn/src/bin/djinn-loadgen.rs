//! Closed-loop load generator for a DjiNN service: measures end-to-end
//! throughput and latency from the client side, per model.
//!
//! ```text
//! djinn-loadgen --addr HOST:PORT --model NAME
//!               [--mix NAME=W,NAME=W] [--threads N] [--requests R]
//!               [--queries Q] [--pipeline N] [--rate R] [--timeout-ms T]
//!               [--vocab N] [--zipf S] [--trace-out PATH]
//!               [--stream] [--tokens N]
//! ```
//!
//! `--pipeline N` keeps up to N requests in flight per connection
//! (protocol v4 correlates responses by request ID, so replies may
//! return out of order); the default of 1 is the classic closed loop.
//! Pipelining is what keeps a batched server's coalescing window full
//! from a single connection.
//!
//! `--rate R` switches from the closed loop to an *open* loop: arrivals
//! are a Poisson process at R requests/second aggregate (split evenly
//! across threads, exponential inter-arrival gaps from the per-thread
//! PRNG), submitted without waiting for earlier responses. Closed loops
//! self-throttle when the server slows — the offered load falls to
//! match service capacity and queueing delay hides — so latency-vs-load
//! questions (SLA attainment under a fixed arrival mix, coordinated
//! omission) need the open loop. Completions are drained between
//! arrivals; an arrival whose send would block still goes out on time
//! because submission is a buffered write, so the arrival process stays
//! faithful even under overload.
//!
//! Transient failures (connection refused/reset, I/O timeouts) are
//! retried by reconnecting with exponential backoff, so a server restart
//! mid-run costs errors, not the whole measurement. `Busy` replies —
//! the server shedding load at admission — are counted separately from
//! transport errors: the connection stays framed and usable, and a shed
//! is backpressure working as designed, not a failure.
//!
//! The report includes p50/p95/p99 end-to-end latency over successful
//! requests (client-observed) plus a per-stage breakdown table — queue
//! wait, batch coalescing wait, service, and wire time — assembled from
//! the server's echoed trace blocks. `--trace-out PATH` additionally
//! dumps one JSONL record per successful request for offline analysis.
//! A run where every request was shed reports `n/a` percentiles, never
//! a fake zero.
//!
//! `--mix "tiny-mnist=7,tiny-senna=3"` replaces `--model` with a
//! weighted model mix: each request picks a model by weight from a
//! per-thread deterministic PRNG. This is the multi-replica router
//! scenario — point `--addr` at a `djinn-router` and the mix exercises
//! model-affinity routing across a sharded fleet with a skewed
//! popularity distribution, the shape that separates load-aware from
//! round-robin replica selection.
//!
//! `--vocab N` draws each request's input from a pool of N distinct,
//! deterministically seeded tensors shared by every worker thread, so
//! repeats are *byte-identical* across threads — the redundancy a
//! content-keyed server cache (`djinn-server --cache`) can actually
//! exploit. `--zipf S` skews the draw toward low pool ranks with
//! weight 1/(rank+1)^S (S=0 is uniform, the default); larger S models
//! a hotter vocabulary and yields higher duplicate rates at the same
//! pool size. The default `--vocab 1` replays one input per target —
//! the legacy behavior, a 100% duplicate stream.
//!
//! `--stream` switches the closed loop to generative streaming: each
//! "request" is one protocol-v7 `StreamInfer` that decodes `--tokens`
//! tokens (default 16), delivered as ordered chunks. The report moves
//! to the per-token SLA class — aggregate tokens/s, time-to-first-token
//! (TTFT) p50/p99, inter-token gap p50/p99, and whole-stream totals —
//! all measured from the client's clock. Point it at a generative
//! model: `textgen` (`djinn-server --lm`) or `tiny-lm`
//! (`djinn-server --tiny-zoo`).
//!
//! Input shapes are discovered from the seven Tonic models (and the tiny
//! test zoo) by name; for other models, pass nothing and the tool
//! reports the server's model list.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use djinn::trace::{fmt_ms, percentile, TraceAggregator};
use djinn::workload::{xorshift64, ZipfSampler};
use djinn::{DjinnClient, DjinnError, StreamMode, TraceRecord};
use dnn::zoo::App;
use tensor::Tensor;

struct Args {
    addr: String,
    model: Option<String>,
    mix: Option<String>,
    threads: usize,
    requests: usize,
    queries: usize,
    pipeline: usize,
    rate: Option<f64>,
    timeout: Duration,
    vocab: usize,
    zipf: f64,
    trace_out: Option<String>,
    stream: bool,
    tokens: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7400".into(),
        model: None,
        mix: None,
        threads: 4,
        requests: 50,
        queries: 1,
        pipeline: 1,
        rate: None,
        timeout: Duration::from_secs(30),
        vocab: 1,
        zipf: 0.0,
        trace_out: None,
        stream: false,
        tokens: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--model" => args.model = Some(value("--model")?),
            "--mix" => args.mix = Some(value("--mix")?),
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|e| format!("{e}"))?
            }
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--pipeline" => {
                args.pipeline = value("--pipeline")?.parse().map_err(|e| format!("{e}"))?;
                if args.pipeline == 0 {
                    return Err("--pipeline must be at least 1".into());
                }
            }
            "--rate" => {
                let r: f64 = value("--rate")?.parse().map_err(|e| format!("{e}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rate must be positive".into());
                }
                args.rate = Some(r);
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?.parse().map_err(|e| format!("{e}"))?;
                args.timeout = Duration::from_millis(ms);
            }
            "--vocab" => {
                args.vocab = value("--vocab")?.parse().map_err(|e| format!("{e}"))?;
                if args.vocab == 0 {
                    return Err("--vocab must be at least 1".into());
                }
            }
            "--zipf" => {
                let s: f64 = value("--zipf")?.parse().map_err(|e| format!("{e}"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--zipf must be finite and non-negative".into());
                }
                args.zipf = s;
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--stream" => args.stream = true,
            "--tokens" => {
                args.tokens = value("--tokens")?.parse().map_err(|e| format!("{e}"))?;
                if args.tokens == 0 {
                    return Err("--tokens must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: djinn-loadgen --addr HOST:PORT --model NAME \
                            [--mix NAME=W,NAME=W] [--threads N] [--requests R] \
                            [--queries Q] [--pipeline N] [--rate R] [--timeout-ms T] \
                            [--vocab N] [--zipf S] [--trace-out PATH] \
                            [--stream] [--tokens N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Connection attempts before a worker gives up on the server.
const CONNECT_ATTEMPTS: u32 = 5;

/// Connects with exponential backoff between attempts (10 ms doubling to
/// a 500 ms cap), returning `None` once the attempts are exhausted.
fn connect_with_backoff(addr: std::net::SocketAddr, timeout: Duration) -> Option<DjinnClient> {
    let mut delay = Duration::from_millis(10);
    for attempt in 0..CONNECT_ATTEMPTS {
        match DjinnClient::connect_with_timeout(addr, timeout) {
            Ok(client) => return Some(client),
            Err(_) if attempt + 1 < CONNECT_ATTEMPTS => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
            Err(_) => break,
        }
    }
    None
}

/// Builds a pool of `vocab` distinct inputs, each carrying `queries`
/// stacked queries, for a Tonic model or one of the tiny test-zoo
/// models (the harness a `--tiny-zoo` server serves for protocol
/// benchmarks).
///
/// Seeds are fixed per pool slot (`99 + 7919 * slot`), so every worker
/// thread — and every rerun — draws from the *same* byte-identical
/// tensors: the duplicate rate a `--vocab`/`--zipf` run offers to a
/// content-keyed server cache is a property of the workload, not of
/// thread scheduling. Slot 0 keeps the legacy seed (99), so `--vocab 1`
/// replays exactly the input earlier versions sent.
fn inputs_for(model: &str, queries: usize, vocab: usize) -> Option<Vec<Tensor>> {
    let shape = if let Some(app) = App::from_name(model) {
        let def = dnn::zoo::netdef(app);
        let items = app.service_meta().inputs_per_query * queries;
        def.input_shape().with_batch(items)
    } else if model == "textgen" {
        // The generative LM (`djinn-server --lm`): prompts are single
        // rows — the decode loop feeds its own output back.
        dnn::zoo::textgen().input_shape().clone()
    } else {
        let def = dnn::zoo::tiny_test_zoo()
            .into_iter()
            .find(|d| d.name() == model)?;
        def.input_shape().with_batch(queries)
    };
    Some(
        (0..vocab)
            .map(|slot| Tensor::random_uniform(shape.clone(), 0.5, 99 + 7919 * slot as u64))
            .collect(),
    )
}

/// A weighted model mix: each request draws a model by weight, then an
/// input from that model's shared pool, from the caller's PRNG state. A
/// single `--model` run is the one-entry case.
struct Workload {
    /// (model name, shared deterministic input pool) per mix entry.
    targets: Vec<(String, Vec<Tensor>)>,
    /// Cumulative weights, parallel to `targets`.
    cum: Vec<u32>,
    /// Zipf rank sampler over the pool (`--vocab` ranks, exponent
    /// `--zipf`): the harmonic normalization is computed once here, and
    /// every request's slot pick is a binary search. S=0 degenerates to
    /// uniform.
    zipf: ZipfSampler,
}

impl Workload {
    fn single(model: String, pool: Vec<Tensor>, zipf: f64) -> Self {
        let vocab = pool.len();
        Workload {
            targets: vec![(model, pool)],
            cum: vec![1],
            zipf: ZipfSampler::new(vocab, zipf),
        }
    }

    /// Parses `"name=w,name=w"`, building one input pool per entry.
    fn from_mix(spec: &str, queries: usize, vocab: usize, zipf: f64) -> Result<Self, String> {
        let mut targets = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u32;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, weight) = match part.split_once('=') {
                Some((n, w)) => {
                    let w: u32 = w
                        .parse()
                        .map_err(|e| format!("bad weight in `{part}`: {e}"))?;
                    (n.trim(), w)
                }
                None => (part, 1),
            };
            if weight == 0 {
                return Err(format!("weight 0 in `{part}` would never be sent"));
            }
            let pool = inputs_for(name, queries, vocab)
                .ok_or_else(|| format!("unknown model `{name}` in --mix"))?;
            total += weight;
            targets.push((name.to_string(), pool));
            cum.push(total);
        }
        if targets.is_empty() {
            return Err("--mix named no models".into());
        }
        Ok(Workload {
            targets,
            cum,
            zipf: ZipfSampler::new(vocab, zipf),
        })
    }

    /// Picks a target index by weight; `rng` is a caller-owned xorshift
    /// state, so every thread samples its own deterministic sequence.
    fn pick(&self, rng: &mut u64) -> usize {
        if self.targets.len() == 1 {
            return 0;
        }
        let draw = (xorshift64(rng) % u64::from(*self.cum.last().expect("non-empty mix"))) as u32;
        self.cum.partition_point(|&c| c <= draw)
    }

    /// Picks a pool slot by Zipf rank weight from the caller's PRNG
    /// state. With `--vocab 1` (or S=0 and a one-entry pool) this is
    /// always slot 0.
    fn pick_slot(&self, rng: &mut u64) -> usize {
        self.zipf.sample(rng)
    }
}

/// The classic closed loop: one request in flight, reconnect with
/// backoff on transport failures.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    client: &mut DjinnClient,
    addr: std::net::SocketAddr,
    timeout: Duration,
    workload: &Workload,
    rng: &mut u64,
    requests: usize,
    local: &mut Vec<TraceRecord>,
    errors: &AtomicU64,
    sheds: &AtomicU64,
    reconnects: &AtomicU64,
) {
    for done in 0..requests {
        let (model, pool) = &workload.targets[workload.pick(rng)];
        let input = &pool[workload.pick_slot(rng)];
        match client.infer_traced(model, input) {
            Ok((_, record)) => local.push(record),
            // The server shed the request at admission: the
            // connection is fine, and this is backpressure, not a
            // transport failure — count it separately.
            Err(DjinnError::Busy { .. }) => {
                sheds.fetch_add(1, Ordering::Relaxed);
            }
            // Server-side application error: the connection is
            // still framed correctly, keep using it.
            Err(DjinnError::Remote { .. }) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            // I/O or protocol break: the stream can no longer be
            // trusted — reconnect with backoff and carry on.
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                match connect_with_backoff(addr, timeout) {
                    Some(c) => {
                        reconnects.fetch_add(1, Ordering::Relaxed);
                        *client = c;
                    }
                    None => {
                        let remaining = (requests - done - 1) as u64;
                        errors.fetch_add(remaining, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
    }
}

/// Pipelined issue: keep up to `window` requests in flight on one
/// connection, submitting and claiming completions directly so every
/// request encodes from the one shared input through the client's
/// reusable scratch buffer — no per-request tensor clone, no chunk
/// batching. Responses demultiplex by request ID, so per-request sheds
/// and errors land on the request that caused them even when replies
/// come back out of order. A transport failure costs the requests in
/// flight; the worker reconnects and carries on.
#[allow(clippy::too_many_arguments)]
fn run_pipelined(
    client: &mut DjinnClient,
    addr: std::net::SocketAddr,
    timeout: Duration,
    workload: &Workload,
    rng: &mut u64,
    requests: usize,
    window: usize,
    local: &mut Vec<TraceRecord>,
    errors: &AtomicU64,
    sheds: &AtomicU64,
    reconnects: &AtomicU64,
) {
    let mut submitted = 0usize; // requests written to any connection
    let mut accounted = 0usize; // responses received or charged as lost
    while accounted < requests {
        // Keep the window full...
        let mut transport_broke = false;
        while submitted < requests && client.in_flight() < window {
            let (model, pool) = &workload.targets[workload.pick(rng)];
            let input = &pool[workload.pick_slot(rng)];
            match client.submit(model, input) {
                Ok(_) => submitted += 1,
                Err(_) => {
                    transport_broke = true;
                    break;
                }
            }
        }
        // ...and claim whichever in-flight request finishes first.
        if !transport_broke {
            match client.recv_next() {
                Ok(done) => {
                    accounted += 1;
                    match done.result {
                        Ok((_, record)) => local.push(record),
                        Err(DjinnError::Busy { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    continue;
                }
                Err(_) => transport_broke = true,
            }
        }
        debug_assert!(transport_broke);
        // I/O or protocol break: every request still in flight is lost —
        // charge them as errors and start over on a fresh connection.
        let lost = (submitted - accounted) as u64;
        errors.fetch_add(lost, Ordering::Relaxed);
        accounted = submitted;
        if accounted >= requests {
            return;
        }
        match connect_with_backoff(addr, timeout) {
            Some(c) => {
                reconnects.fetch_add(1, Ordering::Relaxed);
                *client = c;
            }
            None => {
                errors.fetch_add((requests - accounted) as u64, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Draws an exponential inter-arrival gap at `rate` arrivals/second
/// from the caller's xorshift state — the gap sequence is the Poisson
/// arrival process of the open loop, deterministic per thread.
fn exp_gap(rng: &mut u64, rate: f64) -> Duration {
    // Map to (0, 1]: never ln(0). 2^-64 scales the full u64 range.
    let u = (xorshift64(rng) as f64 + 1.0) * 5.421_010_862_427_522e-20;
    Duration::from_secs_f64(-u.ln() / rate)
}

/// A read that timed out leaves its requests in flight (see
/// [`DjinnClient::recv_next`]); everything else is a real failure.
fn is_timeout(e: &DjinnError) -> bool {
    matches!(e, DjinnError::Io(io)
        if io.kind() == std::io::ErrorKind::TimedOut
            || io.kind() == std::io::ErrorKind::WouldBlock)
}

/// Open-loop issue: requests arrive on a Poisson schedule at `rate`
/// per second regardless of how fast responses come back, so the
/// offered load — not the server's service rate — sets the pace.
/// Between arrivals the worker drains completions under a short read
/// timeout (timed-out reads leave requests in flight); after the last
/// arrival it drains the tail under the full `timeout`. A transport
/// break loses the requests in flight, and the worker reconnects
/// without pausing the arrival clock — missed arrivals are sent
/// immediately, preserving the schedule rather than resampling it.
#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    client: &mut DjinnClient,
    addr: std::net::SocketAddr,
    timeout: Duration,
    workload: &Workload,
    rng: &mut u64,
    requests: usize,
    rate: f64,
    local: &mut Vec<TraceRecord>,
    errors: &AtomicU64,
    sheds: &AtomicU64,
    reconnects: &AtomicU64,
) {
    /// Read-stall bound while waiting between arrivals: long enough to
    /// amortize the syscall, short enough to never hold up an arrival
    /// by more than a scheduling quantum.
    const DRAIN_TIMEOUT: Duration = Duration::from_millis(1);

    let mut submitted = 0usize;
    let mut accounted = 0usize;
    let started = Instant::now();
    let mut next_arrival = Duration::ZERO;
    let drain_ok = client.set_io_timeout(Some(DRAIN_TIMEOUT)).is_ok();
    while accounted < requests {
        let now = started.elapsed();
        if submitted < requests && now >= next_arrival {
            let (model, pool) = &workload.targets[workload.pick(rng)];
            let input = &pool[workload.pick_slot(rng)];
            match client.submit(model, input) {
                Ok(_) => {
                    submitted += 1;
                    next_arrival += exp_gap(rng, rate);
                    continue;
                }
                Err(_) => {
                    // Transport break on send: charge the in-flight
                    // window plus this arrival, then reconnect below.
                    errors.fetch_add((submitted - accounted) as u64 + 1, Ordering::Relaxed);
                    accounted = submitted;
                    submitted += 1; // the failed arrival is spent
                    next_arrival += exp_gap(rng, rate);
                }
            }
        } else if client.in_flight() > 0 {
            // Wait for completions, but never past the next arrival.
            if submitted >= requests {
                // Tail drain: no more arrivals to protect.
                let _ = client.set_io_timeout(Some(timeout));
            }
            match client.recv_next() {
                Ok(done) => {
                    accounted += 1;
                    match done.result {
                        Ok((_, record)) => local.push(record),
                        Err(DjinnError::Busy { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    continue;
                }
                Err(ref e) if is_timeout(e) && submitted < requests => continue,
                Err(_) => {
                    errors.fetch_add((submitted - accounted) as u64, Ordering::Relaxed);
                    accounted = submitted;
                    if accounted >= requests {
                        return;
                    }
                }
            }
        } else {
            // Idle until the next arrival is due.
            std::thread::sleep(next_arrival.saturating_sub(now).min(DRAIN_TIMEOUT));
            continue;
        }
        // Only reachable after a transport failure: reconnect and keep
        // the arrival clock running.
        match connect_with_backoff(addr, timeout) {
            Some(c) => {
                reconnects.fetch_add(1, Ordering::Relaxed);
                *client = c;
                if drain_ok && submitted < requests {
                    let _ = client.set_io_timeout(Some(DRAIN_TIMEOUT));
                }
            }
            None => {
                errors.fetch_add((requests - accounted) as u64, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Client-observed timings for one completed generative stream.
struct StreamRecord {
    /// Submission → first chunk (time-to-first-token), milliseconds.
    ttft_ms: f64,
    /// Submission → final chunk, milliseconds.
    total_ms: f64,
    /// Chunks (tokens) received.
    tokens: u64,
    /// Gaps between consecutive chunks, milliseconds.
    gaps_ms: Vec<f64>,
}

/// The streaming closed loop (`--stream`): each "request" is one
/// generative stream of `--tokens` chunks, consumed to completion.
/// TTFT, inter-token gaps, and total stream time are all measured from
/// the client's clock — the numbers a user-facing token stream would
/// feel. `Busy` sheds and remote errors leave the connection usable;
/// transport breaks reconnect with backoff like the one-shot loops.
#[allow(clippy::too_many_arguments)]
fn run_stream_loop(
    client: &mut DjinnClient,
    addr: std::net::SocketAddr,
    timeout: Duration,
    workload: &Workload,
    rng: &mut u64,
    requests: usize,
    max_tokens: u32,
    local: &mut Vec<StreamRecord>,
    errors: &AtomicU64,
    sheds: &AtomicU64,
    reconnects: &AtomicU64,
) {
    for done in 0..requests {
        let (model, pool) = &workload.targets[workload.pick(rng)];
        let input = &pool[workload.pick_slot(rng)];
        let started = Instant::now();
        let outcome = (|| {
            let id = client.stream_infer(model, input, StreamMode::Generative { max_tokens })?;
            let mut record = StreamRecord {
                ttft_ms: 0.0,
                total_ms: 0.0,
                tokens: 0,
                gaps_ms: Vec::new(),
            };
            let mut prev = started;
            loop {
                let chunk = client.recv_chunk(id)?;
                let now = Instant::now();
                let gap_ms = now.duration_since(prev).as_secs_f64() * 1e3;
                if record.tokens == 0 {
                    record.ttft_ms = gap_ms;
                } else {
                    record.gaps_ms.push(gap_ms);
                }
                prev = now;
                record.tokens += 1;
                if chunk.last {
                    break;
                }
            }
            record.total_ms = started.elapsed().as_secs_f64() * 1e3;
            Ok::<_, DjinnError>(record)
        })();
        match outcome {
            Ok(record) => local.push(record),
            Err(DjinnError::Busy { .. }) => {
                sheds.fetch_add(1, Ordering::Relaxed);
            }
            Err(DjinnError::Remote { .. }) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                match connect_with_backoff(addr, timeout) {
                    Some(c) => {
                        reconnects.fetch_add(1, Ordering::Relaxed);
                        *client = c;
                    }
                    None => {
                        let remaining = (requests - done - 1) as u64;
                        errors.fetch_add(remaining, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let addr: std::net::SocketAddr = match args.addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad --addr {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    if args.model.is_some() && args.mix.is_some() {
        eprintln!("--model and --mix are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if args.rate.is_some() && args.pipeline > 1 {
        eprintln!("--rate (open loop) and --pipeline (closed-loop window) are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if args.stream && (args.rate.is_some() || args.pipeline > 1) {
        eprintln!("--stream is a closed loop of whole streams; it excludes --rate and --pipeline");
        return ExitCode::FAILURE;
    }
    let (workload, label) = match (&args.model, &args.mix) {
        (Some(model), None) => {
            let Some(pool) = inputs_for(model, args.queries, args.vocab) else {
                eprintln!("unknown Tonic model `{model}` (known: imc dig face asr pos chk ner)");
                return ExitCode::FAILURE;
            };
            (
                Workload::single(model.clone(), pool, args.zipf),
                model.clone(),
            )
        }
        (None, Some(spec)) => match Workload::from_mix(spec, args.queries, args.vocab, args.zipf) {
            Ok(w) => (w, format!("mix({spec})")),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {
            // No model: just show what the server offers.
            match DjinnClient::connect(addr).and_then(|mut c| c.list_models()) {
                Ok(names) => {
                    println!("models: {}", names.join(", "));
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("cannot reach server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(_), Some(_)) => unreachable!("checked above"),
    };
    let workload = Arc::new(workload);

    let records = Arc::new(Mutex::new(Vec::<TraceRecord>::new()));
    let streams = Arc::new(Mutex::new(Vec::<StreamRecord>::new()));
    let errors = Arc::new(AtomicU64::new(0));
    let sheds = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let timeout = args.timeout;
    let started = Instant::now();
    let mut handles = Vec::new();
    for thread_idx in 0..args.threads {
        let workload = Arc::clone(&workload);
        let records = Arc::clone(&records);
        let streams = Arc::clone(&streams);
        let errors = Arc::clone(&errors);
        let sheds = Arc::clone(&sheds);
        let reconnects = Arc::clone(&reconnects);
        let requests = args.requests;
        let window = args.pipeline;
        let thread_rate = args.rate.map(|r| r / args.threads as f64);
        let stream_tokens = args.stream.then_some(args.tokens);
        handles.push(std::thread::spawn(move || {
            let mut client = match connect_with_backoff(addr, timeout) {
                Some(c) => c,
                None => {
                    errors.fetch_add(requests as u64, Ordering::Relaxed);
                    return;
                }
            };
            // Per-thread trace buffer, merged once at the end, so the
            // hot loop never contends on the shared lock. The PRNG seed
            // is per-thread and deterministic: rerunning a mix replays
            // the same model sequence.
            let mut rng =
                0x9E37_79B9_7F4A_7C15u64 ^ ((thread_idx as u64 + 1) * 0x2545_F491_4F6C_DD1D);
            let mut local = Vec::with_capacity(requests);
            if let Some(max_tokens) = stream_tokens {
                let mut stream_local = Vec::with_capacity(requests);
                run_stream_loop(
                    &mut client,
                    addr,
                    timeout,
                    &workload,
                    &mut rng,
                    requests,
                    max_tokens,
                    &mut stream_local,
                    &errors,
                    &sheds,
                    &reconnects,
                );
                streams
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(stream_local);
                return;
            }
            if let Some(rate) = thread_rate {
                run_open_loop(
                    &mut client,
                    addr,
                    timeout,
                    &workload,
                    &mut rng,
                    requests,
                    rate,
                    &mut local,
                    &errors,
                    &sheds,
                    &reconnects,
                );
            } else if window > 1 {
                run_pipelined(
                    &mut client,
                    addr,
                    timeout,
                    &workload,
                    &mut rng,
                    requests,
                    window,
                    &mut local,
                    &errors,
                    &sheds,
                    &reconnects,
                );
            } else {
                run_closed_loop(
                    &mut client,
                    addr,
                    timeout,
                    &workload,
                    &mut rng,
                    requests,
                    &mut local,
                    &errors,
                    &sheds,
                    &reconnects,
                );
            }
            records
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(local);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let sent = (args.threads * args.requests) as u64;

    if args.stream {
        // Streaming report: token throughput and the per-token latency
        // class (TTFT + inter-token gaps), all client-observed.
        let recs = std::mem::take(&mut *streams.lock().unwrap_or_else(|e| e.into_inner()));
        let ok = recs.len() as u64;
        let total_tokens: u64 = recs.iter().map(|r| r.tokens).sum();
        let mut ttft_ms: Vec<f64> = recs.iter().map(|r| r.ttft_ms).collect();
        let mut total_ms: Vec<f64> = recs.iter().map(|r| r.total_ms).collect();
        let mut gaps_ms: Vec<f64> = recs
            .iter()
            .flat_map(|r| r.gaps_ms.iter().copied())
            .collect();
        ttft_ms.sort_by(f64::total_cmp);
        total_ms.sort_by(f64::total_cmp);
        gaps_ms.sort_by(f64::total_cmp);
        println!(
            "{label} [stream x{} tokens]: {ok}/{sent} streams ok in {elapsed:.2}s  ->  \
             {:.1} tokens/s, TTFT p50 {} p99 {}, inter-token p50 {} p99 {}, \
             stream total p50 {} p99 {}, {} shed (busy), {} errors, {} reconnects",
            args.tokens,
            total_tokens as f64 / elapsed,
            fmt_ms(percentile(&ttft_ms, 0.50)),
            fmt_ms(percentile(&ttft_ms, 0.99)),
            fmt_ms(percentile(&gaps_ms, 0.50)),
            fmt_ms(percentile(&gaps_ms, 0.99)),
            fmt_ms(percentile(&total_ms, 0.50)),
            fmt_ms(percentile(&total_ms, 0.99)),
            sheds.load(Ordering::Relaxed),
            errors.load(Ordering::Relaxed),
            reconnects.load(Ordering::Relaxed),
        );
        return ExitCode::SUCCESS;
    }

    let records = std::mem::take(&mut *records.lock().unwrap_or_else(|e| e.into_inner()));
    let mut lat_ms: Vec<f64> = records.iter().map(|r| r.e2e_us as f64 / 1e3).collect();
    lat_ms.sort_by(f64::total_cmp);
    let ok = lat_ms.len() as u64;
    // `percentile` returns None on an empty sample set (every request
    // shed or failed): the report says `n/a` instead of panicking on an
    // empty index or printing a fake 0 ms.
    let mean = (ok > 0).then(|| lat_ms.iter().sum::<f64>() / ok as f64);
    // Whole requests answered by the server's *exact* cache layer (the
    // trace flag is per request). Embed-layer row hits are a different
    // unit — rows, not requests — and live in the server's stats
    // (`cache_hits` there counts rows under `--cache embed`); they are
    // deliberately not folded into this per-request count.
    let cache_hits = records.iter().filter(|r| r.cache_hit).count();
    println!(
        "{label}: {ok}/{sent} ok in {elapsed:.2}s  ->  {:.1} req/s ({:.1} q/s), \
         mean {}, p50 {}, p95 {}, p99 {}, \
         max {}, {} shed (busy), {} errors, {} reconnects, {} cache-hit requests",
        ok as f64 / elapsed,
        ok as f64 * args.queries as f64 / elapsed,
        fmt_ms(mean),
        fmt_ms(percentile(&lat_ms, 0.50)),
        fmt_ms(percentile(&lat_ms, 0.95)),
        fmt_ms(percentile(&lat_ms, 0.99)),
        fmt_ms(lat_ms.last().copied()),
        sheds.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
        reconnects.load(Ordering::Relaxed),
        cache_hits,
    );

    // Per-stage latency breakdown from the server's echoed trace blocks.
    // Pre-v3 servers echo none: the aggregator leaves the wire (and
    // other server-side) rows `n/a` rather than printing fake zeros.
    let mut agg = TraceAggregator::new();
    for r in &records {
        agg.record(r);
    }
    print!("{}", agg.table().render());

    // Payload efficiency: what the measured throughput cost on the wire,
    // from the actual frame sizes (length prefixes included).
    let wire_bytes: u64 = records.iter().map(|r| r.wire_bytes).sum();
    if ok > 0 && wire_bytes > 0 {
        println!(
            "wire bytes: {:.0} per request, {:.2} MB/s on the wire",
            wire_bytes as f64 / ok as f64,
            wire_bytes as f64 / 1e6 / elapsed,
        );
    }

    if let Some(path) = args.trace_out {
        let mut jsonl = String::with_capacity(records.len() * 160);
        for r in &records {
            jsonl.push_str(&r.to_json());
            jsonl.push('\n');
        }
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("cannot write --trace-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} trace records to {path}", records.len());
    }
    ExitCode::SUCCESS
}
