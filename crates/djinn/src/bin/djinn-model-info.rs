//! Inspect a `.djnm` model file (or a built-in Tonic model): architecture
//! summary, parameter count and estimated single-GPU latency.
//!
//! ```text
//! djinn-model-info PATH.djnm | TONIC_NAME [--batch N]
//! ```

use std::process::ExitCode;

use djinn::SimGpuExecutor;
use dnn::zoo::App;

fn main() -> ExitCode {
    let mut target = None;
    let mut batch = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(b) => batch = b,
                None => {
                    eprintln!("--batch needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: djinn-model-info PATH.djnm | imc|dig|face|asr|pos|chk|ner [--batch N]"
                );
                return ExitCode::SUCCESS;
            }
            other => target = Some(other.to_string()),
        }
    }
    let Some(target) = target else {
        eprintln!("need a model file path or a Tonic model name");
        return ExitCode::FAILURE;
    };

    let network = if let Some(app) = App::from_name(&target) {
        match dnn::zoo::network(app) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("building {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::File::open(&target)
            .map_err(|e| e.to_string())
            .and_then(|f| {
                dnn::modelfile::load(std::io::BufReader::new(f)).map_err(|e| e.to_string())
            }) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("loading {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    print!("{}", network.def().summary());
    let gpu = SimGpuExecutor::default();
    match gpu.modeled_latency(&network, batch) {
        Ok(lat) => println!(
            "\nmodeled K40 forward latency at batch {batch}: {:.3} ms",
            lat.as_secs_f64() * 1e3
        ),
        Err(e) => eprintln!("latency model failed: {e}"),
    }
    ExitCode::SUCCESS
}
