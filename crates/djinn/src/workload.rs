//! Workload-shaping primitives shared by the load generator and the
//! benchmark drivers: a deterministic xorshift PRNG and a Zipf rank
//! sampler.
//!
//! The sampler is built once per workload: the O(vocab) harmonic
//! normalization happens a single time in [`ZipfSampler::new`], and
//! every draw after that is one PRNG step plus a binary search over the
//! precomputed cumulative table. Nothing about the distribution is
//! recomputed per request, so the sampling cost is O(log vocab)
//! regardless of pool size — and because the PRNG state is caller-owned,
//! two runs seeded identically replay byte-identical rank sequences.

/// Advances a caller-owned xorshift64 state and returns the new value.
///
/// This is the one PRNG used for every load-generation decision (model
/// pick, rank pick, inter-arrival gap), kept deliberately tiny so the
/// sequence is reproducible from a seed alone.
#[inline]
pub fn xorshift64(rng: &mut u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng
}

/// Zipf-distributed rank sampler over `0..vocab`.
///
/// Rank `r` carries weight `1/(r+1)^s`: `s = 0` degenerates to uniform,
/// larger `s` concentrates mass on low ranks (a "hotter" vocabulary).
/// The cumulative table is normalized to 1.0 at construction; draws map
/// a uniform `u ∈ [0, 1)` through the table by binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative normalized mass per rank; `cum[vocab-1] == 1.0`.
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. This is the only place the O(vocab) harmonic
    /// sum runs.
    ///
    /// # Panics
    ///
    /// Panics if `vocab` is zero or `s` is negative or non-finite — both
    /// are caller bugs (the CLI layers validate their flags first).
    #[must_use]
    pub fn new(vocab: usize, s: f64) -> Self {
        assert!(vocab > 0, "a Zipf sampler needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cum = Vec::with_capacity(vocab);
        let mut total = 0.0f64;
        for rank in 0..vocab {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        ZipfSampler { cum }
    }

    /// Number of ranks this sampler draws from.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.cum.len()
    }

    /// The probability mass assigned to `rank` (for tests and reports).
    #[must_use]
    pub fn mass(&self, rank: usize) -> f64 {
        let above = if rank == 0 { 0.0 } else { self.cum[rank - 1] };
        self.cum[rank] - above
    }

    /// Draws a rank from the caller's PRNG state. A one-rank sampler
    /// always returns 0 without consuming randomness, so `--vocab 1`
    /// runs replay the exact request sequence earlier versions sent.
    pub fn sample(&self, rng: &mut u64) -> usize {
        if self.cum.len() == 1 {
            return 0;
        }
        // Map to [0, 1): 2^-64 scales the full u64 range.
        let u = xorshift64(rng) as f64 * 5.421_010_862_427_522e-20;
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference draw that recomputes the whole distribution per call —
    /// the naive O(vocab) form the sampler's precomputed table must
    /// match exactly (same fold order, same normalization).
    fn naive_draw(vocab: usize, s: f64, rng: &mut u64) -> usize {
        let mut weights = Vec::with_capacity(vocab);
        let mut total = 0.0f64;
        for rank in 0..vocab {
            let w = 1.0 / ((rank + 1) as f64).powf(s);
            weights.push(w);
            total += w;
        }
        let u = xorshift64(rng) as f64 * 5.421_010_862_427_522e-20;
        let mut acc = 0.0f64;
        for (rank, w) in weights.iter().enumerate() {
            acc += w / total;
            if u < acc {
                return rank;
            }
        }
        vocab - 1
    }

    #[test]
    fn same_seed_replays_the_same_rank_sequence() {
        let sampler = ZipfSampler::new(64, 1.1);
        let mut a = 0xDEAD_BEEF_u64;
        let mut b = 0xDEAD_BEEF_u64;
        let first: Vec<usize> = (0..1000).map(|_| sampler.sample(&mut a)).collect();
        let second: Vec<usize> = (0..1000).map(|_| sampler.sample(&mut b)).collect();
        assert_eq!(first, second, "same seeds must give the same picks");
        // And a different seed must not (vanishingly unlikely by chance).
        let mut c = 0xFEED_FACE_u64;
        let third: Vec<usize> = (0..1000).map(|_| sampler.sample(&mut c)).collect();
        assert_ne!(first, third);
    }

    /// The precomputed-CDF fast path must pick the same rank as the
    /// naive recompute-per-draw reference for the same PRNG stream: the
    /// optimization changed the cost, not the distribution.
    #[test]
    fn precomputed_table_matches_the_naive_per_draw_reference() {
        for &(vocab, s) in &[
            (1usize, 0.0f64),
            (2, 0.5),
            (16, 0.0),
            (64, 0.99),
            (100, 2.0),
        ] {
            let sampler = ZipfSampler::new(vocab, s);
            let mut fast_rng = 0x1234_5678_u64;
            let mut naive_rng = 0x1234_5678_u64;
            for draw in 0..2000 {
                // vocab == 1 draws no randomness in the fast path; feed
                // the naive reference the same way.
                let fast = sampler.sample(&mut fast_rng);
                let naive = if vocab == 1 {
                    0
                } else {
                    naive_draw(vocab, s, &mut naive_rng)
                };
                assert_eq!(fast, naive, "draw {draw} diverged for vocab={vocab} s={s}");
            }
        }
    }

    /// The table must encode the Zipf law itself: the mass on rank r is
    /// (1/(r+1)^s) / H, and empirical frequencies converge to it.
    #[test]
    fn sampled_frequencies_follow_the_zipf_mass() {
        let (vocab, s, draws) = (8usize, 1.0f64, 200_000usize);
        let sampler = ZipfSampler::new(vocab, s);
        let harmonic: f64 = (1..=vocab).map(|r| 1.0 / r as f64).sum();
        let mut counts = vec![0usize; vocab];
        let mut rng = 7u64;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let want = (1.0 / (rank + 1) as f64) / harmonic;
            assert!(
                (sampler.mass(rank) - want).abs() < 1e-12,
                "table mass for rank {rank} is off: {} vs {want}",
                sampler.mass(rank)
            );
            let got = count as f64 / draws as f64;
            assert!(
                (got - want).abs() < 0.01,
                "rank {rank}: sampled {got:.4}, expected {want:.4}"
            );
        }
        // Uniform degenerate case: every rank equally likely.
        let uniform = ZipfSampler::new(5, 0.0);
        for rank in 0..5 {
            assert!((uniform.mass(rank) - 0.2).abs() < 1e-12);
        }
    }
}
