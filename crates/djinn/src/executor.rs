//! Compute backends for the service.
//!
//! Both executors produce *real* predictions with real math on the
//! `tensor` substrate. They differ in the latency they report:
//! [`CpuExecutor`] reports measured wall-clock time (it *is* the CPU
//! baseline), while [`SimGpuExecutor`] reports the latency the paper's
//! K40 would exhibit for the same forward pass, taken from the calibrated
//! `perf` model — the GPU-hardware substitution of DESIGN.md §2.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dnn::cache::EmbedCache;
use dnn::profile::WorkloadProfile;
use dnn::Network;
use perf::GpuSpec;
use tensor::{Tensor, Threading};

use crate::Result;

/// The result of one inference call.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// The network output (softmax scores or logits, batched like the
    /// input).
    pub output: Tensor,
    /// The device latency attributed to the forward pass: measured for the
    /// CPU backend, modeled for the simulated-GPU backend.
    pub device_latency: Duration,
}

/// A compute backend executing forward passes.
///
/// Implementations must be thread-safe: DjiNN worker threads call
/// [`Executor::infer`] concurrently against shared read-only models.
pub trait Executor: Send + Sync {
    /// Runs the forward pass of `network` on `input`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and layer failures.
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome>;

    /// Runs the forward pass under an externally granted thread `budget`
    /// (a device-scheduler lease). Backends that spend host threads cap
    /// their configured parallelism at the budget; backends that don't
    /// (modeled GPU, test doubles) ignore it, which is what the default
    /// does.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and layer failures.
    fn infer_budgeted(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
    ) -> Result<InferenceOutcome> {
        let _ = budget;
        self.infer(network, input)
    }

    /// [`Executor::infer_budgeted`] with an optional embedding-layer
    /// cache to consult/populate. Backends that run the real layer
    /// stack on the host route through
    /// [`Network::forward_embed_cached`]; backends whose math happens
    /// elsewhere (modeled GPU, test doubles) ignore the cache — the
    /// default does.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and layer failures.
    fn infer_budgeted_cached(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
        embed: Option<&EmbedCache>,
    ) -> Result<InferenceOutcome> {
        let _ = embed;
        self.infer_budgeted(network, input, budget)
    }

    /// Host threads this backend would like for a `batch`-item call —
    /// what an engine asks the device scheduler for. Backends without
    /// host-thread parallelism want one.
    fn preferred_threads(&self, batch: usize) -> usize {
        let _ = batch;
        1
    }

    /// Short backend name for logs and stats.
    fn backend_name(&self) -> &'static str;
}

/// Executes on the host CPU (the paper's Caffe+ATLAS baseline).
///
/// Defaults to sequential execution; [`CpuExecutor::new`] takes a
/// [`Threading`] budget that each inference spends either by sharding
/// the batch across threads or by threading inside each layer's GEMM,
/// whichever suits the model (see [`CpuExecutor::infer`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuExecutor {
    threading: Threading,
}

impl CpuExecutor {
    /// A CPU executor spending `threading` worker threads per inference.
    pub fn new(threading: Threading) -> Self {
        CpuExecutor { threading }
    }

    /// The configured per-inference thread budget.
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// Whether batch sharding beats intra-layer threading for this call.
    ///
    /// Sharding wins when the batch is wide relative to the thread count
    /// (each worker gets a meaningful sub-batch) and the model's biggest
    /// GEMM is skinny — the SENNA profile, where per-item matrices are
    /// too small to split internally. Fat-GEMM models (AlexNet, Kaldi)
    /// keep the budget inside the layer where the packed GEMM splits row
    /// strips.
    fn prefer_sharding(network: &Network, batch: usize, threads: usize) -> bool {
        if batch < 2 * threads {
            return false;
        }
        match WorkloadProfile::of(network.def(), batch) {
            // Treat anything smaller than one packed L2 block per thread
            // as skinny: a 256x256-ish GEMM saturates one core's blocking
            // but leaves nothing to split.
            Ok(p) => match p.largest_gemm() {
                Some((m, n, k)) => m * n * k < threads * 256 * 256 * 256,
                None => true,
            },
            Err(_) => false,
        }
    }
}

impl CpuExecutor {
    fn infer_with(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        threading: Threading,
    ) -> Result<InferenceOutcome> {
        let start = Instant::now();
        let output = if !threading.is_parallel() {
            network.forward(input)?
        } else if Self::prefer_sharding(network, input.shape().batch(), threading.threads) {
            network.forward_sharded(input, threading)?
        } else {
            network.forward_with(input, threading)?
        };
        Ok(InferenceOutcome {
            output,
            device_latency: start.elapsed(),
        })
    }
}

impl Executor for CpuExecutor {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        self.infer_with(network, input, self.threading)
    }

    fn infer_budgeted(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
    ) -> Result<InferenceOutcome> {
        // A lease can shrink the configured budget, never grow it. The
        // tensor kernels are bitwise-identical at any thread count, so a
        // partial grant only changes timing, not outputs.
        self.infer_with(network, input, self.threading.min(budget))
    }

    fn infer_budgeted_cached(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
        embed: Option<&EmbedCache>,
    ) -> Result<InferenceOutcome> {
        let Some(cache) = embed else {
            return self.infer_budgeted(network, input, budget);
        };
        // The row-at-a-time prefix does its own (cached) work; the
        // remaining layers still honor the lease budget.
        let start = Instant::now();
        let output = network.forward_embed_cached(input, cache, self.threading.min(budget))?;
        Ok(InferenceOutcome {
            output,
            device_latency: start.elapsed(),
        })
    }

    fn preferred_threads(&self, _batch: usize) -> usize {
        self.threading.threads
    }

    fn backend_name(&self) -> &'static str {
        "cpu"
    }
}

/// Executes the same real math as [`CpuExecutor`] but attributes the
/// latency a K40 running the equivalent cuDNN kernels would take.
#[derive(Debug, Clone)]
pub struct SimGpuExecutor {
    gpu: GpuSpec,
}

impl SimGpuExecutor {
    /// Creates a simulated-GPU executor for the given device.
    pub fn new(gpu: GpuSpec) -> Self {
        SimGpuExecutor { gpu }
    }

    /// The simulated device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Models the forward latency for `network` at `batch` input items
    /// without executing any math (used by benchmarks that only need
    /// timing).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures.
    pub fn modeled_latency(&self, network: &Network, batch: usize) -> Result<Duration> {
        let profile = WorkloadProfile::of(network.def(), batch)?;
        let timing = perf::gpu_forward(&self.gpu, &profile);
        Ok(Duration::from_secs_f64(timing.seconds))
    }
}

impl Default for SimGpuExecutor {
    fn default() -> Self {
        SimGpuExecutor::new(GpuSpec::k40())
    }
}

impl Executor for SimGpuExecutor {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        let output = network.forward(input)?;
        let device_latency = self.modeled_latency(network, input.shape().batch())?;
        Ok(InferenceOutcome {
            output,
            device_latency,
        })
    }

    fn backend_name(&self) -> &'static str {
        "sim-gpu"
    }
}

/// Wraps another executor and *occupies the worker* for an extra
/// duration on every call, modeling a device-bound backend: a replica
/// whose service time is dominated by an accelerator (or a remote
/// device) the host merely feeds.
///
/// Scale-out experiments need this on machines with fewer cores than
/// replicas: with a purely CPU-bound backend, N colocated replicas
/// contend for the same cycles and adding replicas cannot raise
/// aggregate throughput, which says something about the host, not about
/// the serving tier under test. A sleep-bound service time makes each
/// replica's capacity `workers / delay` regardless of colocated
/// neighbors, so router experiments measure tier behavior (balancing,
/// queueing, shedding) rather than host contention. The sleep is added
/// to the reported device latency, keeping traces consistent with the
/// modeled device.
///
/// # Delay semantics under batching
///
/// A call's added delay is `base + per_item × batch`, where `batch` is
/// the input's leading (N) dimension:
///
/// * `base` is paid **once per dispatch**, regardless of batch size —
///   kernel-launch / transfer / framework overhead. This is what makes
///   batching profitable: a batch of 8 pays one base, eight singles pay
///   eight.
/// * `per_item` scales **linearly with the items in the batch** — the
///   per-sample compute a bigger batch cannot amortize away.
///
/// [`DelayExecutor::new`] sets only `base` (the historical behavior of
/// `--service-delay-us`, under which a batched call and a single call
/// cost the same — accurate for launch-bound devices but badly skewed
/// for co-location benches, where it made batching look free).
/// [`DelayExecutor::with_per_item`] sets both terms explicitly.
#[derive(Debug, Clone)]
pub struct DelayExecutor<E> {
    inner: E,
    base: Duration,
    per_item: Duration,
}

impl<E> DelayExecutor<E> {
    /// Wraps `inner`, holding each dispatch for an extra `delay`
    /// (per-dispatch base only; no per-item term).
    pub fn new(inner: E, delay: Duration) -> Self {
        DelayExecutor {
            inner,
            base: delay,
            per_item: Duration::ZERO,
        }
    }

    /// Wraps `inner` with an explicit per-dispatch `base` and a
    /// `per_item` term paid for every item in the batch.
    pub fn with_per_item(inner: E, base: Duration, per_item: Duration) -> Self {
        DelayExecutor {
            inner,
            base,
            per_item,
        }
    }

    /// The per-dispatch base delay.
    pub fn delay(&self) -> Duration {
        self.base
    }

    /// The per-item delay term.
    pub fn per_item(&self) -> Duration {
        self.per_item
    }

    /// The total delay a `batch`-item dispatch incurs.
    pub fn delay_for_batch(&self, batch: usize) -> Duration {
        self.base + self.per_item * batch.max(1) as u32
    }
}

impl<E: Executor> Executor for DelayExecutor<E> {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        let delay = self.delay_for_batch(input.shape().batch());
        std::thread::sleep(delay);
        let mut outcome = self.inner.infer(network, input)?;
        outcome.device_latency += delay;
        Ok(outcome)
    }

    fn infer_budgeted(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
    ) -> Result<InferenceOutcome> {
        let delay = self.delay_for_batch(input.shape().batch());
        std::thread::sleep(delay);
        let mut outcome = self.inner.infer_budgeted(network, input, budget)?;
        outcome.device_latency += delay;
        Ok(outcome)
    }

    fn infer_budgeted_cached(
        &self,
        network: &Arc<Network>,
        input: &Tensor,
        budget: Threading,
        embed: Option<&EmbedCache>,
    ) -> Result<InferenceOutcome> {
        let delay = self.delay_for_batch(input.shape().batch());
        std::thread::sleep(delay);
        let mut outcome = self
            .inner
            .infer_budgeted_cached(network, input, budget, embed)?;
        outcome.device_latency += delay;
        Ok(outcome)
    }

    fn preferred_threads(&self, batch: usize) -> usize {
        self.inner.preferred_threads(batch)
    }

    fn backend_name(&self) -> &'static str {
        "delayed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::zoo::App;
    use tensor::Shape;

    fn mnist() -> Arc<Network> {
        Arc::new(dnn::zoo::network(App::Dig).unwrap())
    }

    #[test]
    fn both_backends_agree_on_outputs() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(2, 1, 28, 28), 1.0, 3);
        let cpu = CpuExecutor::default().infer(&net, &input).unwrap();
        let gpu = SimGpuExecutor::default().infer(&net, &input).unwrap();
        assert_eq!(cpu.output, gpu.output);
    }

    #[test]
    fn sim_gpu_latency_is_modeled_not_measured() {
        let net = mnist();
        let d1 = SimGpuExecutor::default().modeled_latency(&net, 1).unwrap();
        let d2 = SimGpuExecutor::default().modeled_latency(&net, 1).unwrap();
        assert_eq!(d1, d2, "modeled latency must be deterministic");
        assert!(d1 > Duration::ZERO);
    }

    #[test]
    fn modeled_latency_grows_sublinearly_with_batch() {
        // The whole point of batching: 16x the work costs far less than
        // 16x the time.
        let net = mnist();
        let exec = SimGpuExecutor::default();
        let b1 = exec.modeled_latency(&net, 100).unwrap();
        let b16 = exec.modeled_latency(&net, 1600).unwrap();
        assert!(b16 < b1 * 16);
        assert!(b16 > b1);
    }

    #[test]
    fn cpu_latency_is_positive() {
        let net = mnist();
        let input = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        let out = CpuExecutor::default().infer(&net, &input).unwrap();
        assert!(out.device_latency > Duration::ZERO);
        assert_eq!(out.output.shape().dims(), &[1, 10]);
    }

    #[test]
    fn threaded_cpu_executor_matches_serial() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(4, 1, 28, 28), 1.0, 8);
        let serial = CpuExecutor::default().infer(&net, &input).unwrap();
        for threads in [2usize, 4] {
            let par = CpuExecutor::new(Threading::new(threads))
                .infer(&net, &input)
                .unwrap();
            assert!(
                par.output.max_abs_diff(&serial.output).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sharding_heuristic_picks_by_gemm_shape() {
        // SENNA (skinny per-item GEMMs, wide batch) shards; Kaldi at the
        // same batch has 2048x3500-class GEMMs worth splitting in-layer.
        let pos = dnn::zoo::network(App::Pos).unwrap();
        assert!(CpuExecutor::prefer_sharding(&pos, 64, 4));
        let asr = dnn::zoo::network(App::Asr).unwrap();
        assert!(!CpuExecutor::prefer_sharding(&asr, 64, 4));
        // Narrow batches never shard: workers would idle.
        assert!(!CpuExecutor::prefer_sharding(&pos, 4, 4));
    }

    #[test]
    fn sharding_batch_width_boundary_is_exactly_two_per_thread() {
        // The batch gate is `batch >= 2 * threads`: each worker must get
        // at least two items before splitting the batch pays. Probe the
        // boundary on a model whose GEMMs are always skinny enough.
        let pos = dnn::zoo::network(App::Pos).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let at = 2 * threads;
            assert!(
                CpuExecutor::prefer_sharding(&pos, at, threads),
                "batch {at} == 2x{threads} must shard"
            );
            assert!(
                !CpuExecutor::prefer_sharding(&pos, at - 1, threads),
                "batch {} < 2x{threads} must not shard",
                at - 1
            );
        }
    }

    #[test]
    fn sharding_gemm_cutoff_scales_with_thread_count() {
        // The GEMM gate is `m*n*k < threads * 256^3`: a model that is
        // "fat" for few threads becomes shard-worthy once enough threads
        // share it. Kaldi's largest GEMM at batch `b` is (b, 3482, 2048):
        // per the cutoff, threads=4 needs b*3482*2048 >= 4*256^3 i.e.
        // b >= ~9.4 to stay in-layer, so a wide batch stays in-layer and
        // the same shapes shard once the product dips under the line.
        let asr = dnn::zoo::network(App::Asr).unwrap();
        let gemm = |batch: usize| {
            use dnn::profile::WorkloadProfile;
            WorkloadProfile::of(asr.def(), batch)
                .unwrap()
                .largest_gemm()
                .unwrap()
        };
        for threads in [2usize, 4] {
            let cutoff = threads * 256 * 256 * 256;
            // Find batches on each side of the cutoff that still pass
            // the width gate, and check the heuristic follows the line.
            for batch in (2 * threads)..=64 {
                let (m, n, k) = gemm(batch);
                let expect = m * n * k < cutoff;
                assert_eq!(
                    CpuExecutor::prefer_sharding(&asr, batch, threads),
                    expect,
                    "batch {batch}, threads {threads}: gemm {m}x{n}x{k} vs cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn budgeted_inference_caps_threads_and_matches_serial_bitwise() {
        // A lease can only shrink the configured budget, and any grant
        // must stay bitwise-equal to sequential execution.
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(6, 1, 28, 28), 1.0, 11);
        let serial = CpuExecutor::default().infer(&net, &input).unwrap();
        let exec = CpuExecutor::new(Threading::new(4));
        for grant in [1usize, 2, 3, 8] {
            let out = exec
                .infer_budgeted(&net, &input, Threading::new(grant))
                .unwrap();
            assert_eq!(
                out.output, serial.output,
                "grant {grant} must be bitwise-equal to serial"
            );
        }
        assert_eq!(exec.preferred_threads(32), 4);
    }

    #[test]
    fn delay_executor_scales_per_item_with_batch() {
        // Per-dispatch base is paid once; per-item scales with N. A
        // batch of 4 with base=6ms, per_item=2ms costs 6+4*2 = 14ms,
        // where four singles would cost 4*(6+2) = 32ms — the
        // amortization batching is supposed to buy.
        let exec = DelayExecutor::with_per_item(
            CpuExecutor::default(),
            Duration::from_millis(6),
            Duration::from_millis(2),
        );
        assert_eq!(exec.delay_for_batch(1), Duration::from_millis(8));
        assert_eq!(exec.delay_for_batch(4), Duration::from_millis(14));
        // Degenerate zero-batch counts as one item.
        assert_eq!(exec.delay_for_batch(0), Duration::from_millis(8));

        let net = mnist();
        let batched = Tensor::random_uniform(Shape::nchw(4, 1, 28, 28), 1.0, 2);
        let start = Instant::now();
        let out = exec.infer(&net, &batched).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(14));
        assert!(out.device_latency >= Duration::from_millis(14));

        // `new` keeps the historical per-dispatch-only semantics.
        let flat = DelayExecutor::new(CpuExecutor::default(), Duration::from_millis(5));
        assert_eq!(flat.delay_for_batch(1), flat.delay_for_batch(16));
    }

    #[test]
    fn executors_are_object_safe() {
        let backends: Vec<Box<dyn Executor>> = vec![
            Box::new(CpuExecutor::default()),
            Box::new(SimGpuExecutor::default()),
        ];
        assert_eq!(backends[0].backend_name(), "cpu");
        assert_eq!(backends[1].backend_name(), "sim-gpu");
    }

    #[test]
    fn delay_executor_holds_the_call_and_attributes_the_delay() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, 5);
        let plain = CpuExecutor::default().infer(&net, &input).unwrap();
        let delay = Duration::from_millis(20);
        let delayed = DelayExecutor::new(CpuExecutor::default(), delay);
        let start = Instant::now();
        let out = delayed.infer(&net, &input).unwrap();
        assert!(start.elapsed() >= delay, "the worker must be occupied");
        assert_eq!(out.output, plain.output, "delay must not change math");
        assert!(out.device_latency >= delay);
        assert_eq!(delayed.backend_name(), "delayed");
    }
}
