//! Compute backends for the service.
//!
//! Both executors produce *real* predictions with real math on the
//! `tensor` substrate. They differ in the latency they report:
//! [`CpuExecutor`] reports measured wall-clock time (it *is* the CPU
//! baseline), while [`SimGpuExecutor`] reports the latency the paper's
//! K40 would exhibit for the same forward pass, taken from the calibrated
//! `perf` model — the GPU-hardware substitution of DESIGN.md §2.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dnn::profile::WorkloadProfile;
use dnn::Network;
use perf::GpuSpec;
use tensor::{Tensor, Threading};

use crate::Result;

/// The result of one inference call.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// The network output (softmax scores or logits, batched like the
    /// input).
    pub output: Tensor,
    /// The device latency attributed to the forward pass: measured for the
    /// CPU backend, modeled for the simulated-GPU backend.
    pub device_latency: Duration,
}

/// A compute backend executing forward passes.
///
/// Implementations must be thread-safe: DjiNN worker threads call
/// [`Executor::infer`] concurrently against shared read-only models.
pub trait Executor: Send + Sync {
    /// Runs the forward pass of `network` on `input`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and layer failures.
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome>;

    /// Short backend name for logs and stats.
    fn backend_name(&self) -> &'static str;
}

/// Executes on the host CPU (the paper's Caffe+ATLAS baseline).
///
/// Defaults to sequential execution; [`CpuExecutor::new`] takes a
/// [`Threading`] budget that each inference spends either by sharding
/// the batch across threads or by threading inside each layer's GEMM,
/// whichever suits the model (see [`CpuExecutor::infer`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuExecutor {
    threading: Threading,
}

impl CpuExecutor {
    /// A CPU executor spending `threading` worker threads per inference.
    pub fn new(threading: Threading) -> Self {
        CpuExecutor { threading }
    }

    /// The configured per-inference thread budget.
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// Whether batch sharding beats intra-layer threading for this call.
    ///
    /// Sharding wins when the batch is wide relative to the thread count
    /// (each worker gets a meaningful sub-batch) and the model's biggest
    /// GEMM is skinny — the SENNA profile, where per-item matrices are
    /// too small to split internally. Fat-GEMM models (AlexNet, Kaldi)
    /// keep the budget inside the layer where the packed GEMM splits row
    /// strips.
    fn prefer_sharding(network: &Network, batch: usize, threads: usize) -> bool {
        if batch < 2 * threads {
            return false;
        }
        match WorkloadProfile::of(network.def(), batch) {
            // Treat anything smaller than one packed L2 block per thread
            // as skinny: a 256x256-ish GEMM saturates one core's blocking
            // but leaves nothing to split.
            Ok(p) => match p.largest_gemm() {
                Some((m, n, k)) => m * n * k < threads * 256 * 256 * 256,
                None => true,
            },
            Err(_) => false,
        }
    }
}

impl Executor for CpuExecutor {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        let start = Instant::now();
        let threading = self.threading;
        let output = if !threading.is_parallel() {
            network.forward(input)?
        } else if Self::prefer_sharding(network, input.shape().batch(), threading.threads) {
            network.forward_sharded(input, threading)?
        } else {
            network.forward_with(input, threading)?
        };
        Ok(InferenceOutcome {
            output,
            device_latency: start.elapsed(),
        })
    }

    fn backend_name(&self) -> &'static str {
        "cpu"
    }
}

/// Executes the same real math as [`CpuExecutor`] but attributes the
/// latency a K40 running the equivalent cuDNN kernels would take.
#[derive(Debug, Clone)]
pub struct SimGpuExecutor {
    gpu: GpuSpec,
}

impl SimGpuExecutor {
    /// Creates a simulated-GPU executor for the given device.
    pub fn new(gpu: GpuSpec) -> Self {
        SimGpuExecutor { gpu }
    }

    /// The simulated device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Models the forward latency for `network` at `batch` input items
    /// without executing any math (used by benchmarks that only need
    /// timing).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures.
    pub fn modeled_latency(&self, network: &Network, batch: usize) -> Result<Duration> {
        let profile = WorkloadProfile::of(network.def(), batch)?;
        let timing = perf::gpu_forward(&self.gpu, &profile);
        Ok(Duration::from_secs_f64(timing.seconds))
    }
}

impl Default for SimGpuExecutor {
    fn default() -> Self {
        SimGpuExecutor::new(GpuSpec::k40())
    }
}

impl Executor for SimGpuExecutor {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        let output = network.forward(input)?;
        let device_latency = self.modeled_latency(network, input.shape().batch())?;
        Ok(InferenceOutcome {
            output,
            device_latency,
        })
    }

    fn backend_name(&self) -> &'static str {
        "sim-gpu"
    }
}

/// Wraps another executor and *occupies the worker* for a fixed extra
/// duration on every call, modeling a device-bound backend: a replica
/// whose service time is dominated by an accelerator (or a remote
/// device) the host merely feeds.
///
/// Scale-out experiments need this on machines with fewer cores than
/// replicas: with a purely CPU-bound backend, N colocated replicas
/// contend for the same cycles and adding replicas cannot raise
/// aggregate throughput, which says something about the host, not about
/// the serving tier under test. A sleep-bound service time makes each
/// replica's capacity `workers / delay` regardless of colocated
/// neighbors, so router experiments measure tier behavior (balancing,
/// queueing, shedding) rather than host contention. The sleep is added
/// to the reported device latency, keeping traces consistent with the
/// modeled device.
#[derive(Debug, Clone)]
pub struct DelayExecutor<E> {
    inner: E,
    delay: Duration,
}

impl<E> DelayExecutor<E> {
    /// Wraps `inner`, holding each call for an extra `delay`.
    pub fn new(inner: E, delay: Duration) -> Self {
        DelayExecutor { inner, delay }
    }

    /// The configured per-call delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

impl<E: Executor> Executor for DelayExecutor<E> {
    fn infer(&self, network: &Arc<Network>, input: &Tensor) -> Result<InferenceOutcome> {
        std::thread::sleep(self.delay);
        let mut outcome = self.inner.infer(network, input)?;
        outcome.device_latency += self.delay;
        Ok(outcome)
    }

    fn backend_name(&self) -> &'static str {
        "delayed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::zoo::App;
    use tensor::Shape;

    fn mnist() -> Arc<Network> {
        Arc::new(dnn::zoo::network(App::Dig).unwrap())
    }

    #[test]
    fn both_backends_agree_on_outputs() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(2, 1, 28, 28), 1.0, 3);
        let cpu = CpuExecutor::default().infer(&net, &input).unwrap();
        let gpu = SimGpuExecutor::default().infer(&net, &input).unwrap();
        assert_eq!(cpu.output, gpu.output);
    }

    #[test]
    fn sim_gpu_latency_is_modeled_not_measured() {
        let net = mnist();
        let d1 = SimGpuExecutor::default().modeled_latency(&net, 1).unwrap();
        let d2 = SimGpuExecutor::default().modeled_latency(&net, 1).unwrap();
        assert_eq!(d1, d2, "modeled latency must be deterministic");
        assert!(d1 > Duration::ZERO);
    }

    #[test]
    fn modeled_latency_grows_sublinearly_with_batch() {
        // The whole point of batching: 16x the work costs far less than
        // 16x the time.
        let net = mnist();
        let exec = SimGpuExecutor::default();
        let b1 = exec.modeled_latency(&net, 100).unwrap();
        let b16 = exec.modeled_latency(&net, 1600).unwrap();
        assert!(b16 < b1 * 16);
        assert!(b16 > b1);
    }

    #[test]
    fn cpu_latency_is_positive() {
        let net = mnist();
        let input = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        let out = CpuExecutor::default().infer(&net, &input).unwrap();
        assert!(out.device_latency > Duration::ZERO);
        assert_eq!(out.output.shape().dims(), &[1, 10]);
    }

    #[test]
    fn threaded_cpu_executor_matches_serial() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(4, 1, 28, 28), 1.0, 8);
        let serial = CpuExecutor::default().infer(&net, &input).unwrap();
        for threads in [2usize, 4] {
            let par = CpuExecutor::new(Threading::new(threads))
                .infer(&net, &input)
                .unwrap();
            assert!(
                par.output.max_abs_diff(&serial.output).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sharding_heuristic_picks_by_gemm_shape() {
        // SENNA (skinny per-item GEMMs, wide batch) shards; Kaldi at the
        // same batch has 2048x3500-class GEMMs worth splitting in-layer.
        let pos = dnn::zoo::network(App::Pos).unwrap();
        assert!(CpuExecutor::prefer_sharding(&pos, 64, 4));
        let asr = dnn::zoo::network(App::Asr).unwrap();
        assert!(!CpuExecutor::prefer_sharding(&asr, 64, 4));
        // Narrow batches never shard: workers would idle.
        assert!(!CpuExecutor::prefer_sharding(&pos, 4, 4));
    }

    #[test]
    fn executors_are_object_safe() {
        let backends: Vec<Box<dyn Executor>> = vec![
            Box::new(CpuExecutor::default()),
            Box::new(SimGpuExecutor::default()),
        ];
        assert_eq!(backends[0].backend_name(), "cpu");
        assert_eq!(backends[1].backend_name(), "sim-gpu");
    }

    #[test]
    fn delay_executor_holds_the_call_and_attributes_the_delay() {
        let net = mnist();
        let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, 5);
        let plain = CpuExecutor::default().infer(&net, &input).unwrap();
        let delay = Duration::from_millis(20);
        let delayed = DelayExecutor::new(CpuExecutor::default(), delay);
        let start = Instant::now();
        let out = delayed.infer(&net, &input).unwrap();
        assert!(start.elapsed() >= delay, "the worker must be occupied");
        assert_eq!(out.output, plain.output, "delay must not change math");
        assert!(out.device_latency >= delay);
        assert_eq!(delayed.backend_name(), "delayed");
    }
}
