//! The per-model inference engine: the *only* path from a request to
//! compute.
//!
//! Every registered model gets one [`InferenceEngine`] owning a bounded
//! admission queue, one or more dispatch workers, and the shared
//! executor. Both serving modes of the paper are dispatch policies of the
//! same engine — [`DispatchPolicy::Immediate`] executes each admitted job
//! on its own, [`DispatchPolicy::Batched`] runs the §5.1 coalescing loop
//! (stack co-batched queries, one forward pass, scatter the output rows)
//! — so batched and unbatched requests share admission, telemetry, error
//! handling, and shutdown semantics.
//!
//! Admission is **non-blocking with explicit backpressure**: when the
//! queue holds `queue_capacity` jobs, [`InferenceEngine::submit`] returns
//! [`DjinnError::Busy`] immediately instead of blocking the caller. A
//! connection worker therefore only ever waits on its *own admitted*
//! job's reply, which is guaranteed to arrive: dispatch workers answer
//! every job they pop, and shutdown drains the queue before joining.
//!
//! Telemetry: queue depth, in-flight jobs, shed count, and log-bucketed
//! queue-wait / service-time histograms (from [`gpusim::queueing`], the
//! same abstraction the open-loop simulator runs in virtual time).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use dnn::cache::InferenceCache;
use dnn::Network;
use gpusim::queueing::{BoundedQueue, LatencyHistogram};
use tensor::Tensor;

use crate::device::{ColocationPolicy, DeviceScheduler};
use crate::protocol::StreamMode;
use crate::trace::EngineSpans;
use crate::{DjinnError, Executor, Result};

/// Batching policy (§5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum queries folded into one forward pass (Table 3's last
    /// column gives the per-app sweet spots).
    pub max_batch: usize,
    /// Longest a query may wait for co-batched company before the batch
    /// is dispatched anyway.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// How admitted jobs reach the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Each job runs alone, as soon as a worker is free. A pool of
    /// [`EngineConfig::workers`] dispatch workers preserves concurrent
    /// execution for independent requests.
    Immediate,
    /// Jobs are coalesced into one forward pass up to `max_batch` stacked
    /// queries or `max_delay` of waiting, whichever comes first. One
    /// worker runs the coalescing loop so batch assembly is predictable.
    Batched(BatchConfig),
}

/// Configuration of one model's engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Admission bound: jobs beyond this many queued are shed with
    /// [`DjinnError::Busy`]. Bounds both memory and worst-case queueing
    /// delay under overload.
    pub queue_capacity: usize,
    /// Dispatch workers for [`DispatchPolicy::Immediate`] (ignored by
    /// `Batched`, which always runs exactly one coalescing worker).
    pub workers: usize,
    /// Batch-more vs. co-locate-more choice for the batched coalescing
    /// loop on a shared device. [`ColocationPolicy::AlwaysBatch`] (the
    /// default) reproduces the pre-scheduler behavior of always waiting
    /// out [`BatchConfig::max_delay`].
    pub colocation: ColocationPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: DispatchPolicy::Immediate,
            queue_capacity: 128,
            workers: 4,
            colocation: ColocationPolicy::AlwaysBatch,
        }
    }
}

/// Point-in-time queue telemetry for one model's engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Model name.
    pub model: String,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Jobs currently executing on the backend.
    pub in_flight: usize,
    /// Jobs shed at admission because the queue was full.
    pub shed: u64,
    /// Jobs completed (successfully or with an inference error).
    pub completed: u64,
    /// Median time a job spent queued before dispatch, microseconds.
    pub p50_queue_wait_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub p99_queue_wait_us: u64,
    /// Median batch coalescing wait (dequeue → executor start),
    /// microseconds. Near zero under [`DispatchPolicy::Immediate`].
    pub p50_batch_wait_us: u64,
    /// 99th-percentile batch coalescing wait, microseconds.
    pub p99_batch_wait_us: u64,
    /// Median time a dispatch blocked acquiring its device lease,
    /// microseconds. Zero on a dedicated (unshared) device.
    pub p50_lease_wait_us: u64,
    /// 99th-percentile lease wait, microseconds.
    pub p99_lease_wait_us: u64,
    /// Median device/service time per dispatch, microseconds.
    pub p50_service_us: u64,
    /// 99th-percentile device/service time per dispatch, microseconds.
    pub p99_service_us: u64,
    /// Requests (exact) or rows (embed) answered by the inference
    /// cache. 0 with caching off.
    pub cache_hits: u64,
    /// Cache lookups that fell through to compute. 0 with caching off.
    pub cache_misses: u64,
    /// Cache entries evicted under the byte budget. 0 with caching off.
    pub cache_evictions: u64,
    /// Chunks emitted by streaming jobs (one per partial response). 0
    /// with no streaming traffic.
    pub tokens_out: u64,
    /// Median gap between consecutive chunk emissions of a stream (the
    /// first gap is admission → first chunk, i.e. time-to-first-token),
    /// microseconds.
    pub p50_token_gap_us: u64,
    /// 99th-percentile chunk emission gap, microseconds.
    pub p99_token_gap_us: u64,
}

/// A finished job: the output plus the engine's span measurements.
struct Completed {
    output: Tensor,
    spans: EngineSpans,
}

/// A completed routed job, delivered to whatever channel the submitter
/// registered with [`InferenceEngine::submit_routed`] — in the server,
/// a connection's reply pump, which may receive completions from many
/// models in any order.
#[derive(Debug)]
pub struct RoutedReply {
    /// The submitter's opaque token, echoed verbatim so the receiver can
    /// look up what the completion belongs to.
    pub token: u64,
    /// Position of this reply within its job's stream, starting at 0.
    /// Always 0 for one-shot ([`InferenceEngine::submit_routed`]) jobs.
    pub seq: u32,
    /// `true` on a job's final reply. One-shot jobs complete in exactly
    /// one reply, so theirs is always final; a streaming job emits
    /// `last: false` for every chunk but its terminal one. An `Err`
    /// reply is always terminal.
    pub last: bool,
    /// The job's outcome: output and engine spans, or its typed error.
    pub result: Result<(Tensor, EngineSpans)>,
}

/// Where a job's completion goes: back to a blocked [`Ticket`] holder,
/// or routed (with a token) to a shared completion channel.
enum ReplySlot {
    Ticket(Sender<Result<Completed>>),
    Routed { token: u64, tx: Sender<RoutedReply> },
}

impl ReplySlot {
    /// Delivers the result; a gone receiver is the receiver's problem,
    /// never the engine's.
    fn deliver(self, result: Result<Completed>) {
        match self {
            ReplySlot::Ticket(tx) => {
                let _ = tx.send(result);
            }
            ReplySlot::Routed { token, tx } => {
                let _ = tx.send(RoutedReply {
                    token,
                    seq: 0,
                    last: true,
                    result: result.map(|c| (c.output, c.spans)),
                });
            }
        }
    }
}

struct Job {
    input: Tensor,
    reply: ReplySlot,
    enqueued: Instant,
    /// Stamped when a dispatch worker takes the job off the queue — the
    /// queue-exit span mark.
    dequeued: Option<Instant>,
}

impl Job {
    fn queries(&self) -> usize {
        self.input.shape().batch()
    }
}

struct State {
    queue: BoundedQueue<Job>,
    /// `false` once shutdown starts: no new admissions, workers drain
    /// what is queued and exit.
    open: bool,
}

struct Inner {
    model: String,
    state: Mutex<State>,
    cv: Condvar,
    in_flight: AtomicUsize,
    completed: AtomicU64,
    queue_wait: Mutex<LatencyHistogram>,
    batch_wait: Mutex<LatencyHistogram>,
    lease_wait: Mutex<LatencyHistogram>,
    service: Mutex<LatencyHistogram>,
    /// Chunks emitted by streaming jobs.
    tokens_out: AtomicU64,
    /// Gap between consecutive chunk emissions of a stream; the first
    /// sample of each stream is admission → first chunk (TTFT).
    token_gap: Mutex<LatencyHistogram>,
    /// Streaming jobs currently running on their dedicated threads.
    /// Streams bypass the admission queue, so shutdown's drain waits on
    /// this counter instead of the queue.
    active_streams: AtomicUsize,
    /// The device this engine leases compute from. Engines started
    /// without an explicit scheduler get a dedicated (unbounded) one, so
    /// acquisition never blocks and grants never shrink.
    scheduler: Arc<DeviceScheduler>,
    colocation: ColocationPolicy,
    /// Content-keyed inference cache, when enabled. The exact layer is
    /// probed at admission (a hit never queues); the embed layer rides
    /// into the executor with every dispatch.
    cache: Option<Arc<InferenceCache>>,
}

impl Inner {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pending inference: the caller's handle to one admitted job.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Completed>>,
}

impl std::fmt::Debug for Completed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completed")
            .field("spans", &self.spans)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the job completes and returns its result. The reply
    /// is guaranteed: every admitted job is answered, including during
    /// shutdown drain.
    ///
    /// # Errors
    ///
    /// Returns the job's inference error, or [`DjinnError::Shutdown`] if
    /// the engine died without answering (worker panic).
    pub fn wait(self) -> Result<Tensor> {
        self.wait_traced().map(|(output, _)| output)
    }

    /// Like [`Ticket::wait`], but also returns the engine's span
    /// measurements (queue wait, batch wait, service) for the job.
    ///
    /// # Errors
    ///
    /// Same as [`Ticket::wait`].
    pub fn wait_traced(self) -> Result<(Tensor, EngineSpans)> {
        let done = self.rx.recv().map_err(|_| DjinnError::Shutdown)??;
        Ok((done.output, done.spans))
    }
}

/// A per-model execution engine: bounded admission queue + dispatch
/// workers + executor.
pub struct InferenceEngine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// Kept for streaming jobs, which run on their own threads rather
    /// than the queue workers (see
    /// [`InferenceEngine::submit_stream_routed`]).
    network: Arc<Network>,
    executor: Arc<dyn Executor>,
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("model", &self.inner.model)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl InferenceEngine {
    /// Spawns the engine for one model on a dedicated (engine-private)
    /// device: lease acquisition never blocks and grants never shrink,
    /// so behavior is identical to the pre-scheduler engine.
    pub fn start(
        model: impl Into<String>,
        network: Arc<Network>,
        executor: Arc<dyn Executor>,
        config: EngineConfig,
    ) -> Self {
        Self::start_shared(
            model,
            network,
            executor,
            config,
            Arc::new(DeviceScheduler::dedicated()),
        )
    }

    /// Spawns the engine for one model on a *shared* device: every
    /// dispatch acquires a bounded [`crate::ComputeLease`] from
    /// `scheduler` before touching the executor, and the executor runs
    /// under the granted thread budget. Pass the same scheduler to every
    /// engine placed on the device.
    pub fn start_shared(
        model: impl Into<String>,
        network: Arc<Network>,
        executor: Arc<dyn Executor>,
        config: EngineConfig,
        scheduler: Arc<DeviceScheduler>,
    ) -> Self {
        Self::start_cached(model, network, executor, config, scheduler, None)
    }

    /// [`InferenceEngine::start_shared`] with a content-keyed inference
    /// cache. The exact-match layer is probed at admission — a hit is
    /// answered before the job touches the queue, the device lease, or
    /// the executor — and the embedding layer is consulted row-by-row
    /// inside the executor's forward pass. `None` is byte-for-byte the
    /// uncached engine.
    pub fn start_cached(
        model: impl Into<String>,
        network: Arc<Network>,
        executor: Arc<dyn Executor>,
        config: EngineConfig,
        scheduler: Arc<DeviceScheduler>,
        cache: Option<Arc<InferenceCache>>,
    ) -> Self {
        let model = model.into();
        scheduler.register_sharer();
        let inner = Arc::new(Inner {
            model: model.clone(),
            state: Mutex::new(State {
                queue: BoundedQueue::new(config.queue_capacity.max(1)),
                open: true,
            }),
            cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            queue_wait: Mutex::new(LatencyHistogram::new()),
            batch_wait: Mutex::new(LatencyHistogram::new()),
            lease_wait: Mutex::new(LatencyHistogram::new()),
            service: Mutex::new(LatencyHistogram::new()),
            tokens_out: AtomicU64::new(0),
            token_gap: Mutex::new(LatencyHistogram::new()),
            active_streams: AtomicUsize::new(0),
            scheduler,
            colocation: config.colocation,
            cache,
        });
        let worker_count = match config.policy {
            DispatchPolicy::Immediate => config.workers.max(1),
            DispatchPolicy::Batched(_) => 1,
        };
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let network = Arc::clone(&network);
                let executor = Arc::clone(&executor);
                let policy = config.policy;
                std::thread::Builder::new()
                    .name(format!("djinn-engine-{model}-{i}"))
                    .spawn(move || match policy {
                        DispatchPolicy::Immediate => immediate_loop(&inner, &network, &*executor),
                        DispatchPolicy::Batched(bc) => {
                            batched_loop(&inner, &network, &*executor, bc)
                        }
                    })
                    .expect("spawning engine worker")
            })
            .collect();
        InferenceEngine {
            inner,
            workers,
            network,
            executor,
        }
    }

    /// The model this engine serves.
    pub fn model(&self) -> &str {
        &self.inner.model
    }

    /// Admits one job without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Busy`] when the admission queue is full
    /// (the request is shed — the caller should back off and retry) and
    /// [`DjinnError::Shutdown`] after shutdown has begun.
    pub fn submit(&self, input: Tensor) -> Result<Ticket> {
        let (tx, rx) = bounded(1);
        self.enqueue(input, ReplySlot::Ticket(tx))?;
        Ok(Ticket { rx })
    }

    /// Admits one job without blocking, routing its completion to `tx`
    /// instead of a per-job [`Ticket`]. The engine echoes `token` on the
    /// [`RoutedReply`] so the receiver can correlate completions — this
    /// is the handoff the server's per-connection reply pump uses to
    /// answer pipelined requests out of order without a worker blocked
    /// per request.
    ///
    /// The reply guarantee is identical to [`InferenceEngine::submit`]:
    /// every admitted job produces exactly one [`RoutedReply`], including
    /// during shutdown drain.
    ///
    /// # Errors
    ///
    /// Same admission failures as [`InferenceEngine::submit`]: a full
    /// queue returns [`DjinnError::Busy`], a closed engine
    /// [`DjinnError::Shutdown`] — in both cases nothing was admitted and
    /// no reply will arrive for `token`.
    pub fn submit_routed(&self, input: Tensor, token: u64, tx: Sender<RoutedReply>) -> Result<()> {
        self.enqueue(input, ReplySlot::Routed { token, tx })
    }

    /// Admits one *streaming* job: instead of a single completion, the
    /// engine sends N ordered [`RoutedReply`] chunks (seq 0, 1, …; the
    /// terminal one flagged `last`) to `tx`, all echoing `token`.
    ///
    /// Streams run on a dedicated thread, never co-batched with one-shot
    /// jobs: each chunk's forward pass acquires its own device lease, so
    /// long streams interleave fairly with regular traffic instead of
    /// monopolizing a batch slot. [`StreamMode::Windowed`] feeds the
    /// input's rows through the model `window_rows` at a time and emits
    /// every window's scores as one chunk; [`StreamMode::Generative`]
    /// runs an autoregressive decode loop — the output distribution's
    /// argmax is fed back as a one-hot next input — emitting one chunk
    /// per generated token. Streams bypass the inference cache in both
    /// directions (partial outputs are not cacheable one-shot answers).
    ///
    /// If the engine shuts down mid-stream the decode stops and the
    /// terminal reply is `Err(DjinnError::Shutdown)`; a failed forward
    /// pass likewise ends the stream with its typed error. An `Err`
    /// reply is always the stream's last.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Shutdown`] after shutdown has begun and
    /// [`DjinnError::Protocol`] for an invalid mode (zero window/token
    /// budget, or a generative request whose input is not a single row)
    /// — in both cases nothing was admitted and no reply will arrive for
    /// `token`.
    pub fn submit_stream_routed(
        &self,
        input: Tensor,
        token: u64,
        mode: StreamMode,
        tx: Sender<RoutedReply>,
    ) -> Result<()> {
        match mode {
            StreamMode::Windowed { window_rows: 0 } => {
                return Err(DjinnError::Protocol {
                    reason: "streaming window must be at least one row".into(),
                });
            }
            StreamMode::Generative { max_tokens: 0 } => {
                return Err(DjinnError::Protocol {
                    reason: "generative stream must request at least one token".into(),
                });
            }
            StreamMode::Generative { .. } if input.shape().batch() != 1 => {
                return Err(DjinnError::Protocol {
                    reason: format!(
                        "generative stream takes a single seed row, got batch {}",
                        input.shape().batch()
                    ),
                });
            }
            _ => {}
        }
        {
            let st = self.inner.lock();
            if !st.open {
                return Err(DjinnError::Shutdown);
            }
            // Registered under the state lock so a concurrent shutdown
            // either sees the stream and waits for it, or closed first
            // and this admission was refused.
            self.inner.active_streams.fetch_add(1, Ordering::SeqCst);
        }
        let inner = Arc::clone(&self.inner);
        let network = Arc::clone(&self.network);
        let executor = Arc::clone(&self.executor);
        let spawned = std::thread::Builder::new()
            .name(format!("djinn-stream-{}", self.inner.model))
            .spawn(move || {
                stream_loop(&inner, &network, &*executor, input, mode, token, &tx);
                inner.active_streams.fetch_sub(1, Ordering::SeqCst);
            });
        if let Err(e) = spawned {
            self.inner.active_streams.fetch_sub(1, Ordering::SeqCst);
            return Err(DjinnError::Io(e));
        }
        Ok(())
    }

    fn enqueue(&self, input: Tensor, reply: ReplySlot) -> Result<()> {
        // Probe the exact-match cache before admission: a hit skips the
        // queue, the device lease, and the forward pass entirely, and is
        // stamped with the `cache` disposition (all spans ~0). A miss
        // falls through to the normal bounded-queue path and is inserted
        // by the dispatch worker that computes it.
        if let Some(exact) = self.inner.cache.as_deref().and_then(InferenceCache::exact) {
            if let Some(output) = exact.get(&input) {
                self.inner.completed.fetch_add(1, Ordering::Relaxed);
                reply.deliver(Ok(Completed {
                    output,
                    spans: EngineSpans {
                        cache_hit: true,
                        ..EngineSpans::default()
                    },
                }));
                return Ok(());
            }
        }
        let job = Job {
            input,
            reply,
            enqueued: Instant::now(),
            dequeued: None,
        };
        let mut st = self.inner.lock();
        if !st.open {
            return Err(DjinnError::Shutdown);
        }
        match st.queue.offer(job) {
            Ok(_depth) => {
                drop(st);
                self.inner.cv.notify_one();
                Ok(())
            }
            Err(_job) => Err(DjinnError::Busy {
                model: self.inner.model.clone(),
                queue_depth: st.queue.len(),
            }),
        }
    }

    /// Admits one job and waits for its result: non-blocking admission,
    /// then a blocking wait on the guaranteed reply.
    ///
    /// # Errors
    ///
    /// Same admission failures as [`InferenceEngine::submit`], plus the
    /// job's own inference error.
    pub fn infer(&self, input: Tensor) -> Result<Tensor> {
        self.submit(input)?.wait()
    }

    /// Like [`InferenceEngine::infer`], but also returns the engine's
    /// span measurements for the job.
    ///
    /// # Errors
    ///
    /// Same as [`InferenceEngine::infer`].
    pub fn infer_traced(&self, input: Tensor) -> Result<(Tensor, EngineSpans)> {
        self.submit(input)?.wait_traced()
    }

    /// Current queue telemetry.
    pub fn stats(&self) -> EngineStats {
        let (queue_depth, shed) = {
            let st = self.inner.lock();
            (st.queue.len(), st.queue.shed_count())
        };
        let (p50_queue_wait_us, p99_queue_wait_us) = {
            let h = self
                .inner
                .queue_wait
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.50), h.quantile(0.99))
        };
        let (p50_batch_wait_us, p99_batch_wait_us) = {
            let h = self
                .inner
                .batch_wait
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.50), h.quantile(0.99))
        };
        let (p50_lease_wait_us, p99_lease_wait_us) = {
            let h = self
                .inner
                .lease_wait
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.50), h.quantile(0.99))
        };
        let (p50_service_us, p99_service_us) = {
            let h = self.inner.service.lock().unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.50), h.quantile(0.99))
        };
        let (p50_token_gap_us, p99_token_gap_us) = {
            let h = self
                .inner
                .token_gap
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.50), h.quantile(0.99))
        };
        let cache = self
            .inner
            .cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default();
        EngineStats {
            model: self.inner.model.clone(),
            queue_depth,
            in_flight: self.inner.in_flight.load(Ordering::Relaxed),
            shed,
            completed: self.inner.completed.load(Ordering::Relaxed),
            p50_queue_wait_us,
            p99_queue_wait_us,
            p50_batch_wait_us,
            p99_batch_wait_us,
            p50_lease_wait_us,
            p99_lease_wait_us,
            p50_service_us,
            p99_service_us,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            tokens_out: self.inner.tokens_out.load(Ordering::Relaxed),
            p50_token_gap_us,
            p99_token_gap_us,
        }
    }

    /// Stops admissions, drains every queued job (each gets a real
    /// reply), and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.inner.lock();
            st.open = false;
        }
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Streams poll the open flag once per chunk and wind down with a
        // terminal reply, so this wait is bounded by one chunk's compute.
        while self.inner.active_streams.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.scheduler.unregister_sharer();
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        // Dropping drains and joins so no admitted job is left without a
        // reply and no worker outlives the engine.
        if !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// Pops one job, blocking until one is available or the engine is closed
/// *and* drained.
fn next_job(inner: &Inner) -> Option<Job> {
    let mut st = inner.lock();
    loop {
        if let Some(job) = st.queue.pop() {
            return Some(job);
        }
        if !st.open {
            return None;
        }
        st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Records each job's queue wait (admission → queue-exit). Falls back to
/// "now" for a job that was never stamped (cannot happen in the worker
/// loops, which stamp immediately after popping).
fn record_wait(inner: &Inner, jobs: &[Job]) {
    let mut h = inner.queue_wait.lock().unwrap_or_else(|e| e.into_inner());
    for job in jobs {
        let dequeued = job.dequeued.unwrap_or_else(Instant::now);
        h.record(dequeued.duration_since(job.enqueued).as_micros() as u64);
    }
}

/// Records each job's batch coalescing wait (queue-exit → executor
/// start).
fn record_batch_wait(inner: &Inner, dequeued: &[Instant], exec_start: Instant) {
    let mut h = inner.batch_wait.lock().unwrap_or_else(|e| e.into_inner());
    for &d in dequeued {
        h.record(exec_start.duration_since(d).as_micros() as u64);
    }
}

fn record_service(inner: &Inner, device_latency: Duration) {
    inner
        .service
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .record(device_latency.as_micros() as u64);
}

/// Records how long a dispatch blocked acquiring its device lease (once
/// per job in the dispatch, mirroring the other per-job spans).
fn record_lease_wait(inner: &Inner, waited: Duration, jobs: usize) {
    let mut h = inner.lease_wait.lock().unwrap_or_else(|e| e.into_inner());
    let us = waited.as_micros() as u64;
    for _ in 0..jobs.max(1) {
        h.record(us);
    }
}

/// Assembles one job's span measurements from its timeline marks. The
/// lease wait is carved out of the dequeue→exec interval so the batch
/// span keeps meaning "time spent coalescing", not "time blocked on the
/// device".
fn spans_for(
    enqueued: Instant,
    dequeued: Instant,
    lease_wait: Duration,
    exec_start: Instant,
    service: Duration,
) -> EngineSpans {
    let dequeue_to_exec = exec_start.duration_since(dequeued);
    EngineSpans {
        queue_us: dequeued.duration_since(enqueued).as_micros() as u64,
        batch_us: dequeue_to_exec.saturating_sub(lease_wait).as_micros() as u64,
        lease_us: lease_wait.min(dequeue_to_exec).as_micros() as u64,
        service_us: service.as_micros() as u64,
        cache_hit: false,
        first_token_us: 0,
        tokens: 0,
    }
}

/// Chunk-emission bookkeeping for one streaming job: sequence numbers,
/// the first-token stamp, and the per-model token telemetry.
struct StreamEmitter<'a> {
    inner: &'a Inner,
    token: u64,
    tx: &'a Sender<RoutedReply>,
    admitted: Instant,
    last_emit: Option<Instant>,
    first_token_us: u64,
    seq: u32,
}

impl StreamEmitter<'_> {
    fn emit(&mut self, tensor: Tensor, lease_us: u64, service_us: u64, last: bool) {
        let now = Instant::now();
        let gap = now
            .duration_since(self.last_emit.unwrap_or(self.admitted))
            .as_micros() as u64;
        if self.last_emit.is_none() {
            self.first_token_us = gap;
        }
        self.last_emit = Some(now);
        self.inner
            .token_gap
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(gap);
        self.inner.tokens_out.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(RoutedReply {
            token: self.token,
            seq: self.seq,
            last,
            result: Ok((
                tensor,
                EngineSpans {
                    queue_us: 0,
                    batch_us: 0,
                    lease_us,
                    service_us,
                    cache_hit: false,
                    first_token_us: self.first_token_us,
                    tokens: u64::from(self.seq) + 1,
                },
            )),
        });
        self.seq += 1;
    }
}

/// One forward pass of a stream under its own device lease. Returns the
/// output plus the (lease wait, service) span measurements in
/// microseconds.
fn stream_step(
    inner: &Inner,
    network: &Arc<Network>,
    executor: &dyn Executor,
    input: &Tensor,
) -> Result<(Tensor, u64, u64)> {
    let lease = inner
        .scheduler
        .acquire(executor.preferred_threads(input.shape().batch()));
    let lease_waited = lease.waited();
    record_lease_wait(inner, lease_waited, 1);
    let start = Instant::now();
    let outcome = executor.infer_budgeted_cached(network, input, lease.threading(), None)?;
    drop(lease);
    record_service(inner, outcome.device_latency);
    Ok((
        outcome.output,
        lease_waited.as_micros() as u64,
        start.elapsed().as_micros() as u64,
    ))
}

/// Whether the engine still accepts work; streams poll this once per
/// chunk so shutdown is never blocked behind a long decode.
fn stream_open(inner: &Inner) -> bool {
    inner.lock().open
}

/// Feeds the decoded distribution back as the next input: argmax over
/// the row, re-encoded one-hot. This is greedy decoding — deterministic,
/// which the correctness tests rely on.
fn one_hot_like(row: &Tensor) -> Tensor {
    let data = row.data();
    let mut best = 0usize;
    for (i, &v) in data.iter().enumerate() {
        if v > data[best] {
            best = i;
        }
    }
    let mut next = vec![0.0f32; data.len()];
    next[best] = 1.0;
    Tensor::from_vec(row.shape().clone(), next).expect("one-hot row matches the source shape")
}

/// Runs one streaming job to completion on its dedicated thread; any
/// failure becomes the stream's terminal `Err` reply.
fn stream_loop(
    inner: &Inner,
    network: &Arc<Network>,
    executor: &dyn Executor,
    input: Tensor,
    mode: StreamMode,
    token: u64,
    tx: &Sender<RoutedReply>,
) {
    let admitted = Instant::now();
    inner.in_flight.fetch_add(1, Ordering::Relaxed);
    let mut em = StreamEmitter {
        inner,
        token,
        tx,
        admitted,
        last_emit: None,
        first_token_us: 0,
        seq: 0,
    };
    if let Err(e) = run_stream(inner, network, executor, input, mode, &mut em) {
        let _ = tx.send(RoutedReply {
            token,
            seq: em.seq,
            last: true,
            result: Err(e),
        });
    }
    inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    inner.completed.fetch_add(1, Ordering::Relaxed);
}

fn run_stream(
    inner: &Inner,
    network: &Arc<Network>,
    executor: &dyn Executor,
    input: Tensor,
    mode: StreamMode,
    em: &mut StreamEmitter<'_>,
) -> Result<()> {
    match mode {
        StreamMode::Windowed { window_rows } => {
            // Partition the rows into windows of `window_rows` (the tail
            // window may be short); each window is one chunk.
            let w = window_rows as usize;
            let mut counts = Vec::new();
            let mut left = input.shape().batch();
            while left > 0 {
                let c = left.min(w);
                counts.push(c);
                left -= c;
            }
            let parts = input
                .split_batch(&counts)
                .map_err(dnn::DnnError::from)
                .map_err(DjinnError::from)?;
            let total = parts.len();
            for (i, part) in parts.into_iter().enumerate() {
                if !stream_open(inner) {
                    return Err(DjinnError::Shutdown);
                }
                let (out, lease_us, service_us) = stream_step(inner, network, executor, &part)?;
                em.emit(out, lease_us, service_us, i + 1 == total);
            }
        }
        StreamMode::Generative { max_tokens } => {
            let mut cur = input;
            for i in 0..max_tokens {
                if !stream_open(inner) {
                    return Err(DjinnError::Shutdown);
                }
                let (out, lease_us, service_us) = stream_step(inner, network, executor, &cur)?;
                if out.shape() != cur.shape() {
                    return Err(DjinnError::Protocol {
                        reason: format!(
                            "generative stream needs output shape == input shape to feed \
                             back, got {:?} from {:?}",
                            out.shape(),
                            cur.shape()
                        ),
                    });
                }
                cur = one_hot_like(&out);
                em.emit(out, lease_us, service_us, i + 1 == max_tokens);
            }
        }
    }
    Ok(())
}

fn immediate_loop(inner: &Inner, network: &Arc<Network>, executor: &dyn Executor) {
    while let Some(mut job) = next_job(inner) {
        let dequeued = Instant::now();
        job.dequeued = Some(dequeued);
        record_wait(inner, std::slice::from_ref(&job));
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        // Acquire the device slice before touching the executor; on a
        // dedicated scheduler this is an immediate full grant.
        // Immediate dispatch has no coalescing phase: the batch span
        // closes at the queue-exit mark (~0) and any time blocked here
        // is lease wait, not batching.
        record_batch_wait(inner, &[dequeued], dequeued);
        let lease = inner
            .scheduler
            .acquire(executor.preferred_threads(job.queries()));
        let lease_waited = lease.waited();
        record_lease_wait(inner, lease_waited, 1);
        let exec_start = Instant::now();
        let embed = inner.cache.as_deref().and_then(InferenceCache::embed);
        let outcome = executor.infer_budgeted_cached(network, &job.input, lease.threading(), embed);
        drop(lease);
        let service = exec_start.elapsed();
        let result = outcome.map(|outcome| {
            record_service(inner, outcome.device_latency);
            // This input missed at admission (hits never reach a
            // worker): memoize it so the next identical request hits.
            if let Some(exact) = inner.cache.as_deref().and_then(InferenceCache::exact) {
                exact.insert(&job.input, &outcome.output);
            }
            Completed {
                output: outcome.output,
                spans: spans_for(job.enqueued, dequeued, lease_waited, exec_start, service),
            }
        });
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        job.reply.deliver(result);
    }
}

fn batched_loop(
    inner: &Inner,
    network: &Arc<Network>,
    executor: &dyn Executor,
    config: BatchConfig,
) {
    loop {
        // Phase 1: block until at least one job is available, grabbing
        // everything already queued that fits under the cap (the head is
        // always taken; an overflowing job stays queued — carry-over).
        let mut jobs;
        let draining;
        {
            let mut st = inner.lock();
            loop {
                jobs = st.queue.assemble(config.max_batch, Job::queries);
                if !jobs.is_empty() {
                    draining = !st.open;
                    break;
                }
                if !st.open {
                    return;
                }
                st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let assembled = Instant::now();
        for job in &mut jobs {
            job.dequeued = Some(assembled);
        }
        // Phase 2: coalesce up to the cap until the policy's budget
        // expires. `AlwaysBatch` spends the full `max_delay` (the
        // classic §5.1 loop); `AlwaysColocate` dispatches the partial
        // batch at once; `Dynamic` weighs SLA headroom, batch fill, and
        // device availability. A draining engine skips the wait —
        // queued jobs are answered as fast as possible.
        let budget = if draining {
            Duration::ZERO
        } else {
            let queries: usize = jobs.iter().map(Job::queries).sum();
            let oldest_wait = jobs
                .iter()
                .map(|j| assembled.duration_since(j.enqueued))
                .max()
                .unwrap_or(Duration::ZERO);
            let queue_empty = inner.lock().queue.is_empty();
            inner.colocation.coalesce_budget(
                config.max_delay,
                oldest_wait,
                queries,
                config.max_batch,
                queue_empty,
                inner.scheduler.free_units() > 0,
            )
        };
        if !budget.is_zero() {
            let deadline = assembled + budget;
            let mut queries: usize = jobs.iter().map(Job::queries).sum();
            while queries < config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let mut st = inner.lock();
                if let Some(mut job) = st
                    .queue
                    .pop_if(|j| queries + j.queries() <= config.max_batch)
                {
                    job.dequeued = Some(Instant::now());
                    queries += job.queries();
                    jobs.push(job);
                    continue;
                }
                if !st.queue.is_empty() || !st.open {
                    // Head overflows the cap (it seeds the next batch) or
                    // shutdown started: close this batch now.
                    break;
                }
                let (guard, _timeout) = inner
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                drop(guard);
            }
        }
        dispatch(inner, network, executor, jobs);
    }
}

/// Runs one assembled batch: stack owned inputs (no per-job copy), one
/// forward pass, scatter rows back. Errors stay typed end-to-end; every
/// co-batched job receives a clone of the real error.
fn dispatch(inner: &Inner, network: &Arc<Network>, executor: &dyn Executor, jobs: Vec<Job>) {
    record_wait(inner, &jobs);
    let n = jobs.len();
    inner.in_flight.fetch_add(n, Ordering::Relaxed);
    let counts: Vec<usize> = jobs.iter().map(Job::queries).collect();
    // Timeline marks per job, kept aside so spans can be attached to each
    // reply after the shared forward pass.
    let marks: Vec<(Instant, Instant)> = jobs
        .iter()
        .map(|j| (j.enqueued, j.dequeued.unwrap_or(j.enqueued)))
        .collect();
    let (inputs, replies): (Vec<Tensor>, Vec<ReplySlot>) =
        jobs.into_iter().map(|j| (j.input, j.reply)).unzip();
    // Keep per-job input copies only when an exact cache wants them for
    // miss insertion — stacking consumes the originals. With caching off
    // this is free.
    let exact = inner.cache.as_deref().and_then(InferenceCache::exact);
    let kept_inputs: Option<Vec<Tensor>> = exact.map(|_| inputs.clone());
    // Input stacking counts toward the batch span: the lease is taken
    // after it (a batch waiting on compute is lease wait, not
    // coalescing) and executor-start is stamped after the grant, right
    // before the forward pass.
    let mut exec_start = Instant::now();
    let mut service = Duration::ZERO;
    let mut lease_waited = Duration::ZERO;
    let total_queries: usize = counts.iter().sum();
    let result = Tensor::stack_batch_owned(inputs)
        .map_err(dnn::DnnError::from)
        .map_err(DjinnError::from)
        .and_then(|stacked| {
            let lease = inner
                .scheduler
                .acquire(executor.preferred_threads(total_queries));
            lease_waited = lease.waited();
            exec_start = Instant::now();
            let embed = inner.cache.as_deref().and_then(InferenceCache::embed);
            let outcome =
                executor.infer_budgeted_cached(network, &stacked, lease.threading(), embed)?;
            drop(lease);
            service = exec_start.elapsed();
            record_service(inner, outcome.device_latency);
            if counts.len() == 1 {
                // Single-job batch: hand the output over without the
                // split_batch copy.
                return Ok(vec![outcome.output]);
            }
            outcome
                .output
                .split_batch(&counts)
                .map_err(dnn::DnnError::from)
                .map_err(DjinnError::from)
        });
    record_lease_wait(inner, lease_waited, n);
    let lease_mark = exec_start.checked_sub(lease_waited).unwrap_or(exec_start);
    let dequeue_marks: Vec<Instant> = marks.iter().map(|&(_, d)| d).collect();
    record_batch_wait(inner, &dequeue_marks, lease_mark);
    inner.in_flight.fetch_sub(n, Ordering::Relaxed);
    inner.completed.fetch_add(n as u64, Ordering::Relaxed);
    match result {
        Ok(parts) => {
            for (i, ((reply, part), (enqueued, dequeued))) in
                replies.into_iter().zip(parts).zip(marks).enumerate()
            {
                if let (Some(exact), Some(kept)) = (exact, kept_inputs.as_ref()) {
                    exact.insert(&kept[i], &part);
                }
                reply.deliver(Ok(Completed {
                    output: part,
                    spans: spans_for(enqueued, dequeued, lease_waited, exec_start, service),
                }));
            }
        }
        Err(e) => {
            for reply in replies {
                reply.deliver(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuExecutor;
    use dnn::zoo::App;
    use tensor::Shape;

    fn tiny_net() -> Arc<Network> {
        let def = dnn::parser::parse_netdef(
            "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n",
        )
        .unwrap();
        Arc::new(Network::with_random_weights(def, 1).unwrap())
    }

    fn engine(net: Arc<Network>, config: EngineConfig) -> InferenceEngine {
        InferenceEngine::start("tiny", net, Arc::new(CpuExecutor::default()), config)
    }

    fn batched(max_batch: usize, max_delay: Duration) -> EngineConfig {
        EngineConfig {
            policy: DispatchPolicy::Batched(BatchConfig {
                max_batch,
                max_delay,
            }),
            ..EngineConfig::default()
        }
    }

    /// An executor that runs the real forward pass while recording the
    /// largest batch it was ever handed.
    struct RecordingExecutor {
        inner: CpuExecutor,
        max_batch_seen: AtomicUsize,
    }

    impl RecordingExecutor {
        fn new() -> Self {
            RecordingExecutor {
                inner: CpuExecutor::default(),
                max_batch_seen: AtomicUsize::new(0),
            }
        }
    }

    impl Executor for RecordingExecutor {
        fn infer(
            &self,
            network: &Arc<Network>,
            input: &Tensor,
        ) -> crate::Result<crate::InferenceOutcome> {
            self.max_batch_seen
                .fetch_max(input.shape().batch(), Ordering::SeqCst);
            self.inner.infer(network, input)
        }

        fn backend_name(&self) -> &'static str {
            "recording"
        }
    }

    /// An executor that sleeps before delegating, to build up queues.
    struct SlowExecutor {
        inner: CpuExecutor,
        delay: Duration,
    }

    impl Executor for SlowExecutor {
        fn infer(
            &self,
            network: &Arc<Network>,
            input: &Tensor,
        ) -> crate::Result<crate::InferenceOutcome> {
            std::thread::sleep(self.delay);
            self.inner.infer(network, input)
        }

        fn backend_name(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn single_query_roundtrip_batched() {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let eng = InferenceEngine::start(
            "dig",
            Arc::clone(&net),
            Arc::new(CpuExecutor::default()),
            batched(4, Duration::from_millis(1)),
        );
        let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, 7);
        let got = eng.infer(input.clone()).unwrap();
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
        eng.shutdown();
    }

    #[test]
    fn concurrent_queries_get_their_own_rows() {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let eng = Arc::new(InferenceEngine::start(
            "dig",
            Arc::clone(&net),
            Arc::new(CpuExecutor::default()),
            batched(8, Duration::from_millis(20)),
        ));
        let mut handles = Vec::new();
        for seed in 0..6u64 {
            let e = Arc::clone(&eng);
            let n = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, seed);
                let got = e.infer(input.clone()).unwrap();
                let want = n.forward(&input).unwrap();
                assert!(got.max_abs_diff(&want).unwrap() < 1e-4, "seed {seed}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn failed_jobs_get_typed_errors_and_the_engine_survives() {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let eng = engine(Arc::clone(&net), batched(4, Duration::from_millis(1)));
        let wrong = Tensor::zeros(Shape::nchw(1, 1, 10, 10));
        // The error arrives as the real typed DNN failure, not a
        // pre-stringified remote message.
        assert!(matches!(eng.infer(wrong), Err(DjinnError::Dnn(_))));
        // The worker survives a failed batch.
        let ok = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        assert!(eng.infer(ok).is_ok());
    }

    #[test]
    fn no_batch_ever_exceeds_max_batch() {
        let net = tiny_net();
        let recorder = Arc::new(RecordingExecutor::new());
        let max_batch = 4;
        let eng = Arc::new(InferenceEngine::start(
            "tiny",
            net,
            Arc::clone(&recorder) as Arc<dyn Executor>,
            // A long delay forces maximal coalescing pressure: the only
            // way a batch closes early is hitting the cap.
            batched(max_batch, Duration::from_millis(50)),
        ));
        // 1–3-query jobs arriving concurrently: the carry-over logic is
        // what keeps every executed batch legal.
        let mut handles = Vec::new();
        for seed in 0..6u64 {
            let e = Arc::clone(&eng);
            handles.push(std::thread::spawn(move || {
                for i in 0..3 {
                    let queries = 1 + ((seed + i) % 3) as usize;
                    let input = Tensor::random_uniform(Shape::mat(queries, 8), 1.0, seed * 10 + i);
                    let out = e.infer(input).unwrap();
                    assert_eq!(out.shape().batch(), queries);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let seen = recorder.max_batch_seen.load(Ordering::SeqCst);
        assert!(seen > 0, "executor never ran");
        assert!(
            seen <= max_batch,
            "a batch of {seen} queries exceeded max_batch={max_batch}"
        );
    }

    #[test]
    fn job_wider_than_max_batch_still_runs_alone() {
        let eng = engine(tiny_net(), batched(2, Duration::from_millis(1)));
        let input = Tensor::random_uniform(Shape::mat(5, 8), 1.0, 3);
        let out = eng.infer(input).unwrap();
        assert_eq!(out.shape().batch(), 5);
    }

    #[test]
    fn overload_sheds_with_busy_and_never_blocks_admission() {
        // Tiny queue + slow executor: admission must shed, not block.
        let eng = Arc::new(InferenceEngine::start(
            "tiny",
            tiny_net(),
            Arc::new(SlowExecutor {
                inner: CpuExecutor::default(),
                delay: Duration::from_millis(40),
            }),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 2,
                workers: 1,
                ..EngineConfig::default()
            },
        ));
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 1);
        let mut tickets = Vec::new();
        let mut busy = 0usize;
        let admission_started = Instant::now();
        for _ in 0..10 {
            match eng.submit(input.clone()) {
                Ok(t) => tickets.push(t),
                Err(DjinnError::Busy { model, queue_depth }) => {
                    assert_eq!(model, "tiny");
                    assert_eq!(queue_depth, 2);
                    busy += 1;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        // 10 offers against bound 2 + 1 worker: admission returned
        // immediately for all of them (the executor alone would need
        // 400 ms for 10 jobs).
        assert!(
            admission_started.elapsed() < Duration::from_millis(100),
            "admission blocked: {:?}",
            admission_started.elapsed()
        );
        assert!(busy >= 6, "only {busy} sheds with queue bound 2");
        assert!(eng.stats().shed >= busy as u64);
        // Every admitted job still completes.
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn batched_and_immediate_policies_agree_across_the_zoo() {
        // The dispatch policy must be invisible in the outputs: same
        // queries → same predictions, for every Tonic model.
        for app in App::ALL {
            let net = Arc::new(dnn::zoo::network(app).unwrap());
            let shape = net.def().input_shape().with_batch(2);
            let input = Tensor::random_uniform(shape, 0.5, 11);
            let imm = InferenceEngine::start(
                app.name(),
                Arc::clone(&net),
                Arc::new(CpuExecutor::default()),
                EngineConfig {
                    policy: DispatchPolicy::Immediate,
                    workers: 1,
                    ..EngineConfig::default()
                },
            );
            let bat = InferenceEngine::start(
                app.name(),
                Arc::clone(&net),
                Arc::new(CpuExecutor::default()),
                batched(4, Duration::from_millis(1)),
            );
            let a = imm.infer(input.clone()).unwrap();
            let b = bat.infer(input).unwrap();
            assert_eq!(a, b, "{app}: policies disagree");
            imm.shutdown();
            bat.shutdown();
        }
    }

    #[test]
    fn shutdown_drains_queued_jobs_without_hanging() {
        let eng = InferenceEngine::start(
            "tiny",
            tiny_net(),
            Arc::new(SlowExecutor {
                inner: CpuExecutor::default(),
                delay: Duration::from_millis(20),
            }),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 16,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 5);
        let tickets: Vec<Ticket> = (0..5).map(|_| eng.submit(input.clone()).unwrap()).collect();
        let t0 = Instant::now();
        eng.shutdown();
        // Every queued job was executed and answered before shutdown
        // returned; nothing hangs.
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn shutdown_drains_batched_engines_too() {
        let eng = InferenceEngine::start(
            "tiny",
            tiny_net(),
            Arc::new(SlowExecutor {
                inner: CpuExecutor::default(),
                delay: Duration::from_millis(20),
            }),
            batched(4, Duration::from_secs(5)), // delay >> test budget
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 5);
        let tickets: Vec<Ticket> = (0..5).map(|_| eng.submit(input.clone()).unwrap()).collect();
        let t0 = Instant::now();
        // Draining skips the coalescing delay: 5 jobs at 20 ms each must
        // finish far sooner than one 5 s max_delay window.
        eng.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn routed_submit_answers_every_token_exactly_once() {
        let net = tiny_net();
        let eng = InferenceEngine::start(
            "tiny",
            Arc::clone(&net),
            Arc::new(CpuExecutor::default()),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 32,
                workers: 4,
                ..EngineConfig::default()
            },
        );
        let (tx, rx) = bounded(32);
        let mut want = std::collections::BTreeMap::new();
        for token in 0..8u64 {
            let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, token);
            want.insert(token, net.forward(&input).unwrap());
            eng.submit_routed(input, token, tx.clone()).unwrap();
        }
        // With 4 workers completions may arrive in any order; each token
        // must show up exactly once with its own output.
        let mut seen = std::collections::BTreeMap::new();
        for _ in 0..8 {
            let RoutedReply {
                token,
                seq,
                last,
                result,
            } = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("routed reply");
            assert_eq!(seq, 0, "one-shot jobs complete in a single reply");
            assert!(last, "a one-shot job's only reply is final");
            let (output, _spans) = result.unwrap();
            assert!(
                seen.insert(token, output).is_none(),
                "token {token} answered twice"
            );
        }
        for (token, output) in &seen {
            assert!(
                output.max_abs_diff(&want[token]).unwrap() < 1e-5,
                "token {token} got another request's output"
            );
        }
    }

    #[test]
    fn shutdown_drains_routed_jobs_too() {
        let eng = InferenceEngine::start(
            "tiny",
            tiny_net(),
            Arc::new(SlowExecutor {
                inner: CpuExecutor::default(),
                delay: Duration::from_millis(20),
            }),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 16,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let (tx, rx) = bounded(16);
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 5);
        for token in 0..5u64 {
            eng.submit_routed(input.clone(), token, tx.clone()).unwrap();
        }
        eng.shutdown();
        drop(tx);
        let mut answered = 0;
        while let Ok(reply) = rx.recv() {
            assert!(reply.result.is_ok());
            answered += 1;
        }
        assert_eq!(answered, 5, "shutdown drain must answer every routed job");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let mut eng = engine(tiny_net(), EngineConfig::default());
        eng.stop();
        let input = Tensor::zeros(Shape::mat(1, 8));
        assert!(matches!(eng.submit(input), Err(DjinnError::Shutdown)));
    }

    #[test]
    fn stats_reflect_traffic() {
        let eng = engine(
            tiny_net(),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 8,
                workers: 2,
                ..EngineConfig::default()
            },
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 2);
        for _ in 0..4 {
            eng.infer(input.clone()).unwrap();
        }
        let stats = eng.stats();
        assert_eq!(stats.model, "tiny");
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.shed, 0);
        assert!(stats.p99_queue_wait_us >= stats.p50_queue_wait_us);
        assert!(stats.p99_batch_wait_us >= stats.p50_batch_wait_us);
        assert!(stats.p99_service_us >= stats.p50_service_us);
    }

    #[test]
    fn traced_wait_returns_engine_spans() {
        let eng = engine(
            tiny_net(),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 8,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 3);
        let (out, spans) = eng.infer_traced(input).unwrap();
        assert_eq!(out.shape().batch(), 1);
        // Immediate dispatch: the coalescing span is (near) zero while
        // the sum of spans stays bounded by the call's wall time.
        assert!(spans.batch_us < 50_000, "immediate batch span {spans:?}");
    }

    #[test]
    fn lone_batched_job_waits_out_the_coalescing_delay() {
        let max_delay = Duration::from_millis(5);
        let eng = engine(tiny_net(), batched(4, max_delay));
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 4);
        let (_, spans) = eng.infer_traced(input).unwrap();
        // A single job with no co-batched company holds the batch open
        // until max_delay expires — that wait must be attributed to the
        // batch span, not queue or service.
        assert!(
            spans.batch_us >= (max_delay.as_micros() as u64) / 2,
            "batch span {} us does not reflect the {:?} coalescing wait",
            spans.batch_us,
            max_delay
        );
    }

    #[test]
    fn always_colocate_skips_the_coalescing_delay() {
        let max_delay = Duration::from_millis(200); // >> test budget
        let eng = InferenceEngine::start(
            "tiny",
            tiny_net(),
            Arc::new(CpuExecutor::default()),
            EngineConfig {
                colocation: crate::ColocationPolicy::AlwaysColocate,
                ..batched(4, max_delay)
            },
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 4);
        let t0 = Instant::now();
        let (_, spans) = eng.infer_traced(input).unwrap();
        assert!(
            t0.elapsed() < max_delay / 2,
            "co-locate policy must dispatch partial batches immediately"
        );
        assert!(
            spans.batch_us < (max_delay.as_micros() as u64) / 2,
            "no coalescing wait should be attributed: {spans:?}"
        );
    }

    #[test]
    fn dynamic_policy_dispatches_lone_jobs_on_an_idle_device() {
        // Queue empty + device free: batching amortizes nothing, so the
        // dynamic policy must not hold a lone job for the full window.
        let max_delay = Duration::from_millis(200);
        let eng = InferenceEngine::start_shared(
            "tiny",
            tiny_net(),
            Arc::new(CpuExecutor::default()),
            EngineConfig {
                colocation: crate::ColocationPolicy::Dynamic {
                    sla: Duration::from_secs(1),
                },
                ..batched(4, max_delay)
            },
            Arc::new(crate::DeviceScheduler::new(crate::Device::Cpu {
                threads: 2,
            })),
        );
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 4);
        let t0 = Instant::now();
        eng.infer(input).unwrap();
        assert!(
            t0.elapsed() < max_delay / 2,
            "dynamic policy held an idle-device lone job for {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn engines_sharing_a_device_stay_correct_under_partial_leases() {
        // Two engines on a 2-thread shared device, executors configured
        // for 4 threads: every grant is a partial slice (fair share 1),
        // and outputs must stay bitwise-identical to direct forward.
        let net = tiny_net();
        let sched = Arc::new(crate::DeviceScheduler::new(crate::Device::Cpu {
            threads: 2,
        }));
        let mk = |name: &str| {
            InferenceEngine::start_shared(
                name,
                Arc::clone(&net),
                Arc::new(CpuExecutor::new(tensor::Threading::new(4))),
                EngineConfig {
                    policy: DispatchPolicy::Immediate,
                    queue_capacity: 64,
                    workers: 2,
                    colocation: crate::ColocationPolicy::AlwaysColocate,
                },
                Arc::clone(&sched),
            )
        };
        let a = Arc::new(mk("a"));
        let b = Arc::new(mk("b"));
        assert_eq!(sched.sharers(), 2);
        let mut handles = Vec::new();
        for (idx, eng) in [&a, &b].into_iter().enumerate() {
            let eng = Arc::clone(eng);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for seed in 0..8u64 {
                    let input =
                        Tensor::random_uniform(Shape::mat(6, 8), 1.0, seed * 2 + idx as u64);
                    let got = eng.infer(input.clone()).unwrap();
                    let want = net.forward(&input).unwrap();
                    assert_eq!(got, want, "partial lease changed the math");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All leases returned: the device is whole again.
        assert_eq!(sched.free_units(), 2);
        drop(a);
        drop(b);
        assert_eq!(sched.sharers(), 0, "shutdown must unregister sharers");
    }

    #[test]
    fn lease_contention_is_visible_in_stats() {
        // One-thread device, two busy engines with slow executors: some
        // dispatch must block on the lease and the p99 must show it.
        let sched = Arc::new(crate::DeviceScheduler::new(crate::Device::Cpu {
            threads: 1,
        }));
        let mk = |name: &str| {
            InferenceEngine::start_shared(
                name,
                tiny_net(),
                Arc::new(SlowExecutor {
                    inner: CpuExecutor::default(),
                    delay: Duration::from_millis(15),
                }),
                EngineConfig {
                    policy: DispatchPolicy::Immediate,
                    queue_capacity: 32,
                    workers: 1,
                    colocation: crate::ColocationPolicy::AlwaysColocate,
                },
                Arc::clone(&sched),
            )
        };
        let a = mk("a");
        let b = mk("b");
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 9);
        let ta: Vec<Ticket> = (0..4).map(|_| a.submit(input.clone()).unwrap()).collect();
        let tb: Vec<Ticket> = (0..4).map(|_| b.submit(input.clone()).unwrap()).collect();
        for t in ta.into_iter().chain(tb) {
            t.wait().unwrap();
        }
        let waited = a.stats().p99_lease_wait_us + b.stats().p99_lease_wait_us;
        assert!(
            waited > 1_000,
            "8 jobs serialized over a 1-thread device must show lease wait, got {waited} us"
        );
    }

    #[test]
    fn multi_query_inputs_count_toward_batch() {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let eng = InferenceEngine::start(
            "dig",
            Arc::clone(&net),
            Arc::new(CpuExecutor::default()),
            batched(4, Duration::from_millis(1)),
        );
        let input = Tensor::random_uniform(Shape::nchw(3, 1, 28, 28), 1.0, 9);
        let got = eng.infer(input.clone()).unwrap();
        assert_eq!(got.shape().dims(), &[3, 10]);
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
    }

    fn lm_net() -> Arc<Network> {
        Arc::new(Network::with_random_weights(dnn::zoo::tiny_lm(), 3).unwrap())
    }

    fn lm_engine() -> InferenceEngine {
        InferenceEngine::start(
            "tiny-lm",
            lm_net(),
            Arc::new(CpuExecutor::default()),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 16,
                workers: 1,
                ..EngineConfig::default()
            },
        )
    }

    /// Greedy reference decode: what the generative stream must emit,
    /// computed with plain forward passes.
    fn greedy_reference(net: &Network, mut cur: Tensor, steps: usize) -> Vec<Tensor> {
        let mut outs = Vec::new();
        for _ in 0..steps {
            let out = net.forward(&cur).unwrap();
            let data = out.data();
            let best = (0..data.len())
                .max_by(|&a, &b| data[a].total_cmp(&data[b]))
                .unwrap();
            let mut next = vec![0.0f32; data.len()];
            next[best] = 1.0;
            cur = Tensor::from_vec(out.shape().clone(), next).unwrap();
            outs.push(out);
        }
        outs
    }

    #[test]
    fn generative_stream_emits_ordered_greedy_chunks() {
        let net = lm_net();
        let eng = lm_engine();
        let mut prompt = vec![0.0f32; 16];
        prompt[3] = 1.0;
        let input = Tensor::from_vec(Shape::mat(1, 16), prompt).unwrap();
        let want = greedy_reference(&net, input.clone(), 5);

        let (tx, rx) = bounded(16);
        eng.submit_stream_routed(input, 9, StreamMode::Generative { max_tokens: 5 }, tx)
            .unwrap();
        for (i, expect) in want.iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).expect("chunk");
            assert_eq!(reply.token, 9);
            assert_eq!(reply.seq as usize, i, "chunks must arrive in order");
            assert_eq!(reply.last, i == 4, "only the 5th chunk is final");
            let (out, spans) = reply.result.unwrap();
            assert!(
                out.max_abs_diff(expect).unwrap() < 1e-5,
                "chunk {i} diverged from greedy reference"
            );
            assert_eq!(spans.tokens, i as u64 + 1);
            assert!(spans.first_token_us > 0 || i == 0 || spans.first_token_us == 0);
        }
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "no chunks may follow the final one"
        );
        let stats = eng.stats();
        assert_eq!(stats.tokens_out, 5, "one tokens_out tick per chunk");
        assert_eq!(stats.completed, 1, "a whole stream counts as one request");
        eng.shutdown();
    }

    #[test]
    fn windowed_stream_chunks_the_batch_in_order() {
        let net = tiny_net();
        let eng = engine(
            Arc::clone(&net),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 16,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let input = Tensor::random_uniform(Shape::mat(5, 8), 1.0, 21);
        let want = net.forward(&input).unwrap();
        let (tx, rx) = bounded(16);
        eng.submit_stream_routed(input, 4, StreamMode::Windowed { window_rows: 2 }, tx)
            .unwrap();
        // 5 rows at 2 per window: chunks of 2, 2, and 1 rows.
        let mut rows_seen = 0usize;
        for (i, want_rows) in [2usize, 2, 1].into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).expect("chunk");
            assert_eq!(reply.seq as usize, i);
            assert_eq!(reply.last, i == 2);
            let (out, _) = reply.result.unwrap();
            assert_eq!(out.shape().batch(), want_rows, "chunk {i} row count");
            for r in 0..want_rows {
                let full_row = rows_seen + r;
                for c in 0..4 {
                    let got = out.data()[r * 4 + c];
                    let exp = want.data()[full_row * 4 + c];
                    assert!((got - exp).abs() < 1e-5, "row {full_row} col {c}");
                }
            }
            rows_seen += want_rows;
        }
        eng.shutdown();
    }

    #[test]
    fn generative_stream_rejects_bad_submissions() {
        let eng = lm_engine();
        let (tx, _rx) = bounded::<RoutedReply>(4);
        // Multi-row prompts cannot feed back through greedy decode.
        let wide = Tensor::zeros(Shape::mat(2, 16));
        assert!(matches!(
            eng.submit_stream_routed(
                wide,
                1,
                StreamMode::Generative { max_tokens: 2 },
                tx.clone()
            ),
            Err(DjinnError::Protocol { .. })
        ));
        // Zero-length streams are protocol errors, not silent no-ops.
        let one = Tensor::zeros(Shape::mat(1, 16));
        assert!(matches!(
            eng.submit_stream_routed(
                one.clone(),
                2,
                StreamMode::Generative { max_tokens: 0 },
                tx.clone()
            ),
            Err(DjinnError::Protocol { .. })
        ));
        assert!(matches!(
            eng.submit_stream_routed(one, 3, StreamMode::Windowed { window_rows: 0 }, tx),
            Err(DjinnError::Protocol { .. })
        ));
        eng.shutdown();
    }

    #[test]
    fn generative_stream_needs_feedback_compatible_output() {
        // tiny_net maps 8 -> 4: its output cannot be fed back, so the
        // stream must fail terminally instead of crashing the engine.
        let eng = engine(
            tiny_net(),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 8,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let (tx, rx) = bounded(8);
        let input = Tensor::zeros(Shape::mat(1, 8));
        eng.submit_stream_routed(input, 7, StreamMode::Generative { max_tokens: 3 }, tx)
            .unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(10)).expect("reply");
        assert!(reply.last, "an error reply is terminal");
        assert!(matches!(reply.result, Err(DjinnError::Protocol { .. })));
        // The engine survives for ordinary traffic.
        assert!(eng.infer(Tensor::zeros(Shape::mat(1, 8))).is_ok());
        eng.shutdown();
    }

    #[test]
    fn shutdown_waits_for_active_streams() {
        let eng = InferenceEngine::start(
            "tiny-lm",
            lm_net(),
            Arc::new(SlowExecutor {
                inner: CpuExecutor::default(),
                delay: Duration::from_millis(10),
            }),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 8,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let (tx, rx) = bounded(64);
        let mut prompt = vec![0.0f32; 16];
        prompt[0] = 1.0;
        let input = Tensor::from_vec(Shape::mat(1, 16), prompt).unwrap();
        eng.submit_stream_routed(input, 11, StreamMode::Generative { max_tokens: 30 }, tx)
            .unwrap();
        // Let the stream emit at least one chunk, then shut down mid-way.
        let first = rx.recv_timeout(Duration::from_secs(10)).expect("chunk 0");
        assert_eq!(first.seq, 0);
        eng.shutdown();
        // After shutdown returns the stream has fully resolved: either it
        // raced to completion or it ended with a terminal Shutdown error.
        let mut last_seen = false;
        while let Ok(reply) = rx.try_recv() {
            assert!(!last_seen, "no reply may follow a terminal one");
            if reply.last {
                last_seen = true;
                if let Err(e) = reply.result {
                    assert!(matches!(e, DjinnError::Shutdown), "got {e}");
                }
            }
        }
        assert!(
            last_seen,
            "shutdown must terminate the stream with a final reply"
        );
    }
}
