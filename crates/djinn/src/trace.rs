//! End-to-end request tracing: one u64 request ID per request, span
//! marks at every pipeline stage, and a per-request latency breakdown.
//!
//! # The trace model
//!
//! A request ID is assigned **at the client** (see [`next_request_id`])
//! and travels with the request through the v3 protocol, the server, and
//! the engine; the response echoes it together with the server-side span
//! durations. IDs are client-scoped — two clients may reuse an ID, and
//! the server never interprets them beyond echoing.
//!
//! Span marks, in pipeline order:
//!
//! ```text
//! client-send → server-read → admission → queue-exit → batch-formed
//!            → executor-start → executor-end → response-write → client-recv
//! ```
//!
//! # Clock domains
//!
//! Client and server run on *different monotonic clocks*; absolute
//! timestamps cannot be compared across the wire. Every cross-machine
//! quantity is therefore a **duration measured in one clock domain**:
//! the server reports `queue`, `batch`, `service`, and `server_total`
//! (server-read → response-encode) in its own clock; the client measures
//! end-to-end latency in its clock and derives
//! `wire = e2e − server_total` — the request/response serialization,
//! network transit, and framing the server cannot see. The residual
//! `server_total − (queue + batch + service)` is server overhead outside
//! the engine (decode, admission, batch scatter) and is reported as
//! [`TraceRecord::server_other_us`].

use std::sync::atomic::{AtomicU64, Ordering};

pub use gpusim::obs::{BreakdownTable, Stage, StageSummary};
use gpusim::queueing::LatencyHistogram;

/// Process-wide request-ID source. IDs are unique within the process and
/// strictly positive (0 is the "untraced" sentinel a v1/v2 peer decodes).
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Draws the next client-assigned request ID.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Span durations the engine measures for one admitted job, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSpans {
    /// Admission → queue-exit: time in the bounded admission queue.
    pub queue_us: u64,
    /// Queue-exit → executor-start: batch coalescing wait plus input
    /// stacking (0-ish for [`crate::DispatchPolicy::Immediate`]).
    pub batch_us: u64,
    /// Time the dispatch blocked acquiring its device lease from the
    /// shared-device scheduler. Zero on a dedicated (unshared) device.
    pub lease_us: u64,
    /// Executor-start → executor-end: forward-pass wall time. On the
    /// sim-GPU backend this is the *wall* time of the real math, not the
    /// modeled device latency — traces account real elapsed time.
    pub service_us: u64,
    /// Whether the exact-match inference cache answered this request. A
    /// hit short-circuits admission, so every span above is ~0: the
    /// request never queued, never leased the device, never ran the
    /// forward pass.
    pub cache_hit: bool,
    /// Admission → first emitted chunk, microseconds. 0 for one-shot
    /// requests (which have no "first token" distinct from the whole
    /// response).
    pub first_token_us: u64,
    /// Chunks (tokens / partial hypotheses) this job emitted. 0 for
    /// one-shot requests.
    pub tokens: u64,
}

/// The server-side trace slice of one request, echoed in v3 responses.
/// A v1/v2 peer's responses decode as all-zero ([`ServerTrace::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerTrace {
    /// Client-assigned request ID, echoed back (0 from a v1/v2 peer).
    pub request_id: u64,
    /// Engine queue wait, microseconds.
    pub queue_us: u64,
    /// Batch coalescing wait, microseconds.
    pub batch_us: u64,
    /// Device-lease wait, microseconds (0 from a pre-v5 peer or a
    /// dedicated device).
    pub lease_us: u64,
    /// Forward-pass wall time, microseconds.
    pub service_us: u64,
    /// Server-read → response-encode, microseconds: everything the
    /// server's clock can attribute to this request.
    pub server_total_us: u64,
    /// Whether the inference cache answered this request (v6; decodes
    /// as `false` from a pre-v6 peer).
    pub cache_hit: bool,
    /// Admission → first emitted chunk of a streaming request,
    /// microseconds (v7; 0 for one-shot requests or a pre-v7 peer).
    pub first_token_us: u64,
    /// Chunks the stream emitted so far — on the final chunk, the
    /// stream's total (v7; 0 for one-shot requests or a pre-v7 peer).
    pub tokens: u64,
}

impl ServerTrace {
    /// Builds the wire trace from engine spans plus the connection-level
    /// total.
    pub fn new(request_id: u64, spans: EngineSpans, server_total_us: u64) -> Self {
        ServerTrace {
            request_id,
            queue_us: spans.queue_us,
            batch_us: spans.batch_us,
            lease_us: spans.lease_us,
            service_us: spans.service_us,
            server_total_us,
            cache_hit: spans.cache_hit,
            first_token_us: spans.first_token_us,
            tokens: spans.tokens,
        }
    }
}

/// A complete per-request trace record, assembled at the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Client-assigned request ID (stable across Busy retries).
    pub request_id: u64,
    /// Model the request targeted.
    pub model: String,
    /// Client-send → client-recv, microseconds.
    pub e2e_us: u64,
    /// Engine queue wait, microseconds (server clock).
    pub queue_us: u64,
    /// Batch coalescing wait, microseconds (server clock).
    pub batch_us: u64,
    /// Device-lease wait, microseconds (server clock; 0 from a pre-v5
    /// peer or a dedicated device).
    pub lease_us: u64,
    /// Forward-pass wall time, microseconds (server clock).
    pub service_us: u64,
    /// Server-read → response-encode, microseconds (server clock).
    pub server_total_us: u64,
    /// `Busy` replies absorbed before this request succeeded (filled by
    /// retrying callers; the retried request keeps its ID, so the trace
    /// stays one record).
    pub busy_retries: u32,
    /// Bytes this request put on the wire: request frame + response
    /// frame, length prefixes included (0 when the transport did not
    /// report sizes — e.g. records assembled outside `DjinnClient`).
    pub wire_bytes: u64,
    /// Whether the server's inference cache answered this request — the
    /// `cache` trace disposition. A hit legitimately reports ~zero
    /// queue/lease/service.
    pub cache_hit: bool,
    /// Admission → first chunk for streaming requests, microseconds
    /// (server clock; 0 for one-shot requests).
    pub first_token_us: u64,
    /// Chunks the stream delivered (0 for one-shot requests).
    pub tokens: u64,
}

impl TraceRecord {
    /// Assembles the record from the client-measured end-to-end latency
    /// and the server's echoed trace.
    pub fn new(model: impl Into<String>, e2e_us: u64, server: ServerTrace) -> Self {
        TraceRecord {
            request_id: server.request_id,
            model: model.into(),
            e2e_us,
            queue_us: server.queue_us,
            batch_us: server.batch_us,
            lease_us: server.lease_us,
            service_us: server.service_us,
            server_total_us: server.server_total_us,
            busy_retries: 0,
            wire_bytes: 0,
            cache_hit: server.cache_hit,
            first_token_us: server.first_token_us,
            tokens: server.tokens,
        }
    }

    /// Attaches the request's wire footprint (request + response frame
    /// sizes, prefixes included).
    #[must_use]
    pub fn with_wire_bytes(mut self, wire_bytes: u64) -> Self {
        self.wire_bytes = wire_bytes;
        self
    }

    /// Time on the wire: end-to-end minus everything the server
    /// accounted for. Saturates at 0 (the two quantities come from
    /// different clocks; see the module docs).
    pub fn wire_us(&self) -> u64 {
        self.e2e_us.saturating_sub(self.server_total_us)
    }

    /// Whether the server reported its side of the trace. A pre-v3 peer
    /// echoes nothing, so `server_total_us` (and every other server
    /// span) decodes as 0 — in that case `wire_us()` would equal the
    /// whole end-to-end latency and the queue/batch/service spans would
    /// be fake zeros, so reports render those columns as `n/a` instead.
    ///
    /// A cache hit is the one case where a *traced* request can report
    /// `server_total_us == 0` (the whole server side can complete inside
    /// one microsecond tick), so the hit flag counts as a server trace.
    pub fn has_server_trace(&self) -> bool {
        self.server_total_us > 0 || self.cache_hit
    }

    /// Server overhead outside the engine (decode, admission, batch
    /// scatter, reply delivery).
    pub fn server_other_us(&self) -> u64 {
        self.server_total_us
            .saturating_sub(self.queue_us + self.batch_us + self.lease_us + self.service_us)
    }

    /// Sum of the five additive stages: queue, batch, lease, service,
    /// and wire. By construction `stage_sum_us() + server_other_us()
    /// == e2e_us` (up to saturation), so the sum approximates the
    /// measured end-to-end latency whenever non-engine server overhead
    /// is small.
    pub fn stage_sum_us(&self) -> u64 {
        self.queue_us + self.batch_us + self.lease_us + self.service_us + self.wire_us()
    }

    /// One JSONL line (no trailing newline). Keys are the [`Stage`]
    /// names plus identity fields; all values are integers or strings,
    /// so no escaping beyond the model name is needed.
    pub fn to_json(&self) -> String {
        // Model names come from the registry (file stems / app names);
        // escape the two JSON-significant characters defensively.
        let model = self.model.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"request_id\":{},\"model\":\"{}\",\"e2e_us\":{},\"queue_us\":{},\
             \"batch_us\":{},\"lease_us\":{},\"service_us\":{},\"wire_us\":{},\
             \"server_total_us\":{},\"busy_retries\":{},\"wire_bytes\":{},\
             \"cache_hit\":{},\"first_token_us\":{},\"tokens\":{}}}",
            self.request_id,
            model,
            self.e2e_us,
            self.queue_us,
            self.batch_us,
            self.lease_us,
            self.service_us,
            self.wire_us(),
            self.server_total_us,
            self.busy_retries,
            self.wire_bytes,
            self.cache_hit,
            self.first_token_us,
            self.tokens,
        )
    }
}

/// Aggregates trace records into per-stage histograms and renders the
/// p50/p95/p99 breakdown table the loadgen prints.
#[derive(Debug, Default)]
pub struct TraceAggregator {
    queue: LatencyHistogram,
    batch: LatencyHistogram,
    lease: LatencyHistogram,
    service: LatencyHistogram,
    wire: LatencyHistogram,
    total: LatencyHistogram,
}

impl TraceAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        TraceAggregator::default()
    }

    /// Folds one record in. Server-side stages (queue/batch/service) and
    /// the derived wire span are recorded only when the server actually
    /// reported its trace: a pre-v3 peer's all-zero echo would otherwise
    /// render as a misleading `0.00 ms` wire column (and fake-zero server
    /// stages) instead of `n/a`.
    pub fn record(&mut self, r: &TraceRecord) {
        if r.has_server_trace() {
            self.queue.record(r.queue_us);
            self.batch.record(r.batch_us);
            self.lease.record(r.lease_us);
            self.service.record(r.service_us);
            self.wire.record(r.wire_us());
        }
        self.total.record(r.e2e_us);
    }

    /// Records aggregated so far.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// The per-stage breakdown table (stages with no samples render as
    /// `n/a`).
    pub fn table(&self) -> BreakdownTable {
        let mut t = BreakdownTable::new();
        t.push(Stage::Queue, StageSummary::of(&self.queue));
        t.push(Stage::Batch, StageSummary::of(&self.batch));
        t.push(Stage::Lease, StageSummary::of(&self.lease));
        t.push(Stage::Service, StageSummary::of(&self.service));
        t.push(Stage::Wire, StageSummary::of(&self.wire));
        t.push(Stage::Total, StageSummary::of(&self.total));
        t
    }
}

/// The `q`-quantile of an ascending-sorted sample vector, or `None` when
/// there are no samples — the caller renders `None` as `n/a` instead of
/// inventing a zero (or panicking on an empty index, as the loadgen once
/// did on an all-shed run).
///
/// Uses the ceiling nearest-rank convention (`rank = max(1, ceil(q·n))`,
/// 1-based) — the same one `LatencyHistogram::quantile` uses — so the
/// loadgen's client-side report and the server's stats report agree on
/// what "p99" means. The old truncating index `(n-1)·q` rounded *down*,
/// which at small sample counts understated tail quantiles (e.g. 10
/// samples at q=0.99 reported the 9th value instead of the 10th).
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
        .max(1)
        .min(sorted.len());
    Some(sorted[rank - 1])
}

/// Renders an optional millisecond quantity: `12.34 ms` or `n/a`.
pub fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2} ms"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(e2e: u64, queue: u64, batch: u64, service: u64, total: u64) -> TraceRecord {
        TraceRecord::new(
            "dig",
            e2e,
            ServerTrace {
                request_id: 7,
                queue_us: queue,
                batch_us: batch,
                lease_us: 0,
                service_us: service,
                server_total_us: total,
                cache_hit: false,
                first_token_us: 0,
                tokens: 0,
            },
        )
    }

    #[test]
    fn request_ids_are_unique_and_positive() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a > 0, "0 is the untraced sentinel");
        assert_ne!(a, b);
    }

    #[test]
    fn stage_sum_plus_overhead_is_end_to_end() {
        let r = record(1_000, 100, 50, 600, 800);
        assert_eq!(r.wire_us(), 200);
        assert_eq!(r.server_other_us(), 50);
        assert_eq!(r.stage_sum_us() + r.server_other_us(), r.e2e_us);
    }

    #[test]
    fn wire_saturates_instead_of_underflowing() {
        // Different clock domains: a server_total slightly above the
        // client's e2e must not wrap around.
        let r = record(500, 0, 0, 400, 600);
        assert_eq!(r.wire_us(), 0);
    }

    #[test]
    fn json_line_carries_every_stage() {
        let r = record(1_000, 100, 50, 600, 800);
        let line = r.to_json();
        for key in [
            "\"request_id\":7",
            "\"model\":\"dig\"",
            "\"e2e_us\":1000",
            "\"queue_us\":100",
            "\"batch_us\":50",
            "\"lease_us\":0",
            "\"service_us\":600",
            "\"wire_us\":200",
            "\"server_total_us\":800",
            "\"busy_retries\":0",
            "\"wire_bytes\":0",
            "\"cache_hit\":false",
            "\"first_token_us\":0",
            "\"tokens\":0",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
    }

    #[test]
    fn json_escapes_hostile_model_names() {
        let mut r = record(10, 1, 1, 1, 5);
        r.model = "we\"ird\\name".into();
        let line = r.to_json();
        assert!(line.contains("we\\\"ird\\\\name"), "{line}");
    }

    #[test]
    fn aggregator_builds_a_full_table() {
        let mut agg = TraceAggregator::new();
        agg.record(&record(1_000, 100, 50, 600, 800));
        agg.record(&record(2_000, 300, 70, 900, 1_400));
        assert_eq!(agg.count(), 2);
        let rendered = agg.table().render();
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
        assert!(!rendered.contains("n/a"), "{rendered}");
    }

    #[test]
    fn lease_wait_is_an_additive_stage() {
        let mut r = record(1_000, 100, 50, 500, 800);
        r.lease_us = 100;
        assert_eq!(r.wire_us(), 200);
        assert_eq!(r.server_other_us(), 50);
        assert_eq!(r.stage_sum_us() + r.server_other_us(), r.e2e_us);
        assert!(r.to_json().contains("\"lease_us\":100"), "{}", r.to_json());
        let mut agg = TraceAggregator::new();
        agg.record(&r);
        let rendered = agg.table().render();
        let lease_row = rendered
            .lines()
            .find(|l| l.starts_with("lease"))
            .expect("lease row in breakdown");
        assert!(lease_row.contains("ms"), "{rendered}");
    }

    #[test]
    fn wire_bytes_travel_through_record_and_json() {
        let r = record(1_000, 100, 50, 600, 800).with_wire_bytes(3_210);
        assert_eq!(r.wire_bytes, 3_210);
        assert!(
            r.to_json().contains("\"wire_bytes\":3210"),
            "{}",
            r.to_json()
        );
    }

    /// A pre-v3 server echoes no trace: every server span decodes as 0.
    /// The aggregator must render the wire (and server-stage) columns as
    /// `n/a`, not claim the whole e2e was 0.00 ms of wire.
    #[test]
    fn untraced_records_leave_server_stages_na() {
        let untraced = record(40_000, 0, 0, 0, 0);
        assert!(!untraced.has_server_trace());
        let mut agg = TraceAggregator::new();
        agg.record(&untraced);
        agg.record(&record(41_000, 0, 0, 0, 0));
        assert_eq!(agg.count(), 2, "e2e totals still aggregate");
        let rendered = agg.table().render();
        let wire_row = rendered
            .lines()
            .find(|l| l.starts_with("wire"))
            .expect("wire row");
        assert!(wire_row.contains("n/a"), "{rendered}");
        assert!(!wire_row.contains("ms"), "{rendered}");
        let total_row = rendered
            .lines()
            .find(|l| l.starts_with("total"))
            .expect("total row");
        assert!(total_row.contains("ms"), "{rendered}");
    }

    /// A cache hit can land with every server span at 0 — the whole
    /// server side fits inside one microsecond tick. The hit flag must
    /// still count as a server trace, or hits would render as untraced
    /// pre-v3 peers and vanish from the stage breakdown.
    #[test]
    fn cache_hits_are_traced_even_with_zero_spans() {
        let spans = EngineSpans {
            cache_hit: true,
            ..EngineSpans::default()
        };
        let r = TraceRecord::new("pos", 120, ServerTrace::new(9, spans, 0));
        assert!(r.cache_hit, "hit flag travels spans → wire trace → record");
        assert!(r.has_server_trace());
        assert_eq!(r.wire_us(), 120, "all e2e is wire when the server took ~0");
        assert!(
            r.to_json().contains("\"cache_hit\":true"),
            "{}",
            r.to_json()
        );
        let mut agg = TraceAggregator::new();
        agg.record(&r);
        let rendered = agg.table().render();
        let queue_row = rendered
            .lines()
            .find(|l| l.starts_with("queue"))
            .expect("queue row");
        assert!(
            queue_row.contains("0.00 ms"),
            "a hit's zero queue is a real measurement, not n/a: {rendered}"
        );
    }

    /// Regression test for the all-shed loadgen run: with zero successful
    /// requests the percentile report must say `n/a` — not panic on an
    /// empty index, not print a fake 0.
    #[test]
    fn empty_run_reports_na_everywhere() {
        let empty: Vec<f64> = Vec::new();
        assert_eq!(percentile(&empty, 0.50), None);
        assert_eq!(percentile(&empty, 0.99), None);
        assert_eq!(fmt_ms(percentile(&empty, 0.95)), "n/a");
        let agg = TraceAggregator::new();
        let rendered = agg.table().render();
        assert!(rendered.contains("n/a"), "{rendered}");
        assert!(!rendered.contains("0.00 ms"), "{rendered}");
    }

    #[test]
    fn percentile_matches_the_workspace_definition_when_non_empty() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(fmt_ms(percentile(&v, 0.5)), "50.00 ms");
    }

    /// Pins the ceiling nearest-rank convention at sample sizes where it
    /// *differs* from the old truncating `(n-1)·q` index — the n=100
    /// checks above coincide under both conventions and would not catch
    /// a regression to the old formula.
    #[test]
    fn percentile_uses_ceiling_nearest_rank_like_the_histogram() {
        // 10 samples at q=0.99: rank = ceil(9.9) = 10 → the maximum.
        // The truncating index gave (9 * 0.99) = 8 → the 9th value.
        let small: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&small, 0.99), Some(10.0));
        // 200 samples at q=0.999: rank = ceil(199.8) = 200 → 200.0.
        // The truncating index gave (199 * 0.999) = 198 → 199.0.
        let large: Vec<f64> = (1..=200).map(f64::from).collect();
        assert_eq!(percentile(&large, 0.999), Some(200.0));
        // A single sample answers every quantile, q=0.0 included.
        assert_eq!(percentile(&[7.5], 0.0), Some(7.5));
        assert_eq!(percentile(&[7.5], 1.0), Some(7.5));
    }
}
