//! DjiNN: DNN as a service.
//!
//! This crate is the paper's primary artifact: a standalone service that
//! accepts inference requests over a custom socket protocol on TCP/IP,
//! holds every registered model in memory once (worker threads share them
//! read-only), executes the DNN forward pass, and returns the prediction.
//!
//! Components:
//!
//! * [`protocol`] — the length-prefixed binary wire format;
//! * [`ModelRegistry`] — load-once, share-read-only model store;
//! * [`Executor`] — the compute backend: [`CpuExecutor`] runs real math on
//!   the `tensor` substrate; [`SimGpuExecutor`] runs the same real math for
//!   functional results while *modeling* the latency a K40 would exhibit
//!   (the GPU-hardware substitution, see DESIGN.md §2);
//! * [`InferenceEngine`] — the per-model execution engine: bounded
//!   admission queue (full → `Busy` backpressure), dispatch policy
//!   ([`DispatchPolicy::Immediate`] or [`DispatchPolicy::Batched`] per
//!   §5.1 of the paper), and queue telemetry;
//! * [`DjinnServer`]/[`DjinnClient`] — the TCP service and its client.
//!
//! # Quickstart
//!
//! ```no_run
//! use djinn::{DjinnServer, DjinnClient, ServerConfig};
//! use tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = ServerConfig::default();
//! config.bind_addr = "127.0.0.1:0".into();
//! let server = DjinnServer::start_with_tonic_models(config)?;
//! let addr = server.local_addr();
//!
//! let mut client = DjinnClient::connect(addr)?;
//! let digit = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
//! let probs = client.infer("dig", &digit)?;
//! assert_eq!(probs.shape().as_matrix().1, 10);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod client;
pub mod device;
mod engine;
mod error;
mod executor;
pub mod protocol;
mod registry;
mod router;
mod server;
pub mod trace;
pub mod workload;

pub use client::{DjinnClient, PipelinedResponse, StreamChunk, StreamIter};
pub use device::{ColocationPolicy, ComputeLease, Device, DeviceScheduler};
pub use dnn::cache::{CacheMode, CacheStats, InferenceCache};
pub use engine::{
    BatchConfig, DispatchPolicy, EngineConfig, EngineStats, InferenceEngine, RoutedReply, Ticket,
};
pub use error::DjinnError;
pub use executor::{CpuExecutor, DelayExecutor, Executor, InferenceOutcome, SimGpuExecutor};
pub use protocol::{ModelStats, StreamMode};
pub use registry::ModelRegistry;
pub use router::{DjinnRouter, RoutePolicy, RouterConfig};
pub use server::{Backend, DjinnServer, ServerConfig};
pub use trace::{EngineSpans, ServerTrace, TraceRecord};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, DjinnError>;
