//! Server-side query batching (§5.1 of the paper).
//!
//! Multiple in-flight queries for the same model are stacked along the
//! batch axis into one larger input, executed as a single forward pass,
//! and the output rows are scattered back to the waiting clients. Batching
//! is what turns the GPU's skinny, low-occupancy NLP matrices into full
//! ones (Fig 7).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use dnn::Network;
use tensor::Tensor;

use crate::{DjinnError, Executor, Result};

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum queries folded into one forward pass (Table 3's last
    /// column gives the per-app sweet spots).
    pub max_batch: usize,
    /// Longest a query may wait for co-batched company before the batch is
    /// dispatched anyway.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

struct Job {
    input: Tensor,
    reply: Sender<Result<Tensor>>,
}

/// A per-model batching worker.
///
/// [`Batcher::submit`] blocks the calling worker thread until the batched
/// forward pass containing its query completes.
pub struct Batcher {
    tx: Sender<Job>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("alive", &self.worker.is_some())
            .finish()
    }
}

impl Batcher {
    /// Spawns the batching worker for one model.
    pub fn new(network: Arc<Network>, executor: Arc<dyn Executor>, config: BatchConfig) -> Self {
        let (tx, rx) = bounded::<Job>(config.max_batch * 8);
        let worker = std::thread::Builder::new()
            .name(format!("djinn-batcher-{}", network.def().name()))
            .spawn(move || batch_loop(&network, executor.as_ref(), config, &rx))
            .expect("spawning batcher thread");
        Batcher {
            tx,
            worker: Some(worker),
        }
    }

    /// Submits one query and waits for its slice of the batched output.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Shutdown`] if the worker is gone, or the
    /// inference error that failed the batch.
    pub fn submit(&self, input: Tensor) -> Result<Tensor> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Job {
                input,
                reply: reply_tx,
            })
            .map_err(|_| DjinnError::Shutdown)?;
        reply_rx.recv().map_err(|_| DjinnError::Shutdown)?
    }

    /// Stops the worker after it drains queued jobs.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Closing the channel makes the worker loop exit.
        let (dead_tx, _) = bounded(0);
        let _ = std::mem::replace(&mut self.tx, dead_tx);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Non-blocking teardown is impossible here by design: dropping a
        // batcher waits for in-flight replies so no client hangs forever.
        if self.worker.is_some() {
            self.stop();
        }
    }
}

fn batch_loop(
    network: &Arc<Network>,
    executor: &dyn Executor,
    config: BatchConfig,
    rx: &Receiver<Job>,
) {
    loop {
        // Block for the first job of the next batch.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: shut down
        };
        let deadline = Instant::now() + config.max_delay;
        let mut jobs = vec![first];
        let mut queries: usize = jobs[0].input.shape().batch();
        while queries < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    queries += job.input.shape().batch();
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        dispatch(network, executor, jobs);
    }
}

fn dispatch(network: &Arc<Network>, executor: &dyn Executor, jobs: Vec<Job>) {
    let inputs: Vec<Tensor> = jobs.iter().map(|j| j.input.clone()).collect();
    let counts: Vec<usize> = inputs.iter().map(|t| t.shape().batch()).collect();
    let result = Tensor::stack_batch(&inputs)
        .map_err(dnn::DnnError::from)
        .map_err(DjinnError::from)
        .and_then(|stacked| executor.infer(network, &stacked))
        .and_then(|outcome| {
            outcome
                .output
                .split_batch(&counts)
                .map_err(dnn::DnnError::from)
                .map_err(DjinnError::from)
        });
    match result {
        Ok(parts) => {
            for (job, part) in jobs.into_iter().zip(parts) {
                let _ = job.reply.send(Ok(part));
            }
        }
        Err(e) => {
            let message = e.to_string();
            for job in jobs {
                let _ = job.reply.send(Err(DjinnError::Remote {
                    message: message.clone(),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuExecutor;
    use dnn::zoo::App;
    use tensor::Shape;

    fn setup(config: BatchConfig) -> (Arc<Network>, Batcher) {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let batcher = Batcher::new(net.clone(), Arc::new(CpuExecutor::default()), config);
        (net, batcher)
    }

    #[test]
    fn single_query_roundtrip() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        });
        let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, 7);
        let got = batcher.submit(input.clone()).unwrap();
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_queries_get_their_own_rows() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
        });
        let batcher = Arc::new(batcher);
        let net = Arc::new(net);
        let mut handles = Vec::new();
        for seed in 0..6u64 {
            let b = Arc::clone(&batcher);
            let n = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, seed);
                let got = b.submit(input.clone()).unwrap();
                let want = n.forward(&input).unwrap();
                assert!(got.max_abs_diff(&want).unwrap() < 1e-4, "seed {seed}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn oversized_inputs_fail_cleanly() {
        let (_, batcher) = setup(BatchConfig::default());
        let wrong = Tensor::zeros(Shape::nchw(1, 1, 10, 10));
        assert!(matches!(
            batcher.submit(wrong),
            Err(DjinnError::Remote { .. })
        ));
        // The worker survives a failed batch.
        let ok = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        assert!(batcher.submit(ok).is_ok());
    }

    #[test]
    fn multi_query_inputs_count_toward_batch() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        });
        let input = Tensor::random_uniform(Shape::nchw(3, 1, 28, 28), 1.0, 9);
        let got = batcher.submit(input.clone()).unwrap();
        assert_eq!(got.shape().dims(), &[3, 10]);
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
    }
}
