//! Server-side query batching (§5.1 of the paper).
//!
//! Multiple in-flight queries for the same model are stacked along the
//! batch axis into one larger input, executed as a single forward pass,
//! and the output rows are scattered back to the waiting clients. Batching
//! is what turns the GPU's skinny, low-occupancy NLP matrices into full
//! ones (Fig 7).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use dnn::Network;
use tensor::Tensor;

use crate::{DjinnError, Executor, Result};

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum queries folded into one forward pass (Table 3's last
    /// column gives the per-app sweet spots).
    pub max_batch: usize,
    /// Longest a query may wait for co-batched company before the batch is
    /// dispatched anyway.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

struct Job {
    input: Tensor,
    reply: Sender<Result<Tensor>>,
}

/// A per-model batching worker.
///
/// [`Batcher::submit`] blocks the calling worker thread until the batched
/// forward pass containing its query completes.
pub struct Batcher {
    tx: Sender<Job>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("alive", &self.worker.is_some())
            .finish()
    }
}

impl Batcher {
    /// Spawns the batching worker for one model.
    pub fn new(network: Arc<Network>, executor: Arc<dyn Executor>, config: BatchConfig) -> Self {
        let (tx, rx) = bounded::<Job>(config.max_batch * 8);
        let worker = std::thread::Builder::new()
            .name(format!("djinn-batcher-{}", network.def().name()))
            .spawn(move || batch_loop(&network, executor.as_ref(), config, &rx))
            .expect("spawning batcher thread");
        Batcher {
            tx,
            worker: Some(worker),
        }
    }

    /// Submits one query and waits for its slice of the batched output.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::Shutdown`] if the worker is gone, or the
    /// inference error that failed the batch.
    pub fn submit(&self, input: Tensor) -> Result<Tensor> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Job {
                input,
                reply: reply_tx,
            })
            .map_err(|_| DjinnError::Shutdown)?;
        reply_rx.recv().map_err(|_| DjinnError::Shutdown)?
    }

    /// Stops the worker after it drains queued jobs.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Closing the channel makes the worker loop exit.
        let (dead_tx, _) = bounded(0);
        let _ = std::mem::replace(&mut self.tx, dead_tx);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Non-blocking teardown is impossible here by design: dropping a
        // batcher waits for in-flight replies so no client hangs forever.
        if self.worker.is_some() {
            self.stop();
        }
    }
}

fn batch_loop(
    network: &Arc<Network>,
    executor: &dyn Executor,
    config: BatchConfig,
    rx: &Receiver<Job>,
) {
    // A job that would push the current batch past `max_batch` is carried
    // over to seed the next batch instead of overshooting the Table 3 cap.
    let mut carry: Option<Job> = None;
    loop {
        // Seed the batch with the carried job, or block for the next one.
        let first = match carry.take() {
            Some(job) => job,
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed: shut down
            },
        };
        let deadline = Instant::now() + config.max_delay;
        let mut queries: usize = first.input.shape().batch();
        let mut jobs = vec![first];
        // Note a single job wider than `max_batch` still runs — alone, as
        // its own batch; the cap governs coalescing, not job size.
        while queries < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    let q = job.input.shape().batch();
                    if queries + q > config.max_batch {
                        carry = Some(job);
                        break;
                    }
                    queries += q;
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        dispatch(network, executor, jobs);
    }
}

fn dispatch(network: &Arc<Network>, executor: &dyn Executor, jobs: Vec<Job>) {
    let inputs: Vec<Tensor> = jobs.iter().map(|j| j.input.clone()).collect();
    let counts: Vec<usize> = inputs.iter().map(|t| t.shape().batch()).collect();
    let result = Tensor::stack_batch(&inputs)
        .map_err(dnn::DnnError::from)
        .map_err(DjinnError::from)
        .and_then(|stacked| executor.infer(network, &stacked))
        .and_then(|outcome| {
            outcome
                .output
                .split_batch(&counts)
                .map_err(dnn::DnnError::from)
                .map_err(DjinnError::from)
        });
    match result {
        Ok(parts) => {
            for (job, part) in jobs.into_iter().zip(parts) {
                let _ = job.reply.send(Ok(part));
            }
        }
        Err(e) => {
            let message = e.to_string();
            for job in jobs {
                let _ = job.reply.send(Err(DjinnError::Remote {
                    message: message.clone(),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuExecutor;
    use dnn::zoo::App;
    use tensor::Shape;

    fn setup(config: BatchConfig) -> (Arc<Network>, Batcher) {
        let net = Arc::new(dnn::zoo::network(App::Dig).unwrap());
        let batcher = Batcher::new(net.clone(), Arc::new(CpuExecutor::default()), config);
        (net, batcher)
    }

    #[test]
    fn single_query_roundtrip() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        });
        let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, 7);
        let got = batcher.submit(input.clone()).unwrap();
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_queries_get_their_own_rows() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
        });
        let batcher = Arc::new(batcher);
        let net = Arc::new(net);
        let mut handles = Vec::new();
        for seed in 0..6u64 {
            let b = Arc::clone(&batcher);
            let n = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let input = Tensor::random_uniform(Shape::nchw(1, 1, 28, 28), 1.0, seed);
                let got = b.submit(input.clone()).unwrap();
                let want = n.forward(&input).unwrap();
                assert!(got.max_abs_diff(&want).unwrap() < 1e-4, "seed {seed}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn oversized_inputs_fail_cleanly() {
        let (_, batcher) = setup(BatchConfig::default());
        let wrong = Tensor::zeros(Shape::nchw(1, 1, 10, 10));
        assert!(matches!(
            batcher.submit(wrong),
            Err(DjinnError::Remote { .. })
        ));
        // The worker survives a failed batch.
        let ok = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        assert!(batcher.submit(ok).is_ok());
    }

    /// An executor that runs the real forward pass while recording the
    /// largest batch it was ever handed.
    struct RecordingExecutor {
        inner: CpuExecutor,
        max_batch_seen: std::sync::atomic::AtomicUsize,
    }

    impl RecordingExecutor {
        fn new() -> Self {
            RecordingExecutor {
                inner: CpuExecutor::default(),
                max_batch_seen: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl crate::Executor for RecordingExecutor {
        fn infer(
            &self,
            network: &Arc<Network>,
            input: &Tensor,
        ) -> crate::Result<crate::InferenceOutcome> {
            self.max_batch_seen
                .fetch_max(input.shape().batch(), std::sync::atomic::Ordering::SeqCst);
            self.inner.infer(network, input)
        }

        fn backend_name(&self) -> &'static str {
            "recording"
        }
    }

    #[test]
    fn no_batch_ever_exceeds_max_batch() {
        // A tiny FC model keeps the many forward passes cheap.
        let def = dnn::parser::parse_netdef(
            "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n",
        )
        .unwrap();
        let net = Arc::new(Network::with_random_weights(def, 1).unwrap());
        let recorder = Arc::new(RecordingExecutor::new());
        let max_batch = 4;
        let batcher = Arc::new(Batcher::new(
            Arc::clone(&net),
            Arc::clone(&recorder) as Arc<dyn crate::Executor>,
            BatchConfig {
                max_batch,
                // A long delay forces maximal coalescing pressure: the
                // only way a batch closes early is hitting the cap.
                max_delay: Duration::from_millis(50),
            },
        ));
        // 3-query jobs arriving concurrently: any two of them coalesced
        // would overshoot the cap of 4, so the carry-over logic is what
        // keeps every executed batch legal.
        let mut handles = Vec::new();
        for seed in 0..6u64 {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                for i in 0..3 {
                    let queries = 1 + ((seed + i) % 3) as usize; // 1..=3
                    let input = Tensor::random_uniform(Shape::mat(queries, 8), 1.0, seed * 10 + i);
                    let out = b.submit(input).unwrap();
                    assert_eq!(out.shape().batch(), queries);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let seen = recorder
            .max_batch_seen
            .load(std::sync::atomic::Ordering::SeqCst);
        assert!(seen > 0, "executor never ran");
        assert!(
            seen <= max_batch,
            "a batch of {seen} queries exceeded max_batch={max_batch}"
        );
    }

    #[test]
    fn job_wider_than_max_batch_still_runs_alone() {
        let def = dnn::parser::parse_netdef(
            "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n",
        )
        .unwrap();
        let net = Arc::new(Network::with_random_weights(def, 1).unwrap());
        let batcher = Batcher::new(
            net,
            Arc::new(CpuExecutor::default()),
            BatchConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
            },
        );
        let input = Tensor::random_uniform(Shape::mat(5, 8), 1.0, 3);
        let out = batcher.submit(input).unwrap();
        assert_eq!(out.shape().batch(), 5);
    }

    #[test]
    fn multi_query_inputs_count_toward_batch() {
        let (net, batcher) = setup(BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        });
        let input = Tensor::random_uniform(Shape::nchw(3, 1, 28, 28), 1.0, 9);
        let got = batcher.submit(input.clone()).unwrap();
        assert_eq!(got.shape().dims(), &[3, 10]);
        let want = net.forward(&input).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-5);
    }
}
