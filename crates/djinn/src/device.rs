//! Shared-device scheduling: compute as a leased, cross-model resource.
//!
//! Through PR 7 every [`crate::InferenceEngine`] assumed it owned the
//! whole device: each engine's workers spent the full static `Threading`
//! budget as if no other model existed. That assumption breaks exactly
//! where the paper's WSC argument lives — consolidating many DNN
//! services onto one accelerator. This module makes compute a first-class
//! shared resource:
//!
//! * [`Device`] describes the capacity being shared — a CPU thread pool
//!   or an MPS-style slot count on the simulated GPU (the fluid-rate
//!   sharing model in `gpusim::engine::mps_slowdown`, where co-resident
//!   kernels divide the device by their summed demand);
//! * [`DeviceScheduler`] grants bounded [`ComputeLease`]s to engine
//!   workers. A lease carries the thread budget the holder may spend;
//!   dropping it returns the capacity and wakes waiters. The time spent
//!   blocked in [`DeviceScheduler::acquire`] is the *lease wait* — a
//!   visible stage in traces and stats, the co-location analogue of
//!   queueing delay;
//! * [`ColocationPolicy`] decides, per dispatch, between the two static
//!   extremes studied in "Throughput Maximization of DNN Inference:
//!   Batching or Multi-Tenancy?": wait to fill the batch (amortize
//!   per-dispatch cost) or run now on a partial device slice (cut
//!   latency). The dynamic policy picks per model from queue depth,
//!   batch fill, SLA headroom, and current device availability.
//!
//! Grants are *fair-share bounded*: with `s` engines sharing a
//! `c`-thread device, no single lease exceeds `max(1, c / s)` threads
//! while others are registered, so one model's burst cannot starve its
//! neighbors of whole-device access. Because every parallel kernel in
//! the `tensor` substrate is bitwise-identical to its sequential path at
//! any thread count, a partial lease changes *when* work runs, never
//! *what* it computes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tensor::Threading;

/// The shared compute resource engines lease slices of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// A host CPU pool of `threads` worker threads.
    Cpu {
        /// Total schedulable worker threads.
        threads: usize,
    },
    /// The simulated GPU shared MPS-style: up to `slots` co-resident
    /// kernels, each an independent single-threaded forward pass whose
    /// *modeled* latency already reflects fluid-rate sharing
    /// (`gpusim::engine::mps_slowdown`). The lease wait models MPS
    /// admission beyond the slot count.
    SimGpuMps {
        /// Concurrent kernel slots (CUDA MPS defaults to 16 clients).
        slots: usize,
    },
}

impl Device {
    /// Total capacity in lease units (threads or kernel slots).
    pub fn capacity(&self) -> usize {
        match *self {
            Device::Cpu { threads } => threads.max(1),
            Device::SimGpuMps { slots } => slots.max(1),
        }
    }

    /// Units one lease should request for a `want`-thread inference.
    fn units_for(&self, want: usize) -> usize {
        match *self {
            Device::Cpu { .. } => want.max(1),
            // A GPU kernel occupies one MPS slot regardless of the host
            // thread budget; intra-kernel parallelism is the device's.
            Device::SimGpuMps { .. } => 1,
        }
    }

    /// The thread budget a grant of `units` translates to.
    fn threading_for(&self, units: usize) -> Threading {
        match *self {
            Device::Cpu { .. } => Threading::new(units),
            Device::SimGpuMps { .. } => Threading::SINGLE,
        }
    }
}

/// A granted slice of the device, released on drop.
///
/// Holds `granted` lease units and records how long the acquirer blocked
/// waiting for them. The engine turns the grant into the [`Threading`]
/// budget passed to `Executor::infer_budgeted`.
#[derive(Debug)]
pub struct ComputeLease {
    scheduler: Arc<SchedulerInner>,
    granted: usize,
    waited: Duration,
}

impl ComputeLease {
    /// Lease units granted (threads on CPU, kernel slots on the GPU).
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Time spent blocked waiting for the grant.
    pub fn waited(&self) -> Duration {
        self.waited
    }

    /// The thread budget this lease authorizes.
    pub fn threading(&self) -> Threading {
        self.scheduler.device.threading_for(self.granted)
    }
}

impl Drop for ComputeLease {
    fn drop(&mut self) {
        if self.scheduler.dedicated {
            return; // dedicated capacity is never decremented
        }
        let mut free = self.scheduler.free.lock().unwrap();
        *free += self.granted;
        drop(free);
        // Wake everyone: grants are sized per-acquirer, so any waiter
        // may now be satisfiable.
        self.scheduler.cv.notify_all();
    }
}

#[derive(Debug)]
struct SchedulerInner {
    device: Device,
    free: Mutex<usize>,
    cv: Condvar,
    sharers: AtomicUsize,
    /// `true` for the legacy engine-private path: grants are immediate
    /// and unbounded, preserving pre-scheduler behavior exactly.
    dedicated: bool,
}

/// Grants bounded compute leases over one shared [`Device`].
///
/// One scheduler instance fronts one device; every engine placed on the
/// device shares the same `Arc<DeviceScheduler>`. Acquisition blocks
/// until at least one unit is free, then grants
/// `min(want, fair_share, free)` units where
/// `fair_share = max(1, capacity / sharers)` — work-conserving (a lone
/// engine still gets the whole device) but starvation-proof under
/// contention.
#[derive(Debug)]
pub struct DeviceScheduler {
    inner: Arc<SchedulerInner>,
}

impl DeviceScheduler {
    /// A scheduler sharing `device` between engines.
    pub fn new(device: Device) -> Self {
        DeviceScheduler {
            inner: Arc::new(SchedulerInner {
                device,
                free: Mutex::new(device.capacity()),
                cv: Condvar::new(),
                sharers: AtomicUsize::new(0),
                dedicated: false,
            }),
        }
    }

    /// The legacy engine-private mode: every acquire is granted in full,
    /// immediately, with zero wait. Engines constructed without an
    /// explicit scheduler get this, so single-tenant deployments behave
    /// exactly as before the device layer existed.
    pub fn dedicated() -> Self {
        DeviceScheduler {
            inner: Arc::new(SchedulerInner {
                device: Device::Cpu {
                    threads: usize::MAX,
                },
                free: Mutex::new(usize::MAX),
                cv: Condvar::new(),
                sharers: AtomicUsize::new(0),
                dedicated: true,
            }),
        }
    }

    /// The device being scheduled.
    pub fn device(&self) -> Device {
        self.inner.device
    }

    /// Whether this is the unbounded engine-private scheduler.
    pub fn is_dedicated(&self) -> bool {
        self.inner.dedicated
    }

    /// Registers one more engine sharing the device (affects fair share).
    pub fn register_sharer(&self) {
        self.inner.sharers.fetch_add(1, Ordering::Relaxed);
    }

    /// Unregisters a sharer (engine shutdown).
    pub fn unregister_sharer(&self) {
        let prev = self.inner.sharers.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "unregister without register");
    }

    /// Registered sharers.
    pub fn sharers(&self) -> usize {
        self.inner.sharers.load(Ordering::Relaxed)
    }

    /// Units currently unleased.
    pub fn free_units(&self) -> usize {
        if self.inner.dedicated {
            return usize::MAX;
        }
        *self.inner.free.lock().unwrap()
    }

    /// The per-lease grant cap at the current sharer count.
    fn fair_share(&self) -> usize {
        let sharers = self.sharers().max(1);
        (self.inner.device.capacity() / sharers).max(1)
    }

    /// Blocks until compute is available, then grants a lease of at most
    /// `want` threads (at least 1 unit). Never blocks on a dedicated
    /// scheduler.
    pub fn acquire(&self, want: usize) -> ComputeLease {
        if self.inner.dedicated {
            return ComputeLease {
                scheduler: Arc::clone(&self.inner),
                granted: want.max(1),
                waited: Duration::ZERO,
            };
        }
        let units = self.inner.device.units_for(want);
        let start = Instant::now();
        let mut free = self.inner.free.lock().unwrap();
        while *free == 0 {
            free = self.inner.cv.wait(free).unwrap();
        }
        let grant = units.min(self.fair_share()).min(*free).max(1);
        *free -= grant;
        ComputeLease {
            scheduler: Arc::clone(&self.inner),
            granted: grant,
            waited: start.elapsed(),
        }
    }

    /// Like [`DeviceScheduler::acquire`] but returns `None` instead of
    /// blocking when no unit is free.
    pub fn try_acquire(&self, want: usize) -> Option<ComputeLease> {
        if self.inner.dedicated {
            return Some(self.acquire(want));
        }
        let units = self.inner.device.units_for(want);
        let mut free = self.inner.free.lock().unwrap();
        if *free == 0 {
            return None;
        }
        let grant = units.min(self.fair_share()).min(*free).max(1);
        *free -= grant;
        Some(ComputeLease {
            scheduler: Arc::clone(&self.inner),
            granted: grant,
            waited: Duration::ZERO,
        })
    }
}

/// Per-model choice between the two ways to spend a shared device.
///
/// The batched dispatch loop asks the policy, each time it holds a
/// partial batch, how much longer to keep coalescing. `AlwaysBatch`
/// answers "the full [`crate::BatchConfig::max_delay`]" (the pre-device
/// behavior); `AlwaysColocate` answers "zero — run now on whatever slice
/// is free"; `Dynamic` splits the difference from SLA headroom, batch
/// fill, queue state, and device availability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ColocationPolicy {
    /// Always wait out the coalescing window to maximize batch fill.
    #[default]
    AlwaysBatch,
    /// Never wait: dispatch partial batches immediately and rely on
    /// co-location for throughput.
    AlwaysColocate,
    /// Batch when there is SLA headroom and the device is busy anyway;
    /// co-locate when the SLA is tight or waiting cannot improve fill.
    Dynamic {
        /// End-to-end latency budget a request should meet.
        sla: Duration,
    },
}

impl ColocationPolicy {
    /// How much longer the dispatcher should keep coalescing.
    ///
    /// * `max_delay` — the configured coalescing window;
    /// * `oldest_wait` — how long the oldest assembled request has
    ///   already been queued + coalesced;
    /// * `assembled` / `max_batch` — current and target batch fill;
    /// * `queue_empty` — whether more work is waiting behind the batch;
    /// * `device_free` — whether the shared device has a free unit now.
    ///
    /// Returns [`Duration::ZERO`] to dispatch immediately.
    pub fn coalesce_budget(
        &self,
        max_delay: Duration,
        oldest_wait: Duration,
        assembled: usize,
        max_batch: usize,
        queue_empty: bool,
        device_free: bool,
    ) -> Duration {
        match *self {
            ColocationPolicy::AlwaysBatch => max_delay,
            ColocationPolicy::AlwaysColocate => Duration::ZERO,
            ColocationPolicy::Dynamic { sla } => {
                if assembled >= max_batch {
                    return Duration::ZERO; // full: nothing to wait for
                }
                // SLA headroom left for the oldest request, after
                // reserving half the budget for service + reply.
                let headroom = (sla / 2).saturating_sub(oldest_wait);
                if headroom.is_zero() {
                    return Duration::ZERO; // already at risk: run now
                }
                if queue_empty && device_free {
                    // Nothing is arriving and compute sits idle —
                    // batching buys amortization of nothing.
                    return Duration::ZERO;
                }
                // Busy device or backlog: waiting is cheap (we'd queue
                // for the lease anyway) and improves fill. Spend at most
                // half the remaining headroom, never past the window.
                max_delay.min(headroom / 2)
            }
        }
    }

    /// Short stable name for tables and flags.
    pub fn name(&self) -> &'static str {
        match self {
            ColocationPolicy::AlwaysBatch => "batch",
            ColocationPolicy::AlwaysColocate => "colocate",
            ColocationPolicy::Dynamic { .. } => "dynamic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn dedicated_scheduler_grants_in_full_with_zero_wait() {
        let sched = DeviceScheduler::dedicated();
        assert!(sched.is_dedicated());
        let a = sched.acquire(8);
        let b = sched.acquire(16); // never blocks, even while `a` is held
        assert_eq!(a.granted(), 8);
        assert_eq!(b.granted(), 16);
        assert_eq!(a.waited(), Duration::ZERO);
        assert_eq!(a.threading(), Threading::new(8));
    }

    #[test]
    fn cpu_grants_are_bounded_by_fair_share_and_free_capacity() {
        let sched = DeviceScheduler::new(Device::Cpu { threads: 8 });
        sched.register_sharer();
        sched.register_sharer();
        // Two sharers on 8 threads: fair share is 4.
        let a = sched.acquire(8);
        assert_eq!(a.granted(), 4);
        assert_eq!(sched.free_units(), 4);
        // Second acquire fits in the remainder.
        let b = sched.acquire(8);
        assert_eq!(b.granted(), 4);
        assert_eq!(sched.free_units(), 0);
        // Capacity returns on drop.
        drop(a);
        assert_eq!(sched.free_units(), 4);
        drop(b);
        assert_eq!(sched.free_units(), 8);
    }

    #[test]
    fn lone_sharer_gets_the_whole_device() {
        let sched = DeviceScheduler::new(Device::Cpu { threads: 6 });
        sched.register_sharer();
        let lease = sched.acquire(16);
        assert_eq!(lease.granted(), 6, "work-conserving when alone");
    }

    #[test]
    fn acquire_blocks_until_a_lease_is_released() {
        let sched = Arc::new(DeviceScheduler::new(Device::Cpu { threads: 2 }));
        sched.register_sharer();
        let held = sched.acquire(2);
        assert_eq!(sched.free_units(), 0);
        assert!(sched.try_acquire(1).is_none(), "device exhausted");

        let blocked = Arc::new(AtomicBool::new(true));
        let waiter = {
            let sched = Arc::clone(&sched);
            let blocked = Arc::clone(&blocked);
            thread::spawn(move || {
                let lease = sched.acquire(1);
                blocked.store(false, Ordering::SeqCst);
                lease.granted()
            })
        };
        thread::sleep(Duration::from_millis(30));
        assert!(blocked.load(Ordering::SeqCst), "must wait while exhausted");
        drop(held);
        let granted = waiter.join().unwrap();
        assert!(granted >= 1);
        assert!(!blocked.load(Ordering::SeqCst));
    }

    #[test]
    fn waited_records_blocking_time() {
        let sched = Arc::new(DeviceScheduler::new(Device::Cpu { threads: 1 }));
        sched.register_sharer();
        let held = sched.acquire(1);
        let waiter = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || sched.acquire(1).waited())
        };
        thread::sleep(Duration::from_millis(25));
        drop(held);
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(15),
            "lease wait must cover the blocked interval, got {waited:?}"
        );
    }

    #[test]
    fn mps_device_grants_one_slot_per_lease() {
        let sched = DeviceScheduler::new(Device::SimGpuMps { slots: 2 });
        sched.register_sharer();
        let a = sched.acquire(8); // thread budget irrelevant on the GPU
        assert_eq!(a.granted(), 1);
        assert_eq!(a.threading(), Threading::SINGLE);
        let b = sched.acquire(8);
        assert_eq!(b.granted(), 1);
        assert!(sched.try_acquire(1).is_none(), "both slots occupied");
    }

    #[test]
    fn policy_extremes_answer_the_window_and_zero() {
        let window = Duration::from_millis(4);
        let b = ColocationPolicy::AlwaysBatch;
        let c = ColocationPolicy::AlwaysColocate;
        assert_eq!(
            b.coalesce_budget(window, Duration::ZERO, 1, 8, true, true),
            window
        );
        assert_eq!(
            c.coalesce_budget(window, Duration::ZERO, 1, 8, true, true),
            Duration::ZERO
        );
    }

    #[test]
    fn dynamic_policy_dispatches_when_full_tight_or_pointless() {
        let window = Duration::from_millis(4);
        let p = ColocationPolicy::Dynamic {
            sla: Duration::from_millis(20),
        };
        // Full batch: go.
        assert_eq!(
            p.coalesce_budget(window, Duration::ZERO, 8, 8, false, false),
            Duration::ZERO
        );
        // Oldest request has burned the SLA headroom: go.
        assert_eq!(
            p.coalesce_budget(window, Duration::from_millis(30), 1, 8, false, false),
            Duration::ZERO
        );
        // Idle queue + free device: batching amortizes nothing, go.
        assert_eq!(
            p.coalesce_budget(window, Duration::ZERO, 1, 8, true, true),
            Duration::ZERO
        );
        // Busy device, fresh request, partial batch: keep coalescing.
        let wait = p.coalesce_budget(window, Duration::ZERO, 1, 8, false, false);
        assert!(wait > Duration::ZERO && wait <= window);
    }
}
