//! The model registry: load models once at initialization, share them
//! read-only with every worker thread (§3.1 "Request Processing").

use std::collections::BTreeMap;
use std::sync::Arc;

use dnn::zoo::App;
use dnn::Network;

use crate::{DjinnError, Result};

/// A read-only store of named, executable networks.
///
/// The registry is immutable after construction (interior `Arc`s only), so
/// it is freely shared across worker threads without locking — exactly the
/// paper's design: "incoming requests using the same model are accepted
/// without needing to load their own copy of the model into memory".
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<Network>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with all seven Tonic Suite models, keyed by
    /// their lower-case app names (`imc`, `dig`, `face`, `asr`, `pos`,
    /// `chk`, `ner`).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn with_tonic_models() -> Result<Self> {
        let mut reg = ModelRegistry::new();
        for app in App::ALL {
            reg.register(app.name().to_lowercase(), dnn::zoo::network(app)?);
        }
        Ok(reg)
    }

    /// A registry pre-loaded with the miniature test models from
    /// [`dnn::zoo::tiny_test_zoo`] (`tiny-mnist`, `tiny-senna`,
    /// `tiny-lm`), keyed by
    /// their definition names. Integration tests use this instead of
    /// [`ModelRegistry::with_tonic_models`] so server startup and each
    /// request cost microseconds, not seconds.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn with_tiny_test_zoo() -> Result<Self> {
        let mut reg = ModelRegistry::new();
        for (i, def) in dnn::zoo::tiny_test_zoo().into_iter().enumerate() {
            let name = def.name().to_string();
            // Deterministic per-model seed: every process builds
            // bit-identical tiny models, like the Tonic zoo does.
            let net = dnn::Network::with_random_weights(def, 0x717E + i as u64)?;
            reg.register(name, net);
        }
        Ok(reg)
    }

    /// Loads every `*.djnm` model file in a directory, registering each
    /// under its file stem — how a production DjiNN instance is pointed at
    /// a model repository.
    ///
    /// # Errors
    ///
    /// Propagates directory/file I/O and model-format failures.
    pub fn from_dir(dir: &std::path::Path) -> Result<Self> {
        let mut reg = ModelRegistry::new();
        let entries = std::fs::read_dir(dir).map_err(DjinnError::Io)?;
        for entry in entries {
            let path = entry.map_err(DjinnError::Io)?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("djnm") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("model")
                .to_lowercase();
            let file = std::fs::File::open(&path).map_err(DjinnError::Io)?;
            let network = dnn::modelfile::load(std::io::BufReader::new(file))?;
            reg.register(name, network);
        }
        Ok(reg)
    }

    /// Registers (or replaces) a model under `name`. Registration happens
    /// at service initialization, before worker threads exist.
    pub fn register(&mut self, name: impl Into<String>, network: Network) {
        self.models.insert(name.into(), Arc::new(network));
    }

    /// Looks up a model.
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::UnknownModel`] when absent.
    pub fn get(&self, name: &str) -> Result<Arc<Network>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| DjinnError::UnknownModel {
                name: name.to_string(),
            })
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Keeps only the models named in `names`, dropping the rest — how a
    /// replica in a sharded deployment restricts a fully-loaded registry
    /// to its assigned slice (`djinn-server --only a,b`). Runs at service
    /// initialization, before worker threads exist, like
    /// [`ModelRegistry::register`].
    ///
    /// # Errors
    ///
    /// Returns [`DjinnError::UnknownModel`] if any requested name is not
    /// registered — a misspelled shard assignment should fail loudly at
    /// startup, not silently serve fewer models.
    pub fn retain_only<S: AsRef<str>>(&mut self, names: &[S]) -> Result<()> {
        for name in names {
            if !self.models.contains_key(name.as_ref()) {
                return Err(DjinnError::UnknownModel {
                    name: name.as_ref().to_string(),
                });
            }
        }
        self.models
            .retain(|k, _| names.iter().any(|n| n.as_ref() == k));
        Ok(())
    }

    /// Total bytes of model weights held in memory — what the paper's
    /// DjiNN instance keeps resident for its applications.
    pub fn resident_bytes(&self) -> usize {
        self.models
            .values()
            .map(|n| n.param_count() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tonic_registry_has_all_seven() {
        let reg = ModelRegistry::with_tonic_models().unwrap();
        assert_eq!(reg.len(), 7);
        for app in App::ALL {
            assert!(reg.get(&app.name().to_lowercase()).is_ok());
        }
    }

    #[test]
    fn tiny_test_zoo_registry_is_small_and_deterministic() {
        let a = ModelRegistry::with_tiny_test_zoo().unwrap();
        assert_eq!(
            a.names(),
            vec![
                "tiny-lm".to_string(),
                "tiny-mnist".to_string(),
                "tiny-senna".to_string()
            ]
        );
        // A few KB resident, not the Tonic zoo's ~0.8 GB.
        assert!(a.resident_bytes() < 64 * 1024, "{}", a.resident_bytes());
        let b = ModelRegistry::with_tiny_test_zoo().unwrap();
        assert_eq!(*a.get("tiny-senna").unwrap(), *b.get("tiny-senna").unwrap());
    }

    #[test]
    fn unknown_model_is_reported() {
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.get("nope"),
            Err(DjinnError::UnknownModel { .. })
        ));
    }

    #[test]
    fn models_are_shared_not_copied() {
        let reg = ModelRegistry::with_tonic_models().unwrap();
        let a = reg.get("imc").unwrap();
        let b = reg.get("imc").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn from_dir_loads_saved_models() {
        let dir = std::env::temp_dir().join(format!("djinn-models-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let net = dnn::zoo::network(App::Pos).unwrap();
        let file = std::fs::File::create(dir.join("POS.djnm")).unwrap();
        dnn::modelfile::save(&net, std::io::BufWriter::new(file)).unwrap();
        std::fs::write(dir.join("ignore.txt"), "not a model").unwrap();
        let reg = ModelRegistry::from_dir(&dir).unwrap();
        assert_eq!(reg.names(), vec!["pos".to_string()]);
        assert_eq!(*reg.get("pos").unwrap(), net);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retain_only_keeps_the_named_slice_and_rejects_typos() {
        let mut reg = ModelRegistry::with_tiny_test_zoo().unwrap();
        assert!(matches!(
            reg.retain_only(&["tiny-mnist", "ghost"]),
            Err(DjinnError::UnknownModel { .. })
        ));
        // A failed retain must not have dropped anything.
        assert_eq!(reg.len(), 3);
        reg.retain_only(&["tiny-mnist"]).unwrap();
        assert_eq!(reg.names(), vec!["tiny-mnist".to_string()]);
    }

    #[test]
    fn resident_bytes_counts_weights() {
        let reg = ModelRegistry::with_tonic_models().unwrap();
        // The seven Tonic models total roughly 193M params x 4 bytes.
        let gb = reg.resident_bytes() as f64 / 1e9;
        assert!((0.5..1.5).contains(&gb), "resident {gb} GB");
    }
}
