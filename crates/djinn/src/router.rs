//! The DjiNN scale-out front end: one router process fans client
//! requests out across a fleet of `djinn-server` replicas.
//!
//! The paper's thesis is DNN-as-a-service at warehouse scale; a single
//! DjiNN instance is the unit of that service, not its extent. This
//! module adds the tier above the instance: a TCP front end that speaks
//! the same protocol v4 wire format as a single server — clients connect
//! to it exactly as they would to one replica — and forwards each
//! `Infer` frame to a backing replica chosen by model affinity and load.
//!
//! # Architecture
//!
//! Unlike [`crate::DjinnServer`], which spends a thread (plus a reply
//! pump) per connection, the router is a **single-threaded readiness
//! loop over nonblocking sockets**: one thread holds hundreds of client
//! connections and a few persistent, pipelined upstream connections —
//! one per replica. Each tick it accepts new clients, drains readable
//! sockets through per-connection [`FrameReader`]s (whose cursor-based
//! buffers return `Ok(None)` on `WouldBlock`, exactly the contract a
//! poll loop needs), and flushes per-connection write buffers with
//! partial-write cursors. No epoll dependency: with the tiny socket
//! counts a serving tier uses (hundreds, not hundreds of thousands), a
//! scan-all-sockets tick plus a ~500 µs idle sleep is simpler and fast
//! enough to keep replicas saturated.
//!
//! # Forwarding and ID remapping
//!
//! Request IDs are client-scoped, so two clients both legitimately use
//! ID 1. The router therefore assigns each forwarded frame a fresh
//! **router-scoped upstream ID** and rewrites the 8 ID bytes *in place*
//! ([`crate::protocol::peek_request`] /
//! [`crate::protocol::rewrite_request_id`]) — the multi-MB tensor bytes
//! are never decoded, validated, or re-encoded; forwarding is one
//! `memcpy` into the upstream's write buffer plus an 8-byte patch. A
//! reply's ID ([`crate::protocol::response_id_slot`]) looks up the
//! originating connection and is patched back to the client's original
//! ID before the raw frame — `Output`, `Error`, and `Busy` alike — is
//! passed through. This reuses the v4 correlation machinery end to end:
//! replies may return out of any replica in any order and still land on
//! the right client with the right ID.
//!
//! # Replica selection
//!
//! The model map (which replicas serve which model) is learned from
//! `ListModels` at bootstrap, so models can be sharded across replicas
//! and hot models replicated. Among the live replicas serving the
//! requested model:
//!
//! * [`RoutePolicy::RoundRobin`] rotates blindly (the baseline);
//! * [`RoutePolicy::LoadAware`] polls each replica's v4 `Stats`
//!   telemetry on a short interval and scores each candidate as
//!   `polled backlog (queue depth + in flight) + recent sheds ×
//!   penalty + frames forwarded since the poll − replies returned
//!   since the poll`; between polls the send/done deltas keep the
//!   score live. Small candidate sets are scanned outright; larger
//!   ones use power-of-two-choices sampling, which is within a
//!   constant of the full scan at a fraction of the cost.
//!
//! `ListModels` and `Stats` from clients are answered locally: the model
//! list is the union across replicas, and stats are merged per model —
//! additive counters summed, percentile fields reported as the max
//! across replicas (a deliberate, documented approximation: percentiles
//! do not sum, and the max is the conservative bound a capacity planner
//! wants).
//!
//! # Failure
//!
//! A replica connection that errors is torn down: every request in
//! flight on it is answered to its client with a correlated `Error`
//! frame (the client sees a `Remote` failure on that request, not a
//! poisoned connection), and the router retries the replica at each
//! stats tick. Clients that disconnect mid-flight are forgotten;
//! replies that arrive for them are dropped by slot-generation check, so
//! a reused connection slot can never receive a predecessor's reply.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use crate::protocol::{
    is_busy_response, is_partial_chunk, peek_request, read_frame, response_id_slot, FrameReader,
    ModelStats, Request, RequestPeek, Response, MAX_FRAME,
};
use crate::{DjinnError, Result};

/// How the router picks among the live replicas serving a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Stats-driven least-loaded selection (the default).
    #[default]
    LoadAware,
    /// Blind rotation — the baseline the load-aware policy is measured
    /// against.
    RoundRobin,
}

impl std::str::FromStr for RoutePolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "load-aware" => Ok(RoutePolicy::LoadAware),
            "round-robin" => Ok(RoutePolicy::RoundRobin),
            other => Err(format!(
                "unknown policy `{other}` (expected load-aware or round-robin)"
            )),
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind for client connections; port 0 for ephemeral.
    pub bind_addr: String,
    /// Backing replica addresses. All must be reachable at startup —
    /// a misconfigured fleet should fail loudly, not serve a subset.
    pub replicas: Vec<SocketAddr>,
    /// Replica selection policy.
    pub policy: RoutePolicy,
    /// How often the router polls each replica's `Stats` telemetry (and
    /// retries dead replicas).
    pub stats_interval: Duration,
    /// Maximum concurrent client connections; further accepts are
    /// closed immediately.
    pub max_clients: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            bind_addr: "127.0.0.1:0".into(),
            replicas: Vec::new(),
            policy: RoutePolicy::LoadAware,
            stats_interval: Duration::from_millis(50),
            max_clients: 1024,
        }
    }
}

/// A running router.
///
/// Dropping the handle (or calling [`DjinnRouter::shutdown`]) stops the
/// event loop and closes every connection; in-flight requests on live
/// replicas are abandoned (their clients see EOF), so shut clients down
/// first in an orderly teardown.
#[derive(Debug)]
pub struct DjinnRouter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Idle-tick sleep: the scan loop's poll granularity when no socket had
/// traffic. Small enough to add negligible latency at the measured
/// throughputs, large enough to keep an idle router near 0% CPU.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Per-connection write-buffer bound. A client that stops draining its
/// socket while replies pile up is dropped once its buffer would exceed
/// this, so one stalled reader cannot grow router memory without bound.
const OUT_BUF_CAP: usize = 2 * MAX_FRAME;

/// Score penalty per shed observed between the last two stats polls: a
/// replica actively shedding load is in a worse state than its queue
/// depth alone admits, so recent sheds weigh extra against it.
const SHED_PENALTY: u64 = 4;

/// Timeout for the blocking bootstrap/reconnect handshake per replica.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

impl DjinnRouter {
    /// Starts the router: connects to every replica, learns its model
    /// list, binds the client listener, and spawns the event loop.
    ///
    /// # Errors
    ///
    /// Returns an error if `replicas` is empty, if any replica is
    /// unreachable or fails the `ListModels` handshake, or if the
    /// listener cannot bind.
    pub fn start(config: RouterConfig) -> Result<Self> {
        if config.replicas.is_empty() {
            return Err(DjinnError::Protocol {
                reason: "router needs at least one replica".into(),
            });
        }
        let mut upstreams = Vec::with_capacity(config.replicas.len());
        for &addr in &config.replicas {
            let (conn, models) = connect_upstream(addr)?;
            upstreams.push(Upstream {
                addr,
                conn: Some(conn),
                models,
                polled_backlog: 0,
                polled_shed: 0,
                shed_delta: 0,
                sent_total: 0,
                done_total: 0,
                sent_mark: 0,
                done_mark: 0,
                shed_live: 0,
                last_stats: Vec::new(),
                last_unknown: 0,
            });
        }
        let listener = TcpListener::bind(&config.bind_addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut core = Core {
            in_flight: HashMap::new(),
            control: HashMap::new(),
            next_id: 1,
            next_gen: 1,
            models: HashMap::new(),
            policy: config.policy,
            rr: 0,
            // Fixed xorshift seed: tie-breaking among equally-loaded
            // replicas gains nothing from entropy, and determinism makes
            // routing decisions reproducible in tests.
            rng: 0x9E37_79B9_7F4A_7C15,
        };
        rebuild_model_map(&mut core, &upstreams);
        let thread = {
            let stop = Arc::clone(&stop);
            let stats_interval = config.stats_interval;
            let max_clients = config.max_clients;
            std::thread::Builder::new()
                .name("djinn-router".into())
                .spawn(move || {
                    event_loop(listener, upstreams, core, stop, stats_interval, max_clients)
                })
                .map_err(DjinnError::Io)?
        };
        Ok(DjinnRouter {
            local_addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the event loop and joins it. The loop never blocks (the
    /// listener and every socket are nonblocking), so the flag is
    /// noticed within one idle tick.
    pub fn shutdown(mut self) {
        self.stop_event_loop();
    }

    fn stop_event_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DjinnRouter {
    fn drop(&mut self) {
        self.stop_event_loop();
    }
}

/// A write buffer with a partial-write cursor: frames are appended
/// whole, the socket drains as much as it will take per tick, and the
/// cursor remembers where the next flush resumes. Storage is reclaimed
/// whenever the buffer fully drains.
#[derive(Debug, Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends `[len | payload]` verbatim.
    fn push_frame(&mut self, payload: &[u8]) {
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Appends `[len | payload]` with the 8 ID bytes at `id_at` (an
    /// offset into the payload) rewritten to `id` — the zero-decode
    /// forwarding path.
    fn push_frame_with_id(&mut self, payload: &[u8], id_at: usize, id: u64) {
        let base = self.buf.len() + 4 + id_at;
        self.push_frame(payload);
        self.buf[base..base + 8].copy_from_slice(&id.to_le_bytes());
    }

    /// Encodes and appends a locally-produced response frame.
    fn push_response(&mut self, resp: &Response) -> Result<()> {
        let mut tmp = BytesMut::new();
        resp.encode_framed_into(&mut tmp)?;
        self.buf.extend_from_slice(&tmp);
        Ok(())
    }

    /// Writes as much buffered data as the socket accepts. Returns
    /// whether any bytes moved; `WouldBlock` is "done for this tick",
    /// not an error.
    fn flush<W: Write>(&mut self, mut w: W) -> std::io::Result<bool> {
        let mut progressed = false;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(progressed)
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(progressed)
    }
}

/// One client connection's state.
#[derive(Debug)]
struct ClientConn {
    stream: TcpStream,
    reader: FrameReader,
    out: WriteBuf,
    /// Slot-reuse guard: in-flight entries record (slot, gen), so a
    /// reply addressed to a connection that died cannot be delivered to
    /// whichever new client later reuses its slot.
    gen: u64,
}

/// One replica: its (possibly down) connection, its model list, and the
/// telemetry behind the load-aware score.
#[derive(Debug)]
struct Upstream {
    addr: SocketAddr,
    conn: Option<Conn>,
    /// Models this replica serves — learned at bootstrap, refreshed on
    /// reconnect, and retained while down so "unknown model" stays
    /// distinguishable from "no live replica serves it".
    models: Vec<String>,
    /// Σ(queue_depth + in_flight) across models at the last stats poll.
    polled_backlog: u64,
    /// Cumulative shed count at the last poll.
    polled_shed: u64,
    /// Sheds between the last two polls — the "actively shedding now"
    /// signal in the score.
    shed_delta: u64,
    /// Lifetime frames forwarded to this replica (never reset).
    sent_total: u64,
    /// Lifetime replies received from this replica (never reset).
    done_total: u64,
    /// `sent_total` at the moment the answered stats poll was *sent*:
    /// every request forwarded before that point is either inside the
    /// server's snapshot or already answered, so the live correction is
    /// only what was forwarded after the mark. Resetting a since-poll
    /// counter here instead would erase the requests forwarded while
    /// the poll was in flight and transiently underestimate load —
    /// flooding the weakest replica right after every poll.
    sent_mark: u64,
    /// `done_total` when the stats reply arrived: replies received
    /// after the snapshot complete requests the snapshot still counts.
    done_mark: u64,
    /// `Busy` replies seen since the last stats reply. A shedding
    /// replica completes requests instantly, so by outstanding count it
    /// looks idle; this live signal keeps its score up between polls,
    /// breaking the flood-the-shedder feedback loop.
    shed_live: u64,
    /// Last full stats snapshot, for locally-answered `Stats` requests.
    last_stats: Vec<ModelStats>,
    last_unknown: u64,
}

impl Upstream {
    /// Load estimate: polled backlog, corrected by what the router has
    /// itself sent since the poll was issued minus what came back since
    /// the snapshot, with recent sheds weighed extra. Lower is better.
    fn score(&self) -> u64 {
        let sent_delta = self.sent_total - self.sent_mark;
        let done_delta = self.done_total - self.done_mark;
        (self.polled_backlog + (self.shed_delta + self.shed_live) * SHED_PENALTY + sent_delta)
            .saturating_sub(done_delta)
    }
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    out: WriteBuf,
}

/// Where a forwarded request came from.
#[derive(Debug)]
struct InFlight {
    slot: usize,
    gen: u64,
    orig_id: u64,
    upstream: usize,
}

/// Routing state shared across the event loop's phases.
struct Core {
    /// Router-scoped upstream ID → originating request.
    in_flight: HashMap<u64, InFlight>,
    /// Router-issued control request (stats poll) → (upstream index,
    /// the upstream's `sent_total` when the poll was sent).
    control: HashMap<u64, (usize, u64)>,
    next_id: u64,
    next_gen: u64,
    /// Model name → replicas serving it (indices into `upstreams`).
    models: HashMap<String, Vec<usize>>,
    policy: RoutePolicy,
    rr: u64,
    rng: u64,
}

impl Core {
    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }

    fn xorshift(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

/// Blocking bootstrap handshake: connect, ask `ListModels`, return the
/// connection flipped to nonblocking plus the model list.
fn connect_upstream(addr: SocketAddr) -> Result<(Conn, Vec<String>)> {
    let stream = TcpStream::connect_timeout(&addr, HANDSHAKE_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut buf = BytesMut::new();
    Request::ListModels { request_id: 1 }.encode_framed_into(&mut buf)?;
    (&stream).write_all(&buf)?;
    let reply = read_frame(&stream)?;
    let names = match Response::decode(&reply)? {
        Response::Models { names, .. } => names,
        Response::Error { message, .. } => {
            return Err(DjinnError::Remote { message });
        }
        other => {
            return Err(DjinnError::Protocol {
                reason: format!("replica {addr} answered ListModels with {other:?}"),
            });
        }
    };
    stream.set_read_timeout(None)?;
    stream.set_nonblocking(true)?;
    Ok((
        Conn {
            stream,
            reader: FrameReader::new(),
            out: WriteBuf::default(),
        },
        names,
    ))
}

/// Rebuilds the model → replicas map from every upstream's model list
/// (live or not).
fn rebuild_model_map(core: &mut Core, upstreams: &[Upstream]) {
    core.models.clear();
    for (i, up) in upstreams.iter().enumerate() {
        for m in &up.models {
            core.models.entry(m.clone()).or_default().push(i);
        }
    }
}

/// Picks a live replica for `model`, or `None` when the model is
/// unknown or every replica serving it is down.
fn pick_replica(core: &mut Core, upstreams: &[Upstream], model: &str) -> Option<usize> {
    let cands = core.models.get(model)?;
    let live: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| upstreams[i].conn.is_some())
        .collect();
    if live.is_empty() {
        return None;
    }
    match core.policy {
        RoutePolicy::RoundRobin => {
            core.rr = core.rr.wrapping_add(1);
            Some(live[(core.rr % live.len() as u64) as usize])
        }
        RoutePolicy::LoadAware => {
            if live.len() <= 3 {
                // Tiny candidate set: the full scan costs less than the
                // sampling it would replace.
                live.iter()
                    .copied()
                    .min_by_key(|&i| upstreams[i].score())
                    .or(Some(live[0]))
            } else {
                // Power of two choices: sample two distinct candidates,
                // keep the less loaded — near-optimal balance without
                // scanning the fleet per request.
                let a = (core.xorshift() % live.len() as u64) as usize;
                let mut b = (core.xorshift() % (live.len() as u64 - 1)) as usize;
                if b >= a {
                    b += 1;
                }
                let (a, b) = (live[a], live[b]);
                Some(if upstreams[a].score() <= upstreams[b].score() {
                    a
                } else {
                    b
                })
            }
        }
    }
}

/// Sorted union of every upstream's model list.
fn model_union(core: &Core) -> Vec<String> {
    let mut names: Vec<String> = core.models.keys().cloned().collect();
    names.sort();
    names
}

/// Merges the latest per-replica stats snapshots into one fleet view:
/// additive counters sum; `max_latency_us` and the percentile fields
/// take the max across replicas (percentiles do not sum — the max is
/// the conservative bound, and the approximation is documented in the
/// module docs).
fn merged_stats(request_id: u64, upstreams: &[Upstream]) -> Response {
    let mut merged: BTreeMap<&str, ModelStats> = BTreeMap::new();
    let mut unknown = 0u64;
    for up in upstreams {
        unknown += up.last_unknown;
        for m in &up.last_stats {
            match merged.get_mut(m.model.as_str()) {
                None => {
                    merged.insert(m.model.as_str(), m.clone());
                }
                Some(acc) => {
                    acc.requests += m.requests;
                    acc.errors += m.errors;
                    acc.total_latency_us += m.total_latency_us;
                    acc.queue_depth += m.queue_depth;
                    acc.in_flight += m.in_flight;
                    acc.shed += m.shed;
                    acc.max_latency_us = acc.max_latency_us.max(m.max_latency_us);
                    acc.p50_queue_wait_us = acc.p50_queue_wait_us.max(m.p50_queue_wait_us);
                    acc.p99_queue_wait_us = acc.p99_queue_wait_us.max(m.p99_queue_wait_us);
                    acc.p50_batch_wait_us = acc.p50_batch_wait_us.max(m.p50_batch_wait_us);
                    acc.p99_batch_wait_us = acc.p99_batch_wait_us.max(m.p99_batch_wait_us);
                    acc.p50_service_us = acc.p50_service_us.max(m.p50_service_us);
                    acc.p99_service_us = acc.p99_service_us.max(m.p99_service_us);
                    acc.p50_wire_us = acc.p50_wire_us.max(m.p50_wire_us);
                    acc.p99_wire_us = acc.p99_wire_us.max(m.p99_wire_us);
                    acc.p50_lease_wait_us = acc.p50_lease_wait_us.max(m.p50_lease_wait_us);
                    acc.p99_lease_wait_us = acc.p99_lease_wait_us.max(m.p99_lease_wait_us);
                    acc.cache_hits += m.cache_hits;
                    acc.cache_misses += m.cache_misses;
                    acc.cache_evictions += m.cache_evictions;
                    acc.tokens_out += m.tokens_out;
                    acc.p50_token_gap_us = acc.p50_token_gap_us.max(m.p50_token_gap_us);
                    acc.p99_token_gap_us = acc.p99_token_gap_us.max(m.p99_token_gap_us);
                }
            }
        }
    }
    Response::Stats {
        request_id,
        unknown_model_requests: unknown,
        stats: merged.into_values().collect(),
    }
}

/// Tears down a dead replica connection: every request in flight on it
/// is answered to its client with a correlated `Error` frame, so the
/// client sees a per-request `Remote` failure instead of a hung call.
fn kill_upstream(
    u: usize,
    upstreams: &mut [Upstream],
    clients: &mut [Option<ClientConn>],
    core: &mut Core,
    reason: &str,
) {
    upstreams[u].conn = None;
    let orphaned: Vec<u64> = core
        .in_flight
        .iter()
        .filter(|(_, f)| f.upstream == u)
        .map(|(&rid, _)| rid)
        .collect();
    let message = format!(
        "replica {} connection lost mid-request: {reason}",
        upstreams[u].addr
    );
    for rid in orphaned {
        let Some(f) = core.in_flight.remove(&rid) else {
            continue;
        };
        if let Some(Some(cc)) = clients.get_mut(f.slot) {
            if cc.gen == f.gen {
                let _ = cc.out.push_response(&Response::Error {
                    request_id: f.orig_id,
                    message: message.clone(),
                });
            }
        }
    }
    // Router-issued control requests on the dead connection just vanish.
    core.control.retain(|_, &mut (uu, _)| uu != u);
    // Poll-delta state is stale once the connection is gone.
    let up = &mut upstreams[u];
    up.sent_mark = up.sent_total;
    up.done_mark = up.done_total;
    up.polled_backlog = 0;
}

/// What `pump_upstreams` decided about one inbound replica frame, split
/// out so the frame borrow ends before the upstream's counters mutate.
enum UpstreamPost {
    /// A reply was matched (and delivered if its client still exists);
    /// the flag says whether it was a `Busy` (shed) frame.
    Done { busy: bool },
    /// A non-final stream chunk was matched and delivered; the request
    /// stays in flight (its replica pin and `done_total` accounting
    /// settle on the final chunk).
    Partial,
    /// A stats-poll reply (with the upstream's `sent_total` recorded at
    /// poll-send time); apply to the upstream's telemetry.
    Control(u64, Option<Response>),
    /// Stale or uncorrelated frame — dropped.
    Ignored,
}

/// Drains every readable replica connection, delivering replies to
/// their originating clients. Returns whether any frame moved.
fn pump_upstreams(
    upstreams: &mut [Upstream],
    clients: &mut [Option<ClientConn>],
    core: &mut Core,
) -> bool {
    let mut any = false;
    for u in 0..upstreams.len() {
        let mut dead: Option<String> = None;
        loop {
            let post = {
                let up = &mut upstreams[u];
                let Some(conn) = up.conn.as_mut() else { break };
                match conn.reader.read_frame_ref(&conn.stream) {
                    Ok(None) => break,
                    Err(e) => {
                        dead = Some(e.to_string());
                        break;
                    }
                    Ok(Some(frame)) => {
                        any = true;
                        match response_id_slot(frame) {
                            Ok(Some((rid, id_at))) => {
                                // A non-final chunk leaves the stream
                                // registered: later chunks of the same
                                // stream must keep resolving to this
                                // client, and the request only retires
                                // (for load accounting) on its final
                                // chunk.
                                let partial = is_partial_chunk(frame);
                                let routed = if partial {
                                    core.in_flight.get(&rid).map(|f| (f.slot, f.gen, f.orig_id))
                                } else {
                                    core.in_flight
                                        .remove(&rid)
                                        .map(|f| (f.slot, f.gen, f.orig_id))
                                };
                                if let Some((slot, gen, orig_id)) = routed {
                                    if let Some(Some(cc)) = clients.get_mut(slot) {
                                        if cc.gen == gen && cc.out.pending() <= OUT_BUF_CAP {
                                            cc.out.push_frame_with_id(frame, id_at, orig_id);
                                        }
                                    }
                                    if partial {
                                        UpstreamPost::Partial
                                    } else {
                                        UpstreamPost::Done {
                                            busy: is_busy_response(frame),
                                        }
                                    }
                                } else if let Some((_, sent_at_send)) = core.control.remove(&rid) {
                                    UpstreamPost::Control(
                                        sent_at_send,
                                        Response::decode(frame).ok(),
                                    )
                                } else {
                                    UpstreamPost::Ignored
                                }
                            }
                            // An uncorrelated (legacy/id-0) frame from a
                            // v4 replica answers nothing we can route.
                            Ok(None) | Err(_) => UpstreamPost::Ignored,
                        }
                    }
                }
            };
            match post {
                UpstreamPost::Done { busy } => {
                    let up = &mut upstreams[u];
                    up.done_total += 1;
                    if busy {
                        up.shed_live += 1;
                    }
                }
                UpstreamPost::Control(
                    sent_at_send,
                    Some(Response::Stats {
                        unknown_model_requests,
                        stats,
                        ..
                    }),
                ) => {
                    let up = &mut upstreams[u];
                    let backlog: u64 = stats.iter().map(|m| m.queue_depth + m.in_flight).sum();
                    let shed: u64 = stats.iter().map(|m| m.shed).sum();
                    up.shed_delta = shed.saturating_sub(up.polled_shed);
                    up.polled_shed = shed;
                    up.polled_backlog = backlog;
                    up.sent_mark = sent_at_send;
                    up.done_mark = up.done_total;
                    up.shed_live = 0;
                    up.last_stats = stats;
                    up.last_unknown = unknown_model_requests;
                }
                UpstreamPost::Control(_, _) | UpstreamPost::Partial | UpstreamPost::Ignored => {}
            }
        }
        if let Some(reason) = dead {
            kill_upstream(u, upstreams, clients, core, &reason);
        }
    }
    any
}

/// What `pump_clients` decided about one inbound client frame.
enum ClientAct {
    /// Frame already copied into an upstream's write buffer.
    Forwarded,
    /// Answer locally with this response.
    Reply(Response),
    /// Answer, then drop the connection (undecodable input).
    ReplyAndClose(Response),
    /// Drop the connection silently (EOF / transport error).
    Close,
}

/// Drains every readable client connection: infers are forwarded with a
/// remapped ID, `ListModels`/`Stats` are answered locally. Returns
/// whether any frame moved.
fn pump_clients(
    clients: &mut [Option<ClientConn>],
    upstreams: &mut [Upstream],
    core: &mut Core,
) -> bool {
    let mut any = false;
    for (slot, client) in clients.iter_mut().enumerate() {
        loop {
            let act = {
                let Some(cc) = client.as_mut() else {
                    break;
                };
                let gen = cc.gen;
                match cc.reader.read_frame_ref(&cc.stream) {
                    Ok(None) => break,
                    Err(_) => ClientAct::Close,
                    Ok(Some(frame)) => {
                        any = true;
                        match peek_request(frame) {
                            // StreamInfer forwards exactly like Infer:
                            // same ID rewrite, same replica pin — the
                            // in-flight entry then routes every chunk of
                            // the stream back to this client.
                            Ok(
                                RequestPeek::Infer {
                                    model,
                                    request_id,
                                    id_at: Some(id_at),
                                }
                                | RequestPeek::StreamInfer {
                                    model,
                                    request_id,
                                    id_at: Some(id_at),
                                },
                            ) => match pick_replica(core, upstreams, model) {
                                Some(r) => {
                                    let rid = core.alloc_id();
                                    let conn = upstreams[r]
                                        .conn
                                        .as_mut()
                                        .expect("pick_replica returns live replicas");
                                    conn.out.push_frame_with_id(frame, id_at, rid);
                                    upstreams[r].sent_total += 1;
                                    core.in_flight.insert(
                                        rid,
                                        InFlight {
                                            slot,
                                            gen,
                                            orig_id: request_id,
                                            upstream: r,
                                        },
                                    );
                                    ClientAct::Forwarded
                                }
                                None if core.models.contains_key(model) => {
                                    ClientAct::Reply(Response::Error {
                                        request_id,
                                        message: format!("no live replica serves model '{model}'"),
                                    })
                                }
                                None => ClientAct::Reply(Response::Error {
                                    request_id,
                                    message: format!("unknown model '{model}'"),
                                }),
                            },
                            // A pre-v3 infer carries no ID: the router
                            // cannot correlate its reply back, so it is
                            // refused up front (id 0 → the legacy
                            // client's order-front rule attributes it).
                            Ok(
                                RequestPeek::Infer { id_at: None, .. }
                                | RequestPeek::StreamInfer { id_at: None, .. },
                            ) => ClientAct::Reply(Response::Error {
                                request_id: 0,
                                message: "router requires protocol v3+ infer frames \
                                              (no correlation ID to remap)"
                                    .into(),
                            }),
                            Ok(RequestPeek::ListModels { request_id, .. }) => {
                                ClientAct::Reply(Response::Models {
                                    request_id,
                                    names: model_union(core),
                                })
                            }
                            Ok(RequestPeek::Stats { request_id, .. }) => {
                                ClientAct::Reply(merged_stats(request_id, upstreams))
                            }
                            Err(e) => ClientAct::ReplyAndClose(Response::Error {
                                request_id: 0,
                                message: format!("undecodable request: {e}"),
                            }),
                        }
                    }
                }
            };
            match act {
                ClientAct::Forwarded => {}
                ClientAct::Reply(resp) => {
                    let cc = client.as_mut().expect("checked above");
                    let _ = cc.out.push_response(&resp);
                }
                ClientAct::ReplyAndClose(resp) => {
                    if let Some(cc) = client.as_mut() {
                        let _ = cc.out.push_response(&resp);
                        let _ = cc.out.flush(&cc.stream);
                    }
                    *client = None;
                    break;
                }
                ClientAct::Close => {
                    *client = None;
                    break;
                }
            }
        }
    }
    any
}

/// Accepts pending client connections into free slots. Beyond
/// `max_clients` live connections, accepts are closed on the spot.
fn accept_clients(
    listener: &TcpListener,
    clients: &mut Vec<Option<ClientConn>>,
    core: &mut Core,
    max_clients: usize,
) -> bool {
    let mut any = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                any = true;
                let live = clients.iter().filter(|c| c.is_some()).count();
                if live >= max_clients {
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let gen = core.next_gen;
                core.next_gen += 1;
                let cc = ClientConn {
                    stream,
                    reader: FrameReader::new(),
                    out: WriteBuf::default(),
                    gen,
                };
                match clients.iter_mut().find(|c| c.is_none()) {
                    Some(free) => *free = Some(cc),
                    None => clients.push(Some(cc)),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    any
}

/// Flushes every connection's write buffer; drops clients (and tears
/// down replicas) whose sockets fail. Returns whether any bytes moved.
fn flush_all(
    upstreams: &mut [Upstream],
    clients: &mut [Option<ClientConn>],
    core: &mut Core,
) -> bool {
    let mut any = false;
    for u in 0..upstreams.len() {
        let result = match upstreams[u].conn.as_mut() {
            Some(conn) => conn.out.flush(&conn.stream),
            None => Ok(false),
        };
        match result {
            Ok(p) => any |= p,
            Err(e) => kill_upstream(u, upstreams, clients, core, &e.to_string()),
        }
    }
    for entry in clients.iter_mut() {
        let drop_conn = match entry {
            Some(cc) => match cc.out.flush(&cc.stream) {
                Ok(p) => {
                    any |= p;
                    cc.out.pending() > OUT_BUF_CAP
                }
                Err(_) => true,
            },
            None => false,
        };
        if drop_conn {
            *entry = None;
        }
    }
    any
}

/// Enqueues a `Stats` poll on every live replica and retries dead ones
/// (blocking, bounded by [`HANDSHAKE_TIMEOUT`]).
fn stats_tick(upstreams: &mut [Upstream], core: &mut Core) {
    let mut remap = false;
    for (u, up) in upstreams.iter_mut().enumerate() {
        if up.conn.is_none() {
            if let Ok((conn, models)) = connect_upstream(up.addr) {
                remap = up.models != models || remap;
                up.models = models;
                up.conn = Some(conn);
                up.polled_backlog = 0;
                up.shed_delta = 0;
                up.sent_mark = up.sent_total;
                up.done_mark = up.done_total;
                up.shed_live = 0;
            } else {
                continue;
            }
        }
        let rid = core.alloc_id();
        let conn = up.conn.as_mut().expect("connected above");
        let mut tmp = BytesMut::new();
        if (Request::Stats { request_id: rid })
            .encode_framed_into(&mut tmp)
            .is_ok()
        {
            conn.out.buf.extend_from_slice(&tmp);
            core.control.insert(rid, (u, up.sent_total));
        }
    }
    if remap {
        rebuild_model_map(core, upstreams);
    }
}

/// The router's single-threaded readiness loop.
fn event_loop(
    listener: TcpListener,
    mut upstreams: Vec<Upstream>,
    mut core: Core,
    stop: Arc<AtomicBool>,
    stats_interval: Duration,
    max_clients: usize,
) {
    let mut clients: Vec<Option<ClientConn>> = Vec::new();
    // Fire the first poll immediately so load-aware routing has
    // telemetry before the first client arrives.
    let mut last_poll: Option<Instant> = None;
    while !stop.load(Ordering::SeqCst) {
        let due = last_poll.is_none_or(|t| t.elapsed() >= stats_interval);
        if due {
            last_poll = Some(Instant::now());
            stats_tick(&mut upstreams, &mut core);
        }
        let mut progress = accept_clients(&listener, &mut clients, &mut core, max_clients);
        progress |= pump_upstreams(&mut upstreams, &mut clients, &mut core);
        progress |= pump_clients(&mut clients, &mut upstreams, &mut core);
        progress |= flush_all(&mut upstreams, &mut clients, &mut core);
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(model: &str, depth: u64, in_flight: u64, shed: u64) -> ModelStats {
        ModelStats {
            model: model.into(),
            requests: 10,
            errors: 1,
            total_latency_us: 1000,
            max_latency_us: 300,
            queue_depth: depth,
            in_flight,
            shed,
            p50_queue_wait_us: 5,
            p99_queue_wait_us: 50,
            p50_batch_wait_us: 2,
            p99_batch_wait_us: 20,
            p50_service_us: 100,
            p99_service_us: 200,
            p50_wire_us: 1,
            p99_wire_us: 10,
            p50_lease_wait_us: 0,
            p99_lease_wait_us: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            tokens_out: 0,
            p50_token_gap_us: 0,
            p99_token_gap_us: 0,
        }
    }

    fn upstream(models: &[&str]) -> Upstream {
        Upstream {
            addr: "127.0.0.1:1".parse().unwrap(),
            conn: None,
            models: models.iter().map(|s| s.to_string()).collect(),
            polled_backlog: 0,
            polled_shed: 0,
            shed_delta: 0,
            sent_total: 0,
            done_total: 0,
            sent_mark: 0,
            done_mark: 0,
            shed_live: 0,
            last_stats: Vec::new(),
            last_unknown: 0,
        }
    }

    fn mk_core(policy: RoutePolicy, upstreams: &[Upstream]) -> Core {
        let mut core = Core {
            in_flight: HashMap::new(),
            control: HashMap::new(),
            next_id: 1,
            next_gen: 1,
            models: HashMap::new(),
            policy,
            rr: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        };
        rebuild_model_map(&mut core, upstreams);
        core
    }

    /// A live upstream for selection tests: the TCP half is a throwaway
    /// loopback connection (never read or written).
    fn live(models: &[&str]) -> (Upstream, TcpListener) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut up = upstream(models);
        up.conn = Some(Conn {
            stream,
            reader: FrameReader::new(),
            out: WriteBuf::default(),
        });
        (up, listener)
    }

    #[test]
    fn write_buf_survives_partial_writes() {
        let mut wb = WriteBuf::default();
        wb.push_frame(b"hello");
        wb.push_frame_with_id(&[0u8; 12], 2, 0x0102_0304_0506_0708);
        // A writer that takes 3 bytes per call, then blocks forever.
        struct Dribble {
            taken: Vec<u8>,
            calls: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls > 4 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(3);
                self.taken.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = Dribble {
            taken: Vec::new(),
            calls: 0,
        };
        assert!(wb.flush(&mut w).unwrap());
        assert_eq!(w.taken.len(), 12);
        assert!(wb.pending() > 0);
        // Unblock: the rest drains and the buffer resets.
        w.calls = 0;
        while wb.pending() > 0 {
            w.calls = 0;
            wb.flush(&mut w).unwrap();
        }
        assert_eq!(&w.taken[..4], &5u32.to_le_bytes());
        assert_eq!(&w.taken[4..9], b"hello");
        assert_eq!(&w.taken[9..13], &12u32.to_le_bytes());
        let mut expect = [0u8; 12];
        expect[2..10].copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&w.taken[13..], &expect);
        assert_eq!(wb.buf.len(), 0);
    }

    #[test]
    fn pick_replica_honors_model_affinity_and_liveness() {
        let (up0, _l0) = live(&["a", "b"]);
        let (up1, _l1) = live(&["b"]);
        let dead = upstream(&["c"]);
        let ups = vec![up0, up1, dead];
        let mut core = mk_core(RoutePolicy::RoundRobin, &ups);
        // `a` only on replica 0; `b` on both; `c` only on the dead one.
        for _ in 0..4 {
            assert_eq!(pick_replica(&mut core, &ups, "a"), Some(0));
        }
        let picks: Vec<_> = (0..4)
            .filter_map(|_| pick_replica(&mut core, &ups, "b"))
            .collect();
        assert!(picks.contains(&0) && picks.contains(&1), "{picks:?}");
        assert_eq!(pick_replica(&mut core, &ups, "c"), None);
        assert!(core.models.contains_key("c"), "dead models stay mapped");
        assert_eq!(pick_replica(&mut core, &ups, "nope"), None);
    }

    #[test]
    fn load_aware_prefers_the_less_loaded_replica() {
        let (mut up0, _l0) = live(&["m"]);
        let (mut up1, _l1) = live(&["m"]);
        up0.polled_backlog = 40;
        up1.polled_backlog = 2;
        let ups = vec![up0, up1];
        let mut core = mk_core(RoutePolicy::LoadAware, &ups);
        for _ in 0..8 {
            assert_eq!(pick_replica(&mut core, &ups, "m"), Some(1));
        }
        // Recent sheds penalize beyond raw backlog.
        let (mut up0, _l0) = live(&["m"]);
        let (mut up1, _l1) = live(&["m"]);
        up0.polled_backlog = 10;
        up1.polled_backlog = 8;
        up1.shed_delta = 5; // 8 + 5*4 = 28 > 10
        let ups = vec![up0, up1];
        let mut core = mk_core(RoutePolicy::LoadAware, &ups);
        assert_eq!(pick_replica(&mut core, &ups, "m"), Some(0));
    }

    #[test]
    fn score_freshens_between_polls_with_send_and_done_deltas() {
        let mut up = upstream(&["m"]);
        up.polled_backlog = 10;
        up.sent_total = 7;
        up.done_total = 3;
        assert_eq!(up.score(), 14);
        // Requests forwarded while the poll was in flight stay counted:
        // the marks, not a reset, define "since the poll".
        up.sent_mark = 2;
        up.done_mark = 3;
        assert_eq!(up.score(), 15);
        // More replies than sends since the marks saturates at zero
        // rather than underflowing.
        up.sent_total = 8;
        up.done_total = 30;
        up.sent_mark = 8;
        up.done_mark = 3;
        assert_eq!(up.score(), 0);
    }

    #[test]
    fn merged_stats_sums_counters_and_maxes_percentiles() {
        let mut up0 = upstream(&["m", "x"]);
        let mut up1 = upstream(&["m"]);
        up0.last_stats = vec![stats("m", 3, 1, 2), stats("x", 1, 0, 0)];
        up0.last_unknown = 4;
        let mut s1 = stats("m", 5, 2, 1);
        s1.max_latency_us = 900;
        s1.p99_service_us = 700;
        up1.last_stats = vec![s1];
        up1.last_unknown = 1;
        let ups = vec![up0, up1];
        let Response::Stats {
            request_id,
            unknown_model_requests,
            stats,
        } = merged_stats(42, &ups)
        else {
            panic!("merged_stats must answer with Stats");
        };
        assert_eq!(request_id, 42);
        assert_eq!(unknown_model_requests, 5);
        assert_eq!(stats.len(), 2);
        let m = stats.iter().find(|s| s.model == "m").unwrap();
        assert_eq!(m.requests, 20);
        assert_eq!(m.queue_depth, 8);
        assert_eq!(m.in_flight, 3);
        assert_eq!(m.shed, 3);
        assert_eq!(m.max_latency_us, 900, "max, not sum");
        assert_eq!(m.p99_service_us, 700, "max, not sum");
        assert_eq!(m.total_latency_us, 2000, "sum");
    }
}
