//! The DjiNN TCP server: accept loop, one worker thread per connection,
//! shared read-only model registry, one [`InferenceEngine`] per model.
//!
//! Every inference request — batched or not — goes through its model's
//! engine: connection workers only admit jobs, never touch the executor
//! directly, and never block on a ticket. Each connection is
//! **full-duplex**: the worker reads and admits frames while a small
//! per-connection *reply pump* thread writes completions back as the
//! engines finish them — possibly out of order, which protocol v4's
//! ID-correlated frames make safe. Admission is non-blocking; a full
//! queue answers with a `Busy` frame (echoing the request's ID) instead
//! of wedging the connection worker.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use gpusim::queueing::LatencyHistogram;
use parking_lot::Mutex;
use tensor::{Tensor, Threading};

use bytes::BytesMut;

use crate::device::{ColocationPolicy, Device, DeviceScheduler};
use crate::protocol::{FrameReader, ModelStats, Request, Response, StreamMode};
use crate::trace::ServerTrace;
use crate::{
    BatchConfig, CpuExecutor, DelayExecutor, DispatchPolicy, DjinnError, EngineConfig, Executor,
    InferenceEngine, ModelRegistry, Result, RoutedReply, SimGpuExecutor,
};
use dnn::cache::{CacheMode, InferenceCache};

/// Which compute backend the server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Real math, measured CPU latency (the paper's baseline).
    #[default]
    Cpu,
    /// Real math, modeled K40 latency (the GPU substitution).
    SimGpu,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port in tests.
    pub bind_addr: String,
    /// Compute backend.
    pub backend: Backend,
    /// Per-model batching; `None` executes each request alone.
    pub batching: Option<BatchConfig>,
    /// Per-model `max_batch` overrides on top of `batching` — how the
    /// Table 3 per-application batch sizes are deployed (e.g. 64 for the
    /// NLP models but only 2 for FACE).
    pub batch_overrides: BTreeMap<String, usize>,
    /// Worker threads the CPU backend spends on each forward pass
    /// (batch sharding or in-layer GEMM strips, chosen per model).
    /// `1` keeps inference sequential; ignored by the simulated GPU.
    pub threads: usize,
    /// Per-model admission bound: requests beyond this many queued are
    /// answered with `Busy` instead of queued (load shedding).
    pub queue_capacity: usize,
    /// Dispatch workers per model when requests run unbatched
    /// (`batching: None`); a batching engine always uses one coalescing
    /// worker.
    pub engine_workers: usize,
    /// Extra per-call service time, modeling a device-bound backend (see
    /// [`crate::DelayExecutor`]). `None` runs the backend as-is. Used by
    /// scale-out experiments so colocated replicas on a small host don't
    /// contend for CPU and hide the serving-tier behavior under test.
    pub service_delay: Option<Duration>,
    /// Shared-device capacity. `None` keeps the legacy engine-private
    /// model (each engine spends `threads` as if alone). `Some(n)` puts
    /// every model's engine on one [`DeviceScheduler`] over an `n`-unit
    /// device — `n` CPU threads, or `n` MPS kernel slots on the
    /// simulated GPU — so dispatches acquire bounded compute leases and
    /// lease waits become a visible trace stage.
    pub device_capacity: Option<usize>,
    /// Batch-more vs. co-locate-more policy for batched engines (see
    /// [`ColocationPolicy`]). Only meaningful with `batching` set;
    /// defaults to the classic always-batch coalescing loop.
    pub colocation: ColocationPolicy,
    /// Content-keyed inference caching (see [`dnn::cache`]). `Off`
    /// disables caching entirely — pre-cache behavior, no per-request
    /// overhead beyond a `None` check.
    pub cache_mode: CacheMode,
    /// Total cache byte budget, split evenly across the registered
    /// models (each engine gets a private cache; outputs never cross
    /// model boundaries).
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            backend: Backend::Cpu,
            batching: None,
            batch_overrides: BTreeMap::new(),
            threads: 1,
            queue_capacity: 128,
            engine_workers: 4,
            service_delay: None,
            device_capacity: None,
            colocation: ColocationPolicy::AlwaysBatch,
            cache_mode: CacheMode::Off,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// The paper's deployment: batching on, with each Tonic model's
    /// Table 3 batch size.
    pub fn tonic_batching() -> Self {
        let mut batch_overrides = BTreeMap::new();
        for app in dnn::zoo::App::ALL {
            batch_overrides.insert(app.name().to_lowercase(), app.service_meta().batch_size);
        }
        ServerConfig {
            batching: Some(BatchConfig::default()),
            batch_overrides,
            ..ServerConfig::default()
        }
    }
}

/// A running DjiNN service.
///
/// Dropping the handle (or calling [`DjinnServer::shutdown`]) stops the
/// accept loop, lets in-flight connections finish their current request,
/// and joins every worker thread before returning — no worker outlives
/// the handle.
#[derive(Debug)]
pub struct DjinnServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// How often an idle connection re-checks the stop flag. A fired read
/// timeout is a clean "no frame yet" signal (see [`FrameReader`]), so
/// this bounds shutdown latency without risking stream desync.
const READ_POLL: Duration = Duration::from_millis(100);

/// Per-write-call stall bound on responses, so a worker writing to a
/// client that never drains its socket cannot wedge shutdown forever. A
/// slow-but-live reader keeps making progress within each window; only a
/// fully stalled one errors out and drops the connection.
const WRITE_STALL: Duration = Duration::from_secs(5);

#[derive(Default)]
struct StatsAcc {
    requests: u64,
    errors: u64,
    total_latency_us: u64,
    max_latency_us: u64,
    /// Response-write durations for successful inferences — the slice of
    /// the wire the server's clock can see.
    wire: LatencyHistogram,
}

struct Shared {
    registry: ModelRegistry,
    engines: BTreeMap<String, InferenceEngine>,
    stats: Mutex<BTreeMap<String, StatsAcc>>,
    /// Infer requests rejected for naming an unregistered model. One
    /// aggregate counter: unknown names never create stats-map entries,
    /// so a client spraying random names cannot grow server memory.
    unknown_models: AtomicU64,
    stop: Arc<AtomicBool>,
}

impl DjinnServer {
    /// Starts the service with the given registry.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind.
    pub fn start(registry: ModelRegistry, config: ServerConfig) -> Result<Self> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let executor: Arc<dyn Executor> = match (config.backend, config.service_delay) {
            (Backend::Cpu, None) => Arc::new(CpuExecutor::new(Threading::new(config.threads))),
            (Backend::SimGpu, None) => Arc::new(SimGpuExecutor::default()),
            (Backend::Cpu, Some(d)) => Arc::new(DelayExecutor::new(
                CpuExecutor::new(Threading::new(config.threads)),
                d,
            )),
            (Backend::SimGpu, Some(d)) => {
                Arc::new(DelayExecutor::new(SimGpuExecutor::default(), d))
            }
        };
        // One scheduler fronts the device all engines share; without
        // --device-threads each engine gets the legacy dedicated
        // (unbounded) scheduler and behavior is exactly pre-v5.
        let scheduler = Arc::new(match config.device_capacity {
            Some(units) => DeviceScheduler::new(match config.backend {
                Backend::Cpu => Device::Cpu { threads: units },
                Backend::SimGpu => Device::SimGpuMps { slots: units },
            }),
            None => DeviceScheduler::dedicated(),
        });
        // Engines are created eagerly at initialization, one per model,
        // mirroring DjiNN's load-everything-up-front design. Batched and
        // unbatched serving are just dispatch policies of the same engine.
        let mut engines = BTreeMap::new();
        let model_count = registry.names().len().max(1);
        let per_model_cache_bytes = (config.cache_bytes / model_count).max(1);
        for name in registry.names() {
            let net = registry.get(&name)?;
            let policy = match config.batching {
                Some(bc) => {
                    let mut model_bc = bc;
                    if let Some(&max_batch) = config.batch_overrides.get(&name) {
                        model_bc.max_batch = max_batch;
                    }
                    DispatchPolicy::Batched(model_bc)
                }
                None => DispatchPolicy::Immediate,
            };
            let engine_config = EngineConfig {
                policy,
                queue_capacity: config.queue_capacity,
                workers: config.engine_workers,
                colocation: config.colocation,
            };
            let cache = InferenceCache::new(config.cache_mode, per_model_cache_bytes).map(Arc::new);
            let engine = InferenceEngine::start_cached(
                name.clone(),
                net,
                Arc::clone(&executor),
                engine_config,
                Arc::clone(&scheduler),
                cache,
            );
            engines.insert(name, engine);
        }
        let shared = Arc::new(Shared {
            registry,
            engines,
            stats: Mutex::new(BTreeMap::new()),
            unknown_models: AtomicU64::new(0),
            stop: Arc::clone(&stop),
        });
        let accept_stop = Arc::clone(&stop);
        let workers = Arc::new(Mutex::new(Vec::new()));
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::Builder::new()
            .name("djinn-accept".into())
            .spawn(move || accept_loop(&listener, &accept_stop, &shared, &accept_workers))
            .expect("spawning accept thread");
        Ok(DjinnServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// Starts the service pre-loaded with all seven Tonic models.
    ///
    /// # Errors
    ///
    /// Propagates bind and model-construction failures.
    pub fn start_with_tonic_models(config: ServerConfig) -> Result<Self> {
        Self::start(ModelRegistry::with_tonic_models()?, config)
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections, then joins the accept thread and every
    /// connection worker. Workers notice the stop flag within one read
    /// poll (100 ms) when idle and after their in-flight request
    /// otherwise, so teardown is bounded and nothing races test (or
    /// process) exit.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(wake_addr(self.local_addr));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for h in workers {
            let _ = h.join();
        }
    }
}

/// The address the shutdown path dials to wake a blocked `accept`.
///
/// `local_addr()` on a wildcard bind reports the *unspecified* address
/// (`0.0.0.0:PORT` / `[::]:PORT`), which is a listen address, not a
/// destination: connecting to it is platform-dependent (outright refused
/// on some systems), and when it fails the accept loop stays blocked
/// until an unrelated client happens to connect. The listener is always
/// reachable via loopback on the bound port, so map an unspecified IP to
/// its family's loopback and leave concrete addresses untouched.
fn wake_addr(local: SocketAddr) -> SocketAddr {
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
    match local.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), local.port())
        }
        IpAddr::V6(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), local.port())
        }
        _ => local,
    }
}

impl Drop for DjinnServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    shared: &Arc<Shared>,
    workers: &Mutex<Vec<JoinHandle<()>>>,
) {
    // Bounded backoff for persistent accept errors (EMFILE, ENFILE):
    // without it the loop hot-spins on the same failure.
    let mut backoff = Duration::from_millis(5);
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => {
                backoff = Duration::from_millis(5);
                pair
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(200));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One worker thread per connection — the paper's request model.
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("djinn-worker".into())
            .spawn(move || connection_loop(stream, &shared));
        if let Ok(h) = handle {
            let mut workers = workers.lock();
            // Reap handles of connections that already finished so a
            // long-lived server doesn't accumulate them without bound.
            workers.retain(|w| !w.is_finished());
            workers.push(h);
        }
    }
}

/// Bound on the per-connection completion channel between engine
/// dispatch workers and the reply pump. Deep enough that a draining pump
/// never stalls dispatch in practice; if a stalled client does fill it,
/// engine workers briefly block on send — backpressure, not loss.
const PUMP_CHANNEL: usize = 1024;

/// What the connection worker remembers about an admitted Infer until
/// its completion comes back through the reply pump. Keyed by a
/// per-connection token (not the client's request ID, which may be 0 or
/// reused), allocated before admission.
#[derive(Clone)]
struct PendingInfer {
    request_id: u64,
    model: String,
    /// The server-read span mark: everything from here to response
    /// encoding is the server's view of the request, in its own clock.
    received: Instant,
    /// `true` for a StreamInfer: completions become `Chunk` frames, and
    /// the entry stays registered until the terminal reply arrives.
    streaming: bool,
}

/// The write half of a connection, shared by the worker (control and
/// rejection frames) and the reply pump (completions). With v4's
/// ID-correlated frames the interleaving order is free; only frame
/// *atomicity* matters, which the mutex provides.
struct ConnWriter {
    stream: TcpStream,
    /// Per-connection scratch for framed encoding: each response is laid
    /// out as one `[len | payload]` image here and sent with a single
    /// `write_all` — one syscall per frame, zero steady-state
    /// allocations once the buffer has grown to the connection's working
    /// frame size.
    scratch: BytesMut,
    /// Set after any failed write: the frame may have been partially
    /// sent, so the byte stream can no longer be trusted and every
    /// later write is refused.
    poisoned: bool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream,
            scratch: BytesMut::new(),
            poisoned: false,
        }
    }

    /// Encodes and writes one response frame; returns `false` once the
    /// connection is poisoned (now or previously).
    fn write_response(&mut self, response: &Response) -> bool {
        if self.poisoned {
            return false;
        }
        if let Err(e) = response.encode_framed_into(&mut self.scratch) {
            // Unencodable response (e.g. oversized model name in a list):
            // degrade to a clamped error frame carrying the same ID
            // rather than dropping the response.
            let fallback = Response::Error {
                request_id: response.request_id(),
                message: e.to_string(),
            };
            if fallback.encode_framed_into(&mut self.scratch).is_err() {
                self.poisoned = true;
                return false;
            }
        }
        let sent = self
            .stream
            .write_all(&self.scratch)
            .and_then(|()| self.stream.flush());
        if sent.is_err() {
            self.poisoned = true;
            return false;
        }
        true
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Bounded reads so workers poll the stop flag while idle; the
    // FrameReader keeps partial bytes across fired timeouts, so a slow
    // writer mid-frame never desyncs the stream (see protocol.rs).
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_STALL));
    // Disable Nagle: response frames go out as single writes, and
    // letting the kernel hold one back waiting for the client's delayed
    // ACK pins small-frame latency at ~40 ms (the client sets this on
    // its end already; both halves of the fd share the option).
    let _ = stream.set_nodelay(true);
    // Split the socket: the worker keeps the read half, and a cloned
    // write half (same fd, same timeouts) goes behind a mutex shared
    // with the reply pump.
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(ConnWriter::new(w))),
        Err(_) => return,
    };
    let pending: Arc<Mutex<HashMap<u64, PendingInfer>>> = Arc::new(Mutex::new(HashMap::new()));
    let (pump_tx, pump_rx) = bounded::<RoutedReply>(PUMP_CHANNEL);
    let pump = {
        let shared = Arc::clone(shared);
        let pending = Arc::clone(&pending);
        let writer = Arc::clone(&writer);
        std::thread::Builder::new()
            .name("djinn-reply-pump".into())
            .spawn(move || reply_pump(&pump_rx, &pending, &writer, &shared))
    };
    let Ok(pump) = pump else { return };
    let mut stream = stream;
    let mut reader = FrameReader::new();
    let mut next_token: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) || writer.lock().poisoned {
            break;
        }
        // Frames are decoded straight out of the reader's buffer (no
        // per-frame payload copy); Request::decode produces the owned
        // tensor the engine needs.
        let decoded = match reader.read_frame_ref(&mut stream) {
            Ok(Some(p)) => Request::decode(p),
            Ok(None) => continue, // no complete frame yet; poll stop again
            Err(_) => break,      // EOF or protocol break: drop the connection
        };
        let received = Instant::now();
        let immediate = match decoded {
            // Infer is full-duplex: admit to the engine and go read the
            // next frame — the reply pump answers when the job
            // completes, possibly after later requests.
            Ok(Request::Infer {
                model,
                input,
                request_id,
            }) => {
                let token = next_token;
                next_token += 1;
                admit_infer(
                    shared, &pending, &pump_tx, token, model, input, request_id, received, None,
                )
            }
            // StreamInfer admits the same way; the engine answers with N
            // routed chunks and the pump writes each as a Chunk frame.
            Ok(Request::StreamInfer {
                model,
                input,
                request_id,
                mode,
            }) => {
                let token = next_token;
                next_token += 1;
                admit_infer(
                    shared,
                    &pending,
                    &pump_tx,
                    token,
                    model,
                    input,
                    request_id,
                    received,
                    Some(mode),
                )
            }
            Ok(Request::ListModels { request_id }) => Some(Response::Models {
                request_id,
                names: shared.registry.names(),
            }),
            Ok(Request::Stats { request_id }) => Some(stats_response(shared, request_id)),
            // An undecodable request has no recoverable ID; 0 marks the
            // error as uncorrelated.
            Err(e) => Some(Response::Error {
                request_id: 0,
                message: e.to_string(),
            }),
        };
        if let Some(response) = immediate {
            if !writer.lock().write_response(&response) {
                break;
            }
        }
    }
    // Dropping the worker's sender lets the pump drain what the engines
    // still owe this connection (every admitted job is answered, even
    // during shutdown) and exit once the channel disconnects.
    drop(pump_tx);
    let _ = pump.join();
}

/// Admits one decoded Infer or StreamInfer (`stream: Some(mode)`).
/// `Some(response)` means the request was answered synchronously
/// (unknown model, shed, shutdown, invalid stream mode) and nothing was
/// admitted; `None` means the job is in flight and the reply pump will
/// answer under `token` when it completes — once for an Infer, once per
/// chunk for a stream.
#[allow(clippy::too_many_arguments)]
fn admit_infer(
    shared: &Shared,
    pending: &Mutex<HashMap<u64, PendingInfer>>,
    pump_tx: &Sender<RoutedReply>,
    token: u64,
    model: String,
    input: Tensor,
    request_id: u64,
    received: Instant,
    stream: Option<StreamMode>,
) -> Option<Response> {
    let Some(engine) = shared.engines.get(&model) else {
        // Reject before touching the stats map: unknown names bump one
        // aggregate counter and never create per-model entries, so a
        // client spraying names cannot grow the map without bound.
        shared.unknown_models.fetch_add(1, Ordering::Relaxed);
        return Some(Response::Error {
            request_id,
            message: DjinnError::UnknownModel { name: model }.to_string(),
        });
    };
    // Register the token before admission: the completion may race the
    // return of `submit_routed`.
    pending.lock().insert(
        token,
        PendingInfer {
            request_id,
            model,
            received,
            streaming: stream.is_some(),
        },
    );
    let admitted = match stream {
        Some(mode) => engine.submit_stream_routed(input, token, mode, pump_tx.clone()),
        None => engine.submit_routed(input, token, pump_tx.clone()),
    };
    match admitted {
        Ok(()) => None,
        Err(e) => {
            // Nothing was admitted; no reply will arrive for the token.
            pending.lock().remove(&token);
            Some(match e {
                DjinnError::Busy { model, queue_depth } => Response::Busy {
                    request_id,
                    model,
                    queue_depth: queue_depth.min(u32::MAX as usize) as u32,
                },
                other => Response::Error {
                    request_id,
                    message: other.to_string(),
                },
            })
        }
    }
}

/// Receives engine completions for one connection and writes them back
/// in completion order — the write side of the full-duplex connection.
/// Runs until every sender is gone (the worker's handle plus the clone
/// each in-flight job holds) and the channel drains, so no admitted job
/// is ever dropped unanswered.
fn reply_pump(
    rx: &Receiver<RoutedReply>,
    pending: &Mutex<HashMap<u64, PendingInfer>>,
    writer: &Mutex<ConnWriter>,
    shared: &Shared,
) {
    while let Ok(RoutedReply {
        token,
        seq,
        last,
        result,
    }) = rx.recv()
    {
        // A streaming job completes many times under one token: the
        // entry stays registered until its terminal reply.
        let looked_up = if last {
            pending.lock().remove(&token)
        } else {
            pending.lock().get(&token).cloned()
        };
        let Some(p) = looked_up else {
            continue; // unreachable: tokens are registered before admission
        };
        let elapsed_us = p.received.elapsed().as_micros() as u64;
        // Stats count requests, not chunks: a stream accumulates on its
        // terminal reply only, with the full admission→final latency.
        if last {
            let mut stats = shared.stats.lock();
            let acc = stats.entry(p.model.clone()).or_default();
            match &result {
                Ok(_) => {
                    acc.requests += 1;
                    acc.total_latency_us += elapsed_us;
                    acc.max_latency_us = acc.max_latency_us.max(elapsed_us);
                }
                // Sheds are backpressure, not failures: the engine
                // counts them; `errors` stays inference failures only.
                Err(DjinnError::Busy { .. }) => {}
                Err(_) => acc.errors += 1,
            }
        }
        let response = match result {
            Ok((tensor, spans)) => {
                // server_total reuses the single measurement taken above:
                // server-read → completion, the server's whole view of
                // the request in its own clock domain. Stamping the clock
                // a second time here would let `Stats` and the trace
                // block disagree about the same request.
                let trace = ServerTrace::new(p.request_id, spans, elapsed_us);
                if p.streaming {
                    Response::Chunk {
                        tensor,
                        trace,
                        seq,
                        last,
                    }
                } else {
                    Response::Output { tensor, trace }
                }
            }
            Err(DjinnError::Busy { model, queue_depth }) => Response::Busy {
                request_id: p.request_id,
                model,
                queue_depth: queue_depth.min(u32::MAX as usize) as u32,
            },
            // Stringify only here, at the wire boundary.
            Err(e) => Response::Error {
                request_id: p.request_id,
                message: e.to_string(),
            },
        };
        let is_output = matches!(response, Response::Output { .. } | Response::Chunk { .. });
        let write_start = Instant::now();
        // A poisoned writer refuses silently; the pump keeps draining so
        // engine workers are never blocked on a dead connection.
        if writer.lock().write_response(&response) && is_output {
            // The response-write span mark closes the server's view of
            // the request: successful inferences feed the per-model wire
            // histogram reported by `Stats`.
            let mut stats = shared.stats.lock();
            stats
                .entry(p.model)
                .or_default()
                .wire
                .record(write_start.elapsed().as_micros() as u64);
        }
    }
}

/// Merges the wire-level accumulators with each engine's queue
/// telemetry; every registered model gets an entry, and requests for
/// unregistered models surface only in the aggregate counter.
fn stats_response(shared: &Shared, request_id: u64) -> Response {
    // Snapshot engine telemetry *before* taking the wire-stats lock: the
    // reply pump grabs that lock on every completion, so holding it
    // across per-engine snapshots would serialize a Stats poll against a
    // busy pump and stale-ify the queue-depth/in-flight numbers a
    // router's load poller steers by.
    let engine_stats: Vec<(&String, crate::EngineStats)> = shared
        .engines
        .iter()
        .map(|(model, engine)| (model, engine.stats()))
        .collect();
    let stats = shared.stats.lock();
    Response::Stats {
        request_id,
        unknown_model_requests: shared.unknown_models.load(Ordering::Relaxed),
        stats: engine_stats
            .into_iter()
            .map(|(model, q)| {
                let acc = stats.get(model);
                ModelStats {
                    model: model.clone(),
                    requests: acc.map_or(0, |a| a.requests),
                    errors: acc.map_or(0, |a| a.errors),
                    total_latency_us: acc.map_or(0, |a| a.total_latency_us),
                    max_latency_us: acc.map_or(0, |a| a.max_latency_us),
                    queue_depth: q.queue_depth as u64,
                    in_flight: q.in_flight as u64,
                    shed: q.shed,
                    p50_queue_wait_us: q.p50_queue_wait_us,
                    p99_queue_wait_us: q.p99_queue_wait_us,
                    p50_batch_wait_us: q.p50_batch_wait_us,
                    p99_batch_wait_us: q.p99_batch_wait_us,
                    p50_service_us: q.p50_service_us,
                    p99_service_us: q.p99_service_us,
                    p50_wire_us: acc.map_or(0, |a| a.wire.quantile(0.50)),
                    p99_wire_us: acc.map_or(0, |a| a.wire.quantile(0.99)),
                    p50_lease_wait_us: q.p50_lease_wait_us,
                    p99_lease_wait_us: q.p99_lease_wait_us,
                    cache_hits: q.cache_hits,
                    cache_misses: q.cache_misses,
                    cache_evictions: q.cache_evictions,
                    tokens_out: q.tokens_out,
                    p50_token_gap_us: q.p50_token_gap_us,
                    p99_token_gap_us: q.p99_token_gap_us,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DjinnClient, DjinnError};
    use tensor::{Shape, Tensor};

    fn small_registry() -> ModelRegistry {
        // A tiny model keeps tests fast.
        let def = dnn::parser::parse_netdef(
            "name: tiny\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n",
        )
        .unwrap();
        let net = dnn::Network::with_random_weights(def, 1).unwrap();
        let mut reg = ModelRegistry::new();
        reg.register("tiny", net);
        reg
    }

    #[test]
    fn end_to_end_inference_over_tcp() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 2);
        let out = client.infer("tiny", &input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        server.shutdown();
    }

    #[test]
    fn unknown_model_returns_remote_error() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::zeros(Shape::mat(1, 8));
        let err = client.infer("nope", &input).unwrap_err();
        assert!(matches!(err, DjinnError::Remote { .. }), "{err}");
        server.shutdown();
    }

    #[test]
    fn list_models_reports_registry() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.list_models().unwrap(), vec!["tiny".to_string()]);
        server.shutdown();
    }

    #[test]
    fn batched_server_matches_unbatched_results() {
        let config = ServerConfig {
            batching: Some(BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            }),
            ..ServerConfig::default()
        };
        let server = DjinnServer::start(small_registry(), config).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 5);
        let batched = client.infer("tiny", &input).unwrap();
        // Compare with a locally-executed reference.
        let reg = small_registry();
        let want = reg.get("tiny").unwrap().forward(&input).unwrap();
        assert!(batched.max_abs_diff(&want).unwrap() < 1e-5);
        server.shutdown();
    }

    #[test]
    fn threaded_server_matches_serial_results() {
        let config = ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        };
        let server = DjinnServer::start(small_registry(), config).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::random_uniform(Shape::mat(9, 8), 1.0, 7);
        let threaded = client.infer("tiny", &input).unwrap();
        let reg = small_registry();
        let want = reg.get("tiny").unwrap().forward(&input).unwrap();
        assert!(threaded.max_abs_diff(&want).unwrap() < 1e-5);
        server.shutdown();
    }

    #[test]
    fn tonic_batching_config_carries_table3_sizes() {
        let cfg = ServerConfig::tonic_batching();
        assert_eq!(cfg.batch_overrides["pos"], 64);
        assert_eq!(cfg.batch_overrides["face"], 2);
        assert_eq!(cfg.batch_overrides["imc"], 16);
        assert!(cfg.batching.is_some());
    }

    #[test]
    fn shutdown_joins_workers_even_with_idle_connections_open() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let workers = Arc::clone(&server.workers);
        // Open connections that never send a frame; their workers sit in
        // the read-poll loop.
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        // Make sure at least one worker actually did work.
        assert!(client.list_models().is_ok());
        let t0 = std::time::Instant::now();
        server.shutdown();
        // Every worker has been joined: none left tracked, and shutdown
        // returned within a few read-poll periods rather than hanging.
        assert!(workers.lock().is_empty());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn wake_addr_maps_unspecified_addresses_to_loopback() {
        // `connect(0.0.0.0:p)` is a platform-dependent accident — the
        // shutdown wake must dial loopback explicitly, same family, same
        // port. Concrete addresses pass through untouched.
        let v4: SocketAddr = "0.0.0.0:7741".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:7741".parse().unwrap());
        let v6: SocketAddr = "[::]:7741".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:7741".parse().unwrap());
        let concrete: SocketAddr = "127.0.0.1:7741".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
    }

    #[test]
    fn shutdown_is_prompt_on_a_wildcard_bind() {
        // Regression: stop_accepting used to dial `local_addr()`
        // verbatim, which for a wildcard bind is the unspecified address
        // — where that connect fails, shutdown hangs until an unrelated
        // client happens to arrive.
        let config = ServerConfig {
            bind_addr: "0.0.0.0:0".into(),
            ..ServerConfig::default()
        };
        let server = DjinnServer::start(small_registry(), config).unwrap();
        assert!(server.local_addr().ip().is_unspecified());
        // The listener serves real traffic via loopback.
        let reach = wake_addr(server.local_addr());
        let mut client = DjinnClient::connect(reach).unwrap();
        assert_eq!(client.list_models().unwrap(), vec!["tiny".to_string()]);
        drop(client);
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown must not wait for an external connection"
        );
    }

    #[test]
    fn stats_and_trace_report_the_same_latency() {
        // Regression: the reply pump used to read the clock twice per
        // request — once for the stats accumulator, again for the trace
        // block — so the two views of the same request could disagree.
        // With a single measurement, the stats totals must equal the
        // trace sums *exactly*, summed over enough requests that a
        // stray double-stamp cannot hide in microsecond truncation.
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let mut sum_us = 0u64;
        let mut max_us = 0u64;
        for seed in 0..50 {
            let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, seed);
            let (_, record) = client.infer_traced("tiny", &input).unwrap();
            sum_us += record.server_total_us;
            max_us = max_us.max(record.server_total_us);
        }
        let stats = client.stats().unwrap();
        let tiny = stats.iter().find(|s| s.model == "tiny").unwrap();
        assert_eq!(tiny.requests, 50);
        assert_eq!(
            tiny.total_latency_us, sum_us,
            "stats and trace must come from the same measurement"
        );
        assert_eq!(tiny.max_latency_us, max_us);
        server.shutdown();
    }

    #[test]
    fn unencodable_response_degrades_to_a_correlated_error() {
        // A model name longer than the wire's u16 string limit makes the
        // Models response unencodable; ConnWriter must degrade to an
        // Error frame carrying the same request ID — the client sees a
        // correlated Remote error and the connection stays usable.
        let mut registry = small_registry();
        let def = dnn::parser::parse_netdef(
            "name: big\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n",
        )
        .unwrap();
        let net = dnn::Network::with_random_weights(def, 2).unwrap();
        registry.register("x".repeat(crate::protocol::MAX_STR + 1), net);
        let server = DjinnServer::start(registry, ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let err = client.list_models().unwrap_err();
        assert!(
            matches!(err, DjinnError::Remote { ref message }
                if message.contains("exceeds the wire limit")),
            "expected the degrade-path Remote error, got {err:?}"
        );
        // Not poisoned: the same connection still serves inference.
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 3);
        let out = client.infer("tiny", &input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
        server.shutdown();
    }

    #[test]
    fn stats_report_queue_telemetry_for_every_model() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 4);
        for _ in 0..3 {
            client.infer("tiny", &input).unwrap();
        }
        let stats = client.stats().unwrap();
        let tiny = stats.iter().find(|s| s.model == "tiny").unwrap();
        assert_eq!(tiny.requests, 3);
        assert_eq!((tiny.shed, tiny.queue_depth, tiny.in_flight), (0, 0, 0));
        assert!(tiny.p99_queue_wait_us >= tiny.p50_queue_wait_us);
        server.shutdown();
    }

    /// An executor that sleeps before answering, to saturate a tiny queue.
    struct SlowExecutor(Duration);

    impl Executor for SlowExecutor {
        fn infer(
            &self,
            network: &Arc<dnn::Network>,
            input: &tensor::Tensor,
        ) -> Result<crate::InferenceOutcome> {
            std::thread::sleep(self.0);
            CpuExecutor::default().infer(network, input)
        }

        fn backend_name(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn overloaded_engine_answers_busy_not_error() {
        // Build the shared state by hand so the engine can be saturated
        // deterministically: capacity 1, one worker stuck in a slow job.
        let registry = small_registry();
        let net = registry.get("tiny").unwrap();
        let engine = InferenceEngine::start(
            "tiny",
            net,
            Arc::new(SlowExecutor(Duration::from_millis(100))),
            EngineConfig {
                policy: DispatchPolicy::Immediate,
                queue_capacity: 1,
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let mut engines = BTreeMap::new();
        engines.insert("tiny".to_string(), engine);
        let shared = Shared {
            registry,
            engines,
            stats: Mutex::new(BTreeMap::new()),
            unknown_models: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
        };
        let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 6);
        // Admit without waiting until the queue is provably full.
        let engine = shared.engines.get("tiny").unwrap();
        let mut tickets = Vec::new();
        loop {
            match engine.submit(input.clone()) {
                Ok(t) => tickets.push(t),
                Err(DjinnError::Busy { .. }) => break,
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        // The request path sheds with a Busy frame echoing the request's
        // ID, not a stringly error.
        let pending = Mutex::new(HashMap::new());
        let (pump_tx, _pump_rx) = bounded(8);
        let rsp = admit_infer(
            &shared,
            &pending,
            &pump_tx,
            0,
            "tiny".into(),
            input.clone(),
            99,
            Instant::now(),
            None,
        )
        .expect("a shed request is answered synchronously");
        assert!(
            matches!(rsp, Response::Busy { request_id: 99, ref model, queue_depth }
                if model == "tiny" && queue_depth == 1),
            "expected Busy echoing id 99, got {rsp:?}"
        );
        assert!(
            pending.lock().is_empty(),
            "a rejected admission must not leave a pending token"
        );
        // Sheds are visible in stats as `shed`, never as `errors`.
        let Response::Stats { stats, .. } = stats_response(&shared, 7) else {
            panic!("expected stats");
        };
        let tiny = stats.iter().find(|s| s.model == "tiny").unwrap();
        assert!(tiny.shed >= 2);
        assert_eq!(tiny.errors, 0);
        // Admitted jobs still complete.
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn unknown_models_count_in_aggregate_and_never_grow_the_stats_map() {
        let server = DjinnServer::start(small_registry(), ServerConfig::default()).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let input = Tensor::zeros(Shape::mat(1, 8));
        for i in 0..5 {
            let err = client.infer(&format!("ghost-{i}"), &input).unwrap_err();
            assert!(matches!(err, DjinnError::Remote { .. }), "{err}");
        }
        // A real request keeps working and the aggregate counter reports
        // the rejections without any per-name entries appearing.
        client.infer("tiny", &input).unwrap();
        let (stats, unknown) = client.stats_with_unknown_count().unwrap();
        assert_eq!(unknown, 5);
        assert!(
            stats.iter().all(|s| s.model == "tiny"),
            "unknown names leaked into per-model stats: {stats:?}"
        );
        server.shutdown();
    }

    #[test]
    fn pipelined_responses_are_correlated_not_ordered() {
        // A batched engine with a long coalescing delay makes replies to
        // a window of pipelined requests come back together — correctness
        // must come from ID correlation, not luck of arrival order.
        let config = ServerConfig {
            batching: Some(BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(5),
            }),
            ..ServerConfig::default()
        };
        let server = DjinnServer::start(small_registry(), config).unwrap();
        let mut client = DjinnClient::connect(server.local_addr()).unwrap();
        let inputs: Vec<Tensor> = (0..8)
            .map(|seed| Tensor::random_uniform(Shape::mat(1, 8), 1.0, 40 + seed))
            .collect();
        let results = client.pipeline("tiny", &inputs, 4).unwrap();
        let reg = small_registry();
        let net = reg.get("tiny").unwrap();
        for (input, result) in inputs.iter().zip(results) {
            let (got, _trace) = result.unwrap();
            let want = net.forward(input).unwrap();
            assert!(
                got.max_abs_diff(&want).unwrap() < 1e-5,
                "pipelined response attributed to the wrong request"
            );
        }
        server.shutdown();
    }

    #[test]
    fn multiple_clients_are_served_concurrently() {
        let server =
            Arc::new(DjinnServer::start(small_registry(), ServerConfig::default()).unwrap());
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for seed in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                let mut client = DjinnClient::connect(addr).unwrap();
                for i in 0..5 {
                    let input = Tensor::random_uniform(Shape::mat(1, 8), 1.0, seed * 10 + i);
                    let out = client.infer("tiny", &input).unwrap();
                    assert_eq!(out.shape().dims(), &[1, 4]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
