use std::fmt;

/// Error type for the DjiNN service and client.
#[derive(Debug)]
pub enum DjinnError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The wire payload violates the protocol.
    Protocol {
        /// What is wrong.
        reason: String,
    },
    /// The requested model is not registered.
    UnknownModel {
        /// Name the client asked for.
        name: String,
    },
    /// The DNN rejected the input or failed internally.
    Dnn(dnn::DnnError),
    /// The server reported an application-level error.
    Remote {
        /// Server-provided message.
        message: String,
    },
    /// The server or a worker is shutting down.
    Shutdown,
}

impl fmt::Display for DjinnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DjinnError::Io(e) => write!(f, "i/o error: {e}"),
            DjinnError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            DjinnError::UnknownModel { name } => write!(f, "unknown model `{name}`"),
            DjinnError::Dnn(e) => write!(f, "inference failed: {e}"),
            DjinnError::Remote { message } => write!(f, "server error: {message}"),
            DjinnError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for DjinnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DjinnError::Io(e) => Some(e),
            DjinnError::Dnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DjinnError {
    fn from(e: std::io::Error) -> Self {
        DjinnError::Io(e)
    }
}

impl From<dnn::DnnError> for DjinnError {
    fn from(e: dnn::DnnError) -> Self {
        DjinnError::Dnn(e)
    }
}

impl From<tensor::TensorError> for DjinnError {
    fn from(e: tensor::TensorError) -> Self {
        DjinnError::Dnn(dnn::DnnError::Tensor(e))
    }
}
