use std::fmt;

/// Error type for the DjiNN service and client.
#[derive(Debug)]
pub enum DjinnError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The wire payload violates the protocol.
    Protocol {
        /// What is wrong.
        reason: String,
    },
    /// The requested model is not registered.
    UnknownModel {
        /// Name the client asked for.
        name: String,
    },
    /// The DNN rejected the input or failed internally.
    Dnn(dnn::DnnError),
    /// The server reported an application-level error.
    Remote {
        /// Server-provided message.
        message: String,
    },
    /// The model's admission queue is full: the request was shed instead
    /// of queued. Back off and retry — this is load shedding, not failure.
    Busy {
        /// Model whose queue is saturated.
        model: String,
        /// Queue depth observed at admission (the configured bound).
        queue_depth: usize,
    },
    /// The connection can no longer be trusted: a frame may have been
    /// partially written, or a response arrived that correlates with no
    /// outstanding request. Every subsequent call on the same connection
    /// fails fast with this error; the only recovery is reconnecting.
    ConnectionPoisoned {
        /// What broke the connection.
        reason: String,
    },
    /// The server or a worker is shutting down.
    Shutdown,
}

impl fmt::Display for DjinnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DjinnError::Io(e) => write!(f, "i/o error: {e}"),
            DjinnError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            DjinnError::UnknownModel { name } => write!(f, "unknown model `{name}`"),
            DjinnError::Dnn(e) => write!(f, "inference failed: {e}"),
            DjinnError::Remote { message } => write!(f, "server error: {message}"),
            DjinnError::Busy { model, queue_depth } => write!(
                f,
                "model `{model}` is busy: admission queue full at depth {queue_depth}"
            ),
            DjinnError::ConnectionPoisoned { reason } => {
                write!(f, "connection poisoned ({reason}); reconnect required")
            }
            DjinnError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

/// Cloning keeps every variant typed so a batch-wide failure can be
/// delivered to each co-batched request without flattening to a string;
/// only `Io` loses structure (the kind is kept, the source chain is
/// rendered into the message).
impl Clone for DjinnError {
    fn clone(&self) -> Self {
        match self {
            DjinnError::Io(e) => DjinnError::Io(std::io::Error::new(e.kind(), e.to_string())),
            DjinnError::Protocol { reason } => DjinnError::Protocol {
                reason: reason.clone(),
            },
            DjinnError::UnknownModel { name } => DjinnError::UnknownModel { name: name.clone() },
            DjinnError::Dnn(e) => DjinnError::Dnn(e.clone()),
            DjinnError::Remote { message } => DjinnError::Remote {
                message: message.clone(),
            },
            DjinnError::Busy { model, queue_depth } => DjinnError::Busy {
                model: model.clone(),
                queue_depth: *queue_depth,
            },
            DjinnError::ConnectionPoisoned { reason } => DjinnError::ConnectionPoisoned {
                reason: reason.clone(),
            },
            DjinnError::Shutdown => DjinnError::Shutdown,
        }
    }
}

impl std::error::Error for DjinnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DjinnError::Io(e) => Some(e),
            DjinnError::Dnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DjinnError {
    fn from(e: std::io::Error) -> Self {
        DjinnError::Io(e)
    }
}

impl From<dnn::DnnError> for DjinnError {
    fn from(e: dnn::DnnError) -> Self {
        DjinnError::Dnn(e)
    }
}

impl From<tensor::TensorError> for DjinnError {
    fn from(e: tensor::TensorError) -> Self {
        DjinnError::Dnn(dnn::DnnError::Tensor(e))
    }
}
