use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use perf::{cpu_forward_seconds, gpu_forward, CpuSpec, GpuSpec};

fn main() {
    let gpu = GpuSpec::k40();
    let cpu = CpuSpec::xeon_e5_2620_v2();
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>12} {:>10} {:>9} {:>8}",
        "app", "cpu_ms", "gpu_ms(b1)", "b1 ratio", "gpu_ms(bN)", "bN ratio", "batchgain", "occ_b1"
    );
    for app in App::ALL {
        let meta = app.service_meta();
        let def = zoo::netdef(app);
        let p1 = WorkloadProfile::of(&def, meta.inputs_per_query).unwrap();
        let pb = WorkloadProfile::of(&def, meta.inputs_per_query * meta.batch_size).unwrap();
        let cpu_s = cpu_forward_seconds(&cpu, &p1);
        let g1 = gpu_forward(&gpu, &p1);
        let gb = gpu_forward(&gpu, &pb);
        let r1 = cpu_s / g1.seconds;
        let rb = cpu_s / (gb.seconds / meta.batch_size as f64);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>9.1} {:>12.3} {:>10.1} {:>9.2} {:>8.2}",
            app.name(),
            cpu_s * 1e3,
            g1.seconds * 1e3,
            r1,
            gb.seconds * 1e3,
            rb,
            rb / r1,
            g1.occupancy
        );
    }
}
