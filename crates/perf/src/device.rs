//! Device specifications, defaulting to the paper's platform (Table 2).

use serde::{Deserialize, Serialize};

/// A GPU's architectural constants, defaulting to the NVIDIA Tesla K40
/// used throughout the paper.
///
/// The K40 values come from NVIDIA's published specifications: 15 SMX
/// units, 64 resident warps per SMX, 4.29 TFLOPS single-precision peak
/// (boost clock), 288 GB/s GDDR5 bandwidth, PCIe 3.0 ×16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `Tesla K40`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Fraction of peak a well-tuned dense GEMM sustains at full occupancy
    /// (cuBLAS on Kepler reaches ~70-80%).
    pub gemm_efficiency: f64,
    /// Fraction of peak that elementwise/stencil kernels can sustain
    /// (they lack FMA density).
    pub elementwise_efficiency: f64,
    /// Device DRAM bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// L2 cache peak bandwidth in GB/s (used only for the Fig 6 utilization
    /// counters).
    pub l2_bw_gbps: f64,
    /// Aggregate L1/shared-memory peak bandwidth in GB/s (Fig 6 counters).
    pub l1_bw_gbps: f64,
    /// Occupancy below which latency hiding degrades linearly; at or above
    /// the knee a kernel can issue at full rate. Kepler GEMMs hide global
    /// latency with roughly half the warp slots filled.
    pub occupancy_knee: f64,
    /// Host-visible overhead per kernel launch, seconds (driver + dispatch).
    pub kernel_launch_s: f64,
    /// Effective PCIe bandwidth per GPU in GB/s (PCIe 3.0 ×16 ≈ 15.75 GB/s
    /// raw; ~12 GB/s after protocol overhead).
    pub pcie_gbps: f64,
    /// DRAM-bandwidth waste factor for kernels with uncoalesced access
    /// (locally-connected layers): each 32-thread burst fetches mostly
    /// unused cache lines.
    pub scatter_mem_penalty: f64,
    /// Board power in watts (TDP), for the TCO model.
    pub tdp_w: f64,
    /// Idle board power in watts (clocks up, no work).
    pub idle_w: f64,
}

impl GpuSpec {
    /// The paper's accelerator: NVIDIA Tesla K40 (Table 2).
    pub fn k40() -> Self {
        GpuSpec {
            name: "Tesla K40".into(),
            sms: 15,
            max_warps_per_sm: 64,
            peak_gflops: 4290.0,
            gemm_efficiency: 0.78,
            elementwise_efficiency: 0.15,
            mem_bw_gbps: 288.0,
            l2_bw_gbps: 750.0,
            l1_bw_gbps: 1500.0,
            occupancy_knee: 0.50,
            kernel_launch_s: 7e-6,
            pcie_gbps: 12.0,
            scatter_mem_penalty: 3.0,
            tdp_w: 235.0,
            idle_w: 25.0,
        }
    }

    /// The K40's predecessor: Tesla K20 (13 SMX, 3.52 TFLOPS, 208 GB/s).
    /// Used by the device-sensitivity study.
    pub fn k20() -> Self {
        GpuSpec {
            name: "Tesla K20".into(),
            sms: 13,
            peak_gflops: 3520.0,
            mem_bw_gbps: 208.0,
            l2_bw_gbps: 650.0,
            l1_bw_gbps: 1300.0,
            pcie_gbps: 10.0,
            tdp_w: 225.0,
            ..GpuSpec::k40()
        }
    }

    /// A near-future (for the paper) device: Maxwell-class Titan X
    /// (24 SMM, 6.14 TFLOPS, 336 GB/s, lower kernel launch overhead).
    /// Used by the device-sensitivity study.
    pub fn titan_x() -> Self {
        GpuSpec {
            name: "Titan X (Maxwell)".into(),
            sms: 24,
            peak_gflops: 6140.0,
            mem_bw_gbps: 336.0,
            l2_bw_gbps: 1100.0,
            l1_bw_gbps: 2200.0,
            kernel_launch_s: 5e-6,
            tdp_w: 250.0,
            ..GpuSpec::k40()
        }
    }

    /// Total warp slots across the device.
    pub fn total_warp_slots(&self) -> usize {
        self.sms * self.max_warps_per_sm
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::k40()
    }
}

/// A CPU core's constants, defaulting to one core of the paper's Intel
/// Xeon E5-2620 v2 (Ivy Bridge EP, 2.10 GHz) running single-threaded
/// Caffe linked against ATLAS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Single-precision FLOPs per cycle with AVX (8-wide add + 8-wide mul).
    pub flops_per_cycle: f64,
    /// Fraction of peak that ATLAS sustains on large, square-ish GEMMs.
    pub gemm_efficiency: f64,
    /// Exponent of the dimension-efficiency curve: efficiency scales as
    /// `(min_dim / gemm_dim_ref)^gemm_dim_exp`, clamped — skinny matrices
    /// (GEMV-like or tiny channel counts) run far below peak.
    pub gemm_dim_exp: f64,
    /// Reference dimension at which the curve reaches 1.0.
    pub gemm_dim_ref: f64,
    /// Floor of the dimension-efficiency curve.
    pub gemm_dim_floor: f64,
    /// Sustainable single-core streaming memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Per-core share of socket power in watts, for the TCO model.
    pub core_power_w: f64,
}

impl CpuSpec {
    /// One core of the paper's Xeon E5-2620 v2 (Table 2).
    pub fn xeon_e5_2620_v2() -> Self {
        CpuSpec {
            name: "Xeon E5-2620 v2 (1 core)".into(),
            freq_ghz: 2.10,
            flops_per_cycle: 16.0,
            gemm_efficiency: 0.75,
            gemm_dim_exp: 0.75,
            gemm_dim_ref: 96.0,
            gemm_dim_floor: 0.20,
            mem_bw_gbps: 10.0,
            core_power_w: 13.0,
        }
    }

    /// Peak single-precision GFLOP/s of one core.
    pub fn peak_gflops(&self) -> f64 {
        self.freq_ghz * self.flops_per_cycle
    }

    /// Effective GEMM GFLOP/s for a problem whose smallest dimension is
    /// `min_dim` — the ATLAS dimension-efficiency curve.
    pub fn gemm_gflops(&self, min_dim: usize) -> f64 {
        let scale = (min_dim as f64 / self.gemm_dim_ref)
            .powf(self.gemm_dim_exp)
            .clamp(self.gemm_dim_floor, 1.0);
        self.peak_gflops() * self.gemm_efficiency * scale
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::xeon_e5_2620_v2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_published_constants() {
        let g = GpuSpec::k40();
        assert_eq!(g.sms, 15);
        assert_eq!(g.total_warp_slots(), 960);
        assert!(g.peak_gflops > 4000.0);
    }

    #[test]
    fn device_catalog_orders_by_capability() {
        let k20 = GpuSpec::k20();
        let k40 = GpuSpec::k40();
        let tx = GpuSpec::titan_x();
        assert!(k20.peak_gflops < k40.peak_gflops);
        assert!(k40.peak_gflops < tx.peak_gflops);
        assert!(k20.total_warp_slots() < tx.total_warp_slots());
    }

    #[test]
    fn cpu_peak_is_avx_rate() {
        let c = CpuSpec::xeon_e5_2620_v2();
        assert!((c.peak_gflops() - 33.6).abs() < 1e-9);
    }

    #[test]
    fn gemm_efficiency_curve_is_monotone_and_clamped() {
        let c = CpuSpec::xeon_e5_2620_v2();
        assert!(c.gemm_gflops(1) < c.gemm_gflops(32));
        assert!(c.gemm_gflops(32) < c.gemm_gflops(96));
        // Above the reference dimension the curve saturates.
        assert_eq!(c.gemm_gflops(96), c.gemm_gflops(4096));
        // Floor: tiny dims never hit zero.
        assert!(c.gemm_gflops(1) >= c.peak_gflops() * c.gemm_efficiency * c.gemm_dim_floor - 1e-9);
    }
}
