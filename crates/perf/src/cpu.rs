//! Single-thread CPU timing of a forward pass (the paper's baseline:
//! Caffe linked against ATLAS on one Xeon core).

use dnn::profile::{KernelClass, KernelSpec, WorkloadProfile};

use crate::CpuSpec;

/// Seconds one kernel-equivalent takes on a single CPU core.
///
/// GEMM work runs at the ATLAS dimension-efficiency curve
/// ([`CpuSpec::gemm_gflops`]); everything is additionally bounded below by
/// streaming the kernel's bytes through the core's memory bandwidth, which
/// is what bounds GEMV-shaped inner products (batch 1 fully-connected
/// layers) and the big untied DeepFace layers.
pub fn cpu_kernel_seconds(cpu: &CpuSpec, spec: &KernelSpec) -> f64 {
    let compute_s = match spec.class {
        KernelClass::Gemm { m, n, k, .. } => {
            let min_dim = m.min(n).min(k);
            spec.flops / (cpu.gemm_gflops(min_dim) * 1e9)
        }
        KernelClass::Elementwise { .. } | KernelClass::Scatter { .. } => {
            // Elementwise/stencil code is scalar-ish: a modest fraction of
            // peak, but almost always memory bound anyway. The CPU's deep
            // cache hierarchy hides the locally-connected layers'
            // irregular weight access, so no scatter penalty here.
            spec.flops / (cpu.peak_gflops() * 0.25 * 1e9)
        }
    };
    let memory_s = spec.bytes / (cpu.mem_bw_gbps * 1e9);
    compute_s.max(memory_s)
}

/// Seconds a full forward pass takes on a single CPU core.
pub fn cpu_forward_seconds(cpu: &CpuSpec, profile: &WorkloadProfile) -> f64 {
    profile
        .kernels
        .iter()
        .map(|k| cpu_kernel_seconds(cpu, k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::profile::WorkloadProfile;
    use dnn::zoo::{self, App};

    #[test]
    fn asr_cpu_time_is_seconds_scale() {
        // 548 frames through a 29M-parameter network on one 2013 core:
        // paper-consistent CPU service time is around a second.
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let p = WorkloadProfile::of(&zoo::kaldi(), 548).unwrap();
        let s = cpu_forward_seconds(&cpu, &p);
        assert!((0.3..5.0).contains(&s), "ASR CPU forward = {s}s");
    }

    #[test]
    fn nlp_cpu_time_is_millisecond_scale() {
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let p = WorkloadProfile::of(&zoo::senna("pos", 45), 28).unwrap();
        let s = cpu_forward_seconds(&cpu, &p);
        assert!((1e-4..1e-2).contains(&s), "POS CPU forward = {s}s");
    }

    #[test]
    fn cpu_time_scales_superlinearly_never(/* batching only helps */) {
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let def = zoo::senna("pos", 45);
        let t1 = cpu_forward_seconds(&cpu, &WorkloadProfile::of(&def, 28).unwrap());
        let t4 = cpu_forward_seconds(&cpu, &WorkloadProfile::of(&def, 112).unwrap());
        // Per-item time must not increase with batch.
        assert!(t4 / 4.0 <= t1 * 1.05, "t1={t1} t4={t4}");
    }

    #[test]
    fn gemv_shapes_are_memory_bound() {
        // A 1-row inner product must cost at least its weight streaming
        // time, not the (absurdly low) skinny-GEMM compute estimate.
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let p = WorkloadProfile::of(&zoo::alexnet(), 1).unwrap();
        let fc6 = p.kernels.iter().find(|k| k.name == "fc6.gemm").unwrap();
        let s = cpu_kernel_seconds(&cpu, fc6);
        let weight_stream_s = fc6.bytes / (cpu.mem_bw_gbps * 1e9);
        assert!(s >= weight_stream_s);
    }

    #[test]
    fn all_apps_have_finite_positive_times() {
        let cpu = CpuSpec::xeon_e5_2620_v2();
        for app in App::ALL {
            let meta = app.service_meta();
            let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query).unwrap();
            let s = cpu_forward_seconds(&cpu, &p);
            assert!(s.is_finite() && s > 0.0, "{app}: {s}");
        }
    }
}
