//! Analytic performance models for the DjiNN reproduction.
//!
//! The paper's evaluation hardware (NVIDIA Tesla K40 GPUs and an Intel
//! Xeon E5-2620 v2 running single-threaded Caffe+ATLAS) is unavailable
//! here, so this crate models both from first principles:
//!
//! * [`GpuSpec`]/[`CpuSpec`] — published device constants (SM count, warp
//!   capacity, peak FLOPS, DRAM bandwidth, PCIe link speed, core clocks);
//! * [`gpu`] — per-kernel GPU timing: a roofline (compute vs. DRAM) with an
//!   *occupancy-dependent latency-hiding term* and cuBLAS-style tile
//!   quantization, which is what makes small NLP kernels slow at batch 1
//!   (Fig 6) and fast once batched (Fig 7);
//! * [`cpu`] — single-thread CPU timing with a dimension-dependent GEMM
//!   efficiency curve modeling ATLAS behaviour on skinny matrices.
//!
//! Timing here is for a kernel running *alone* on the device; kernel
//! concurrency (MPS) and multi-GPU scheduling live in the `gpusim` crate,
//! which consumes the per-kernel resource demands exposed by
//! [`gpu::KernelTiming`].

pub mod cpu;
mod device;
pub mod gpu;

pub use cpu::{cpu_forward_seconds, cpu_kernel_seconds};
pub use device::{CpuSpec, GpuSpec};
pub use gpu::{gpu_forward, ForwardTiming, KernelTiming, Limiter};
