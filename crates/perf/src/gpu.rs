//! Per-kernel GPU timing: roofline + occupancy-dependent latency hiding +
//! cuBLAS-style tile quantization.

use dnn::profile::{KernelClass, KernelSpec, WorkloadProfile};
use serde::{Deserialize, Serialize};

use crate::GpuSpec;

/// What bounds a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Arithmetic throughput (possibly derated by low occupancy).
    Compute,
    /// DRAM bandwidth.
    Memory,
    /// Fixed launch overhead dominates (tiny kernels).
    Launch,
}

/// The timing and resource profile of one kernel running alone on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Wall-clock execution time in seconds, including launch overhead.
    pub seconds: f64,
    /// Achieved occupancy: resident warps over the device's warp slots.
    pub occupancy: f64,
    /// Fraction of the device's *compute issue capacity* the kernel uses
    /// while resident. Under MPS, concurrent kernels can co-run without
    /// slowdown while the sum of their demands stays ≤ 1.
    pub compute_demand: f64,
    /// Fraction of DRAM bandwidth the kernel uses while resident.
    pub memory_demand: f64,
    /// Which resource bounds the kernel.
    pub limiter: Limiter,
    /// Instructions-per-cycle proxy: achieved FLOP rate over device peak.
    pub ipc_ratio: f64,
}

/// Aggregate timing of a full forward pass (kernels run back to back on
/// one exclusive GPU — no MPS, no co-runners).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardTiming {
    /// Per-kernel results, in launch order.
    pub kernels: Vec<KernelTiming>,
    /// Sum of kernel times (seconds), excluding PCIe transfers.
    pub seconds: f64,
    /// Time-weighted mean occupancy — what `nvprof` reports as
    /// `achieved_occupancy` averaged over the pass (Figs 6 and 7b).
    pub occupancy: f64,
    /// Time-weighted IPC / peak-IPC (Fig 6).
    pub ipc_ratio: f64,
    /// Time-weighted L1/shared bandwidth utilization (Fig 6).
    pub l1_utilization: f64,
    /// Time-weighted L2 bandwidth utilization (Fig 6).
    pub l2_utilization: f64,
    /// Estimated average board power over the pass, watts: idle power
    /// plus dynamic power proportional to the larger of the compute and
    /// DRAM utilizations (how the paper's measured power draw enters the
    /// TCO model).
    pub avg_power_w: f64,
}

/// Selects the cuBLAS-style output tile for one GEMM dimension: smaller
/// tiles for skinny problems so the padding waste stays bounded.
fn tile_for(dim: usize) -> usize {
    if dim >= 48 {
        64
    } else if dim >= 24 {
        32
    } else {
        16
    }
}

/// Times one kernel running alone on `gpu`.
pub fn time_kernel(gpu: &GpuSpec, spec: &KernelSpec) -> KernelTiming {
    let (padded_flops, blocks, warps_per_block, efficiency) = match spec.class {
        KernelClass::Gemm { m, n, k, count } => {
            let tm = tile_for(m);
            let tn = tile_for(n);
            let pm = m.div_ceil(tm) * tm;
            let pn = n.div_ceil(tn) * tn;
            let padded = count as f64 * 2.0 * pm as f64 * pn as f64 * k as f64;
            let blocks = count * (pm / tm) * (pn / tn);
            // 256 threads for a 64x64 tile, scaled down for smaller tiles.
            let warps = ((tm * tn) / 512).max(1);
            (padded, blocks, warps, gpu.gemm_efficiency)
        }
        KernelClass::Elementwise { .. } | KernelClass::Scatter { .. } => (
            spec.flops,
            spec.blocks,
            spec.warps_per_block,
            gpu.elementwise_efficiency,
        ),
    };
    // Uncoalesced per-location weight reads waste most of each DRAM burst.
    let mem_penalty = match spec.class {
        KernelClass::Scatter { .. } => gpu.scatter_mem_penalty,
        _ => 1.0,
    };

    let total_warps = (blocks * warps_per_block) as f64;
    let occupancy = (total_warps / gpu.total_warp_slots() as f64).min(1.0);
    // Latency hiding: below the knee, issue rate degrades linearly with
    // resident warps; above it, the kernel can issue at full rate.
    let latency_util = (occupancy / gpu.occupancy_knee).min(1.0);

    let peak = gpu.peak_gflops * 1e9;
    let compute_ideal_s = padded_flops / (peak * efficiency);
    let compute_s = compute_ideal_s / latency_util.max(1e-6);
    let memory_s = spec.bytes * mem_penalty / (gpu.mem_bw_gbps * 1e9);
    let exec_s = compute_s.max(memory_s);
    let seconds = exec_s + gpu.kernel_launch_s;

    let limiter = if gpu.kernel_launch_s > exec_s {
        Limiter::Launch
    } else if memory_s >= compute_s {
        Limiter::Memory
    } else {
        Limiter::Compute
    };

    // Resource demands while resident: fractions of machine compute/memory
    // capacity actually consumed over the kernel's wall-clock life (launch
    // overhead consumes neither). A latency- or launch-bound kernel leaves
    // headroom for MPS co-runners, which is exactly the §5.2 effect.
    let compute_demand = (compute_ideal_s / seconds).clamp(0.0, 1.0);
    let memory_demand = (memory_s / seconds).clamp(0.0, 1.0);
    let ipc_ratio = (spec.flops / seconds / peak).clamp(0.0, 1.0);

    KernelTiming {
        seconds,
        occupancy,
        compute_demand,
        memory_demand,
        limiter,
        ipc_ratio,
    }
}

/// Times a full forward pass running alone on `gpu` and aggregates the
/// profiler counters of Fig 6.
pub fn gpu_forward(gpu: &GpuSpec, profile: &WorkloadProfile) -> ForwardTiming {
    let kernels: Vec<KernelTiming> = profile
        .kernels
        .iter()
        .map(|k| time_kernel(gpu, k))
        .collect();
    let seconds: f64 = kernels.iter().map(|k| k.seconds).sum();
    let wsum = |f: &dyn Fn(&KernelTiming) -> f64| -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        kernels.iter().map(|k| f(k) * k.seconds).sum::<f64>() / seconds
    };
    let occupancy = wsum(&|k| k.occupancy);
    let ipc_ratio = wsum(&|k| k.ipc_ratio);
    // Bandwidth utilizations: achieved DRAM rate over cache peak rates.
    // L1 sees roughly 2x the DRAM traffic (operand reuse through shared
    // memory); both land well under their peaks for DNN kernels, matching
    // the paper's observation that memory bandwidth is not the bottleneck.
    let total_bytes = profile.total_bytes();
    let dram_rate = if seconds > 0.0 {
        total_bytes / seconds
    } else {
        0.0
    };
    let l2_utilization = (dram_rate / (gpu.l2_bw_gbps * 1e9)).min(1.0);
    let l1_utilization = (2.0 * dram_rate / (gpu.l1_bw_gbps * 1e9)).min(1.0);
    let utilization = wsum(&|k| k.compute_demand.max(k.memory_demand));
    let avg_power_w = gpu.idle_w + (gpu.tdp_w - gpu.idle_w) * utilization;
    ForwardTiming {
        kernels,
        seconds,
        occupancy,
        ipc_ratio,
        l1_utilization,
        l2_utilization,
        avg_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::profile::WorkloadProfile;
    use dnn::zoo::{self, App};

    fn k40() -> GpuSpec {
        GpuSpec::k40()
    }

    fn forward(app: App, batch_items: usize) -> ForwardTiming {
        let def = zoo::netdef(app);
        let p = WorkloadProfile::of(&def, batch_items).unwrap();
        gpu_forward(&k40(), &p)
    }

    #[test]
    fn asr_has_high_occupancy_nlp_low() {
        // Fig 6: ASR > 90% occupancy, NLP tasks < 20%.
        let asr = forward(App::Asr, App::Asr.service_meta().inputs_per_query);
        let pos = forward(App::Pos, App::Pos.service_meta().inputs_per_query);
        assert!(asr.occupancy > 0.9, "ASR occupancy {}", asr.occupancy);
        assert!(pos.occupancy < 0.25, "POS occupancy {}", pos.occupancy);
    }

    #[test]
    fn memory_utilizations_are_low() {
        // Fig 6: all applications show low L1/L2 bandwidth utilization —
        // the low IPC of NLP is latency, not bandwidth.
        for app in App::ALL {
            let t = forward(app, app.service_meta().inputs_per_query);
            assert!(t.l1_utilization < 0.5, "{app}: L1 {}", t.l1_utilization);
            assert!(t.l2_utilization < 0.5, "{app}: L2 {}", t.l2_utilization);
        }
    }

    #[test]
    fn ipc_correlates_with_occupancy() {
        // Fig 6's qualitative claim: IPC tracks occupancy across apps.
        let mut pairs: Vec<(f64, f64)> = App::ALL
            .iter()
            .map(|&a| {
                let t = forward(a, a.service_meta().inputs_per_query);
                (t.occupancy, t.ipc_ratio)
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Spearman-ish check: the lowest-occupancy app also has lower IPC
        // than the highest-occupancy app.
        assert!(pairs.first().unwrap().1 < pairs.last().unwrap().1);
    }

    #[test]
    fn batching_raises_nlp_occupancy() {
        // Fig 7b: NLP occupancy rises from ~20% to >80% at batch 64.
        let meta = App::Pos.service_meta();
        let b1 = forward(App::Pos, meta.inputs_per_query);
        let b64 = forward(App::Pos, meta.inputs_per_query * 64);
        assert!(b64.occupancy > 0.8, "batch-64 occupancy {}", b64.occupancy);
        assert!(b64.occupancy > b1.occupancy * 3.0);
    }

    #[test]
    fn latency_bound_kernels_leave_compute_headroom() {
        // A tiny GEMM (NLP at batch 1) must advertise low compute demand so
        // the MPS scheduler can co-run several instances (Fig 8).
        let def = zoo::senna("pos", 45);
        let p = WorkloadProfile::of(&def, 28).unwrap();
        let timing = gpu_forward(&k40(), &p);
        let max_demand = timing
            .kernels
            .iter()
            .map(|k| k.compute_demand.max(k.memory_demand))
            .fold(0.0, f64::max);
        assert!(max_demand < 0.5, "max demand {max_demand}");
    }

    #[test]
    fn power_tracks_utilization() {
        // A saturated ASR pass draws near TDP; a batch-1 NLP pass idles.
        let asr = forward(App::Asr, 548);
        let pos = forward(App::Pos, 28);
        let gpu = k40();
        assert!(
            asr.avg_power_w > gpu.tdp_w * 0.7,
            "ASR {}W",
            asr.avg_power_w
        );
        assert!(
            pos.avg_power_w < gpu.tdp_w * 0.4,
            "POS {}W",
            pos.avg_power_w
        );
        assert!(pos.avg_power_w >= gpu.idle_w);
    }

    #[test]
    fn launch_overhead_bounds_tiny_kernels() {
        use dnn::profile::KernelClass;
        let spec = dnn::profile::KernelSpec {
            name: "tiny".into(),
            class: KernelClass::Elementwise { elems: 32 },
            flops: 32.0,
            bytes: 256.0,
            blocks: 1,
            warps_per_block: 8,
        };
        let t = time_kernel(&k40(), &spec);
        assert_eq!(t.limiter, Limiter::Launch);
        assert!(t.seconds >= k40().kernel_launch_s);
    }

    #[test]
    fn local_layers_are_memory_bound() {
        // DeepFace's untied layers stream hundreds of MB of weights.
        let def = zoo::deepface();
        let p = WorkloadProfile::of(&def, 1).unwrap();
        let local_idx: Vec<usize> = p
            .kernels
            .iter()
            .enumerate()
            .filter(|(_, k)| k.name.contains(".local"))
            .map(|(i, _)| i)
            .collect();
        assert!(!local_idx.is_empty());
        let t = gpu_forward(&k40(), &p);
        for i in local_idx {
            assert_eq!(
                t.kernels[i].limiter,
                Limiter::Memory,
                "{}",
                p.kernels[i].name
            );
        }
    }
}
