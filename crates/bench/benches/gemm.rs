//! SGEMM microbenchmarks: the compute substrate every forward pass runs
//! on. Compares the naive reference, the blocked kernel, and the parallel
//! driver — the `tensor` crate's design-choice ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tensor::{gemm_blocked, gemm_naive, sgemm, GemmOptions, Shape, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgemm");
    group.sample_size(20);
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (256, 256, 256), (28, 450, 350)] {
        let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 1).into_vec();
        let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 2).into_vec();
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));

        group.bench_with_input(
            BenchmarkId::new("naive", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, _| {
                bench.iter(|| {
                    let mut cbuf = vec![0.0f32; m * n];
                    gemm_naive(m, n, k, 1.0, &a, &b, &mut cbuf);
                    black_box(cbuf)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, _| {
                bench.iter(|| {
                    let mut cbuf = vec![0.0f32; m * n];
                    sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut cbuf, GemmOptions::default()).unwrap();
                    black_box(cbuf)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel4", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, _| {
                bench.iter(|| {
                    let mut cbuf = vec![0.0f32; m * n];
                    sgemm(
                        m,
                        n,
                        k,
                        1.0,
                        &a,
                        &b,
                        0.0,
                        &mut cbuf,
                        GemmOptions {
                            threads: 4,
                            ..GemmOptions::default()
                        },
                    )
                    .unwrap();
                    black_box(cbuf)
                });
            },
        );
    }

    // The acceptance point for the parallel packed kernel: 512^3 across
    // thread counts. At 1 thread this doubles as the packed-vs-blocked
    // regression check (PACK_MIN_VOLUME routes 512^3 to the packed path).
    let (m, n, k) = (512usize, 512usize, 512usize);
    let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 9).into_vec();
    let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 10).into_vec();
    group.throughput(Throughput::Elements((2 * m * n * k) as u64));
    group.bench_function("blocked512", |bench| {
        bench.iter(|| {
            let mut cbuf = vec![0.0f32; m * n];
            gemm_blocked(m, n, k, 1.0, &a, &b, &mut cbuf);
            black_box(cbuf)
        });
    });
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("packed512", format!("{threads}t")),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let mut cbuf = vec![0.0f32; m * n];
                    sgemm(
                        m,
                        n,
                        k,
                        1.0,
                        &a,
                        &b,
                        0.0,
                        &mut cbuf,
                        GemmOptions::with_threads(threads),
                    )
                    .unwrap();
                    black_box(cbuf)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
