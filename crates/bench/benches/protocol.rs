//! Wire-protocol benchmarks: encode/decode throughput for the payload
//! sizes of Table 3 (the serialization cost every DjiNN query pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use djinn::protocol::{Request, Response};
use std::hint::black_box;
use tensor::{Shape, Tensor};

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(30);
    // Representative payloads: an NLP sentence (28x350 floats ≈ 38 KB)
    // and a DIG batch (100 MNIST images ≈ 307 KB).
    let cases = [
        (
            "nlp_38KB",
            Tensor::random_uniform(Shape::mat(28, 350), 1.0, 1),
        ),
        (
            "dig_307KB",
            Tensor::random_uniform(Shape::nchw(100, 1, 28, 28), 1.0, 2),
        ),
    ];
    for (name, tensor) in cases {
        let bytes = tensor.byte_len() as u64;
        group.throughput(Throughput::Bytes(bytes));
        let req = Request::Infer {
            model: "m".into(),
            input: tensor.clone(),
            request_id: 1,
        };
        group.bench_with_input(BenchmarkId::new("encode", name), &req, |b, req| {
            b.iter(|| black_box(req.encode().unwrap()));
        });
        let encoded = req.encode().unwrap();
        group.bench_with_input(BenchmarkId::new("decode", name), &encoded, |b, enc| {
            b.iter(|| black_box(Request::decode(enc).unwrap()));
        });
        let rsp = Response::Output {
            tensor,
            trace: Default::default(),
        };
        let rsp_enc = rsp.encode().unwrap();
        group.bench_with_input(BenchmarkId::new("decode_rsp", name), &rsp_enc, |b, enc| {
            b.iter(|| black_box(Response::decode(enc).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
