//! Simulator benchmarks: cost of the discrete-event engine itself (the
//! tool every figure is generated with) and of workload profiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use gpusim::{simulate, ServerConfig, ServiceWorkload};
use perf::GpuSpec;
use std::hint::black_box;

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_profile");
    for app in [App::Imc, App::Asr, App::Pos] {
        let def = zoo::netdef(app);
        let items = app.service_meta().inputs_per_query;
        group.bench_with_input(BenchmarkId::new("of", app.name()), &def, |b, def| {
            b.iter(|| black_box(WorkloadProfile::of(def, items).unwrap()));
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    group.sample_size(15);
    let gpu = GpuSpec::k40();
    for &(gpus, inst_per_gpu) in &[(1usize, 4usize), (8, 4)] {
        let cfg = ServerConfig::k40_server(gpus);
        let instances: Vec<(ServiceWorkload, usize)> = (0..gpus * inst_per_gpu)
            .map(|i| {
                (
                    ServiceWorkload::for_app(&gpu, App::Pos, 64).unwrap(),
                    i / inst_per_gpu,
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("pos64_30batches", format!("{gpus}gpu")),
            &instances,
            |b, instances| {
                b.iter(|| black_box(simulate(&cfg, instances, 30)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_profile, bench_engine);
criterion_main!(benches);
