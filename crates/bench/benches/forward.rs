//! Real forward-pass benchmarks on the CPU substrate: the functional
//! counterpart of the paper's CPU baseline. Demonstrates the batching
//! amortization on real math (MNIST and SENNA are small enough to bench;
//! AlexNet-scale timing comes from the calibrated model instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dnn::zoo::{self, App};
use std::hint::black_box;
use tensor::{Shape, Tensor, Threading};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    group.sample_size(15);

    let dig = zoo::network(App::Dig).unwrap();
    for &batch in &[1usize, 16] {
        let input = Tensor::random_uniform(Shape::nchw(batch, 1, 28, 28), 0.5, 3);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("mnist", batch), &batch, |b, _| {
            b.iter(|| black_box(dig.forward(&input).unwrap()));
        });
    }

    let pos = zoo::network(App::Pos).unwrap();
    for &words in &[28usize, 28 * 16] {
        let input = Tensor::random_uniform(Shape::mat(words, 350), 0.5, 4);
        group.throughput(Throughput::Elements(words as u64));
        group.bench_with_input(BenchmarkId::new("senna", words), &words, |b, _| {
            b.iter(|| black_box(pos.forward(&input).unwrap()));
        });
    }

    // One ASR frame batch: 16 frames through the 29M-parameter DNN.
    let asr = zoo::network(App::Asr).unwrap();
    let frames = Tensor::random_uniform(Shape::mat(16, 440), 0.5, 5);
    group.throughput(Throughput::Elements(16));
    group.bench_function("kaldi/16frames", |b| {
        b.iter(|| black_box(asr.forward(&frames).unwrap()));
    });
    group.finish();
}

/// The multi-core forward pass: batch sharding for the skinny-GEMM NLP
/// model, in-layer GEMM threading for the fat-GEMM ASR model — the two
/// strategies the CPU executor picks between.
fn bench_forward_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_mt");
    group.sample_size(15);

    let pos = zoo::network(App::Pos).unwrap();
    let words = 28 * 16;
    let input = Tensor::random_uniform(Shape::mat(words, 350), 0.5, 4);
    group.throughput(Throughput::Elements(words as u64));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("senna448_sharded", format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        pos.forward_sharded(&input, Threading::new(threads))
                            .unwrap(),
                    )
                });
            },
        );
    }

    let asr = zoo::network(App::Asr).unwrap();
    let frames = Tensor::random_uniform(Shape::mat(16, 440), 0.5, 5);
    group.throughput(Throughput::Elements(16));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("kaldi16_inlayer", format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(asr.forward_with(&frames, Threading::new(threads)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pre_post");
    group.sample_size(15);

    // ASR preprocessing: filterbank + splice for a 0.5 s utterance.
    let wav = tonic_suite::speech::synth_utterance(0.5, 6);
    group.bench_function("asr_filterbank_0.5s", |b| {
        b.iter(|| {
            let frames = tonic_suite::speech::filterbank(&wav);
            black_box(tonic_suite::speech::splice(&frames))
        });
    });

    // NLP pre + post: window features and Viterbi for a 28-word sentence.
    let sentence = tonic_suite::text::synth_sentence(28, 7);
    group.bench_function("nlp_window_features_28w", |b| {
        b.iter(|| black_box(tonic_suite::text::window_features(&sentence, None)));
    });
    let model = tonic_suite::text::TagModel::new(45);
    let scores = Tensor::random_uniform(Shape::mat(28, 45), 1.0, 8);
    group.bench_function("nlp_viterbi_28w_45tags", |b| {
        b.iter(|| black_box(model.decode(&scores)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_forward_threaded,
    bench_pipelines
);
criterion_main!(benches);
