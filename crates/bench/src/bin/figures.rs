//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--csv-dir DIR] [ids…]
//! ```
//!
//! With no ids, every experiment runs in paper order. Text tables go to
//! stdout; `--csv-dir` additionally writes one CSV per table (default
//! `results/`).

use std::path::PathBuf;
use std::process::ExitCode;

use bench::experiments::ExperimentSet;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut csv_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv-dir" => match args.next() {
                Some(dir) => csv_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--csv-dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: figures [--csv-dir DIR] [ids...]");
                println!("experiments: {}", ExperimentSet::ids().join(" "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ExperimentSet::ids().iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ExperimentSet::ids().contains(&id.as_str()) {
            eprintln!(
                "unknown experiment `{id}`; known: {}",
                ExperimentSet::ids().join(" ")
            );
            return ExitCode::FAILURE;
        }
    }

    eprintln!("building models and per-app GPU simulations…");
    let set = match ExperimentSet::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build experiment set: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in &ids {
        for table in set.run(id) {
            println!("{}", table.to_text());
            if let Err(e) = table.write_csv(&csv_dir) {
                eprintln!("warning: could not write {}: {e}", table.id);
            }
        }
    }
    eprintln!("CSV series written to {}", csv_dir.display());
    ExitCode::SUCCESS
}
