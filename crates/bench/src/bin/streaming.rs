//! Streaming latency bench (DESIGN.md §15): time-to-first-token vs.
//! whole-stream latency, direct and through the router tier.
//!
//! ```text
//! cargo run -p bench --bin streaming --release [-- --smoke]
//! ```
//!
//! Each arm drives generative streams (`tiny-lm`, 32 tokens greedy
//! decode) over one connection and stamps, per stream, the client-clock
//! time to the first chunk (TTFT) and to the final chunk (stream
//! total), while checking every chunk's sequence number. The replicas
//! run with a per-forward service delay (the same device-bound backend
//! model the scale-out benches use): tiny-lm's real forward pass is
//! single-digit microseconds, so without it the wire dominates and every
//! chunk is buffered before the client reads the first — the regime the
//! paper cares about is millisecond-scale DNN passes. Two claims are
//! gated per run:
//!
//! 1. **Ordering**: zero out-of-order or missing chunks, in both arms —
//!    every stream delivers `seq` 0..N with exactly one final flag.
//! 2. **Streaming wins**: through the router, TTFT p50 is below 25% of
//!    the stream-total p50 — a client acting on the first token waits
//!    for one decode step, not the whole generation.
//!
//! Output: a per-arm table (TTFT p50/p99, stream total p50/p99,
//! TTFT/total ratio, tokens/s) written to stdout and
//! `results/streaming_bench.txt` (plus CSV in the full run). `--smoke`
//! shrinks the stream count and skips the CSV but keeps both gates —
//! the CI job uploads the txt as its artifact.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use bench::render::{num, Table};
use djinn::{
    DjinnClient, DjinnRouter, DjinnServer, ModelRegistry, RoutePolicy, RouterConfig, ServerConfig,
    StreamMode,
};
use tensor::{Shape, Tensor};

/// Generated tokens per stream. Long enough that the final chunk lands
/// ~32 decode steps after the first: the TTFT/total ratio has room to
/// show streaming's win even on the microsecond-scale tiny LM.
const TOKENS: u32 = 32;

/// Streams per arm.
const STREAMS_FULL: usize = 64;
const STREAMS_SMOKE: usize = 24;

/// tiny-lm's vocabulary width (one-hot prompt rows).
const VOCAB: usize = 16;

/// Per-forward-pass device time: each decoded token costs this much on
/// the replica, so a 32-token stream runs ~64 ms end to end while the
/// first token is ready after ~2 ms.
const TOKEN_COST: Duration = Duration::from_micros(2_000);

/// One measured stream.
struct StreamSample {
    ttft: Duration,
    total: Duration,
    tokens: u64,
}

/// Everything one arm produced.
struct ArmResult {
    samples: Vec<StreamSample>,
    out_of_order: usize,
    elapsed: Duration,
}

fn one_hot_prompt(token: usize) -> Tensor {
    let mut row = vec![0.0f32; VOCAB];
    row[token % VOCAB] = 1.0;
    Tensor::from_vec(Shape::mat(1, VOCAB), row).expect("prompt tensor")
}

/// Runs `streams` generative streams against `addr`, stamping TTFT and
/// total per stream and counting sequence violations.
fn run_arm(addr: std::net::SocketAddr, streams: usize) -> Result<ArmResult, String> {
    let mut client = DjinnClient::connect_with_timeout(addr, Duration::from_secs(10))
        .map_err(|e| format!("connect: {e}"))?;
    let mut samples = Vec::with_capacity(streams);
    let mut out_of_order = 0usize;
    let started = Instant::now();
    for i in 0..streams {
        let prompt = one_hot_prompt(i);
        let t0 = Instant::now();
        let id = client
            .stream_infer(
                "tiny-lm",
                &prompt,
                StreamMode::Generative { max_tokens: TOKENS },
            )
            .map_err(|e| format!("stream {i}: {e}"))?;
        let mut ttft = None;
        let mut tokens = 0u64;
        let mut expect_seq = 0u32;
        loop {
            let chunk = client
                .recv_chunk(id)
                .map_err(|e| format!("stream {i} chunk {expect_seq}: {e}"))?;
            if ttft.is_none() {
                ttft = Some(t0.elapsed());
            }
            if chunk.seq != expect_seq {
                out_of_order += 1;
            }
            expect_seq = chunk.seq + 1;
            tokens += 1;
            if chunk.last {
                break;
            }
        }
        if tokens != u64::from(TOKENS) {
            return Err(format!("stream {i}: {tokens} chunks, expected {TOKENS}"));
        }
        samples.push(StreamSample {
            ttft: ttft.expect("at least one chunk"),
            total: t0.elapsed(),
            tokens,
        });
    }
    Ok(ArmResult {
        samples,
        out_of_order,
        elapsed: started.elapsed(),
    })
}

/// Percentile over millisecond samples (nearest-rank).
fn pct_ms(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let streams = if smoke { STREAMS_SMOKE } else { STREAMS_FULL };

    // Two tiny-zoo replicas fronted by a load-aware router: the routed
    // arm measures the full scale-out path the acceptance gate names.
    let start_replica = || {
        let registry = ModelRegistry::with_tiny_test_zoo().expect("tiny zoo builds");
        let config = ServerConfig {
            service_delay: Some(TOKEN_COST),
            ..ServerConfig::default()
        };
        DjinnServer::start(registry, config).expect("replica starts")
    };
    let replica_a = start_replica();
    let replica_b = start_replica();
    let router = match DjinnRouter::start(RouterConfig {
        replicas: vec![replica_a.local_addr(), replica_b.local_addr()],
        policy: RoutePolicy::LoadAware,
        stats_interval: Duration::from_millis(10),
        ..RouterConfig::default()
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("router: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut summary = Table::new(
        "streaming_ttft",
        "Generative streaming (tiny-lm, 32 tokens greedy): TTFT vs. \
         whole-stream latency, direct and through the router",
        &[
            "Arm",
            "Streams",
            "TTFT p50 ms",
            "TTFT p99 ms",
            "Total p50 ms",
            "Total p99 ms",
            "TTFT/total",
            "tokens/s",
        ],
    );

    let mut total_out_of_order = 0usize;
    let mut router_ratio = f64::NAN;
    for (arm, addr) in [
        ("direct", replica_a.local_addr()),
        ("router", router.local_addr()),
    ] {
        let r = match run_arm(addr, streams) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{arm} arm failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        total_out_of_order += r.out_of_order;
        let ttfts: Vec<f64> = r
            .samples
            .iter()
            .map(|s| s.ttft.as_secs_f64() * 1e3)
            .collect();
        let totals: Vec<f64> = r
            .samples
            .iter()
            .map(|s| s.total.as_secs_f64() * 1e3)
            .collect();
        let tokens: u64 = r.samples.iter().map(|s| s.tokens).sum();
        let ratio = pct_ms(&ttfts, 0.5) / pct_ms(&totals, 0.5);
        if arm == "router" {
            router_ratio = ratio;
        }
        summary.push(vec![
            arm.into(),
            streams.to_string(),
            num(pct_ms(&ttfts, 0.5)),
            num(pct_ms(&ttfts, 0.99)),
            num(pct_ms(&totals, 0.5)),
            num(pct_ms(&totals, 0.99)),
            format!("{:.1}%", ratio * 100.0),
            num(tokens as f64 / r.elapsed.as_secs_f64()),
        ]);
        if r.out_of_order != 0 {
            eprintln!("{arm} arm: {} out-of-order chunks", r.out_of_order);
        }
    }

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();

    let ordered = total_out_of_order == 0;
    let streaming_wins = router_ratio < 0.25;
    let mut out = String::new();
    out.push_str(&summary.to_text());
    out.push('\n');
    out.push_str(&format!(
        "verdict: all chunks in order: {}; routed TTFT p50 at {:.1}% of \
         stream-total p50 (gate: < 25%): {}\n",
        if ordered { "yes" } else { "NO" },
        router_ratio * 100.0,
        if streaming_wins { "yes" } else { "NO" },
    ));
    print!("{out}");
    let _ = std::fs::create_dir_all("results");
    if let Err(e) = std::fs::write("results/streaming_bench.txt", &out) {
        eprintln!("warning: could not write results/streaming_bench.txt: {e}");
    }
    if !smoke {
        let _ = summary.write_csv(std::path::Path::new("results"));
    }
    if ordered && streaming_wins {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
