//! Batch-more vs. co-locate-more ablation on a shared device
//! (DESIGN.md §13): two models share one compute device, and the
//! coalescing policy is swept against arrival mix and SLA.
//!
//! ```text
//! cargo run -p bench --bin colocation --release [-- --smoke]
//! ```
//!
//! The setup pins the tradeoff the policies navigate. Both engines sit
//! on a one-unit [`Device::Cpu`] behind a shared [`DeviceScheduler`],
//! so dispatches serialize and lease waits are real. The executor is a
//! [`DelayExecutor`] with a dispatch cost (base) that batching
//! amortizes and a small per-query cost that it cannot — the service
//! shape of a device with per-kernel launch overhead. Arrivals are
//! open-loop Poisson: an `interactive` model whose rate never fills a
//! batch inside the window, and a `bulk` model whose rate does.
//!
//! `always-batch` waits out the full coalescing window, so interactive
//! requests eat the window on top of service and blow the SLA.
//! `always-colocate` is DjiNN's original shape: no batching at all —
//! immediate dispatch workers co-locate requests on the shared device
//! — so every request pays the full dispatch cost, the device
//! saturates far below the batched capacity, and the overload surfaces
//! as admission sheds and lease waits. The `dynamic` policy batches
//! adaptively per dispatch from queue depth, device idleness, and SLA
//! headroom — the claim this table checks is that it beats both
//! static extremes on SLA attainment and goodput at every swept
//! point. (The engine's zero-window continuous-batching mode,
//! [`ColocationPolicy::AlwaysColocate`], is a much stronger baseline —
//! backlog-driven batching self-corrects — and is reported as a
//! fourth arm, `colocate+cb`, rather than standing in for
//! no-batching.)
//!
//! Output: one summary table over (mix × SLA × policy) plus a
//! per-stage latency breakdown (queue/batch/lease/service) for the
//! tightest cell, written to stdout and `results/colocation_bench.txt`
//! with CSVs alongside. `--smoke` runs one cell per policy in a few
//! seconds — the CI wiring.

use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::render::{num, Table};
use djinn::trace::{ServerTrace, TraceAggregator};
use djinn::{
    BatchConfig, ColocationPolicy, CpuExecutor, DelayExecutor, Device, DeviceScheduler,
    DispatchPolicy, EngineConfig, InferenceEngine, ModelRegistry, RoutedReply, TraceRecord,
};
use tensor::{Tensor, Threading};

/// Fixed dispatch cost a batched forward pass pays once — the term
/// batching amortizes.
const BASE_COST: Duration = Duration::from_millis(4);
/// Marginal cost per stacked query — the term batching cannot remove.
const PER_ITEM_COST: Duration = Duration::from_micros(250);
/// Coalescing window of the batched engines.
const MAX_DELAY: Duration = Duration::from_millis(50);
/// Batch width cap.
const MAX_BATCH: usize = 8;
/// Admission queue bound per engine. Deliberately tight: a policy that
/// runs the device at critical utilization random-walks its queue into
/// this cap and sheds, which is how wasted dispatch overhead turns
/// into lost goodput instead of just latency.
const QUEUE_CAPACITY: usize = 32;

/// One swept operating point: per-model Poisson rates plus the SLA the
/// dynamic policy budgets against (and attainment is judged by).
struct Cell {
    mix: &'static str,
    /// Arrivals/second for the latency-sensitive model.
    interactive_rps: f64,
    /// Arrivals/second for the throughput model.
    bulk_rps: f64,
    sla: Duration,
}

/// One policy arm of the ablation: how the engines dispatch.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    /// Batched engine, full coalescing window.
    AlwaysBatch,
    /// No batching: immediate dispatch workers share the device.
    AlwaysColocate,
    /// Batched engine, zero window — continuous batching of whatever
    /// backlog exists at dispatch time.
    ColocateCb,
    /// Batched engine, SLA-budgeted adaptive window.
    Dynamic,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::AlwaysBatch => "batch",
            Arm::AlwaysColocate => "colocate",
            Arm::ColocateCb => "colocate+cb",
            Arm::Dynamic => "dynamic",
        }
    }
}

/// Outcome of one (cell, policy) run.
struct RunResult {
    attained: usize,
    total: usize,
    elapsed: Duration,
    p99_ms: f64,
    mean_lease_ms: f64,
    records: Vec<TraceRecord>,
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = if smoke {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(4)
    };
    let cells: Vec<Cell> = if smoke {
        vec![Cell {
            mix: "mixed",
            interactive_rps: 30.0,
            bulk_rps: 320.0,
            sla: Duration::from_millis(30),
        }]
    } else {
        let mut v = Vec::new();
        for sla_ms in [30u64, 45] {
            v.push(Cell {
                mix: "bulk-heavy",
                interactive_rps: 30.0,
                bulk_rps: 320.0,
                sla: Duration::from_millis(sla_ms),
            });
            v.push(Cell {
                mix: "interactive-heavy",
                interactive_rps: 240.0,
                bulk_rps: 80.0,
                sla: Duration::from_millis(sla_ms),
            });
        }
        v
    };

    let mut summary = Table::new(
        "colocation_policy",
        "Batch vs. co-locate vs. dynamic on one shared device \
         (open-loop Poisson arrivals, two models)",
        &[
            "Mix",
            "SLA ms",
            "Policy",
            "SLA attain %",
            "Goodput req/s",
            "p99 ms",
            "Lease wait ms",
        ],
    );
    // The breakdown shown at the end comes from the tightest-SLA
    // dynamic run: lease wait must be visible there as its own stage.
    let mut breakdown: Option<(String, TraceAggregator)> = None;
    let mut dynamic_wins = true;

    for cell in &cells {
        let arms = [
            Arm::AlwaysBatch,
            Arm::AlwaysColocate,
            Arm::ColocateCb,
            Arm::Dynamic,
        ];
        let mut cell_rows: Vec<(String, f64, f64)> = Vec::new();
        for arm in arms {
            let r = match run_cell(cell, arm, duration) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("run failed ({} / {}): {e}", cell.mix, arm.name());
                    return ExitCode::FAILURE;
                }
            };
            let attain = 100.0 * r.attained as f64 / r.total.max(1) as f64;
            let goodput = r.attained as f64 / r.elapsed.as_secs_f64();
            summary.push(vec![
                cell.mix.into(),
                format!("{}", cell.sla.as_millis()),
                arm.name().into(),
                num(attain),
                num(goodput),
                num(r.p99_ms),
                num(r.mean_lease_ms),
            ]);
            cell_rows.push((arm.name().into(), attain, goodput));
            if arm == Arm::Dynamic {
                let replace = match &breakdown {
                    None => true,
                    Some((label, _)) => !label.contains("sla=30") && cell.sla.as_millis() == 30,
                };
                if replace {
                    let mut agg = TraceAggregator::new();
                    for rec in &r.records {
                        agg.record(rec);
                    }
                    breakdown = Some((
                        format!("dynamic, {} mix, sla={}ms", cell.mix, cell.sla.as_millis()),
                        agg,
                    ));
                }
            }
        }
        // The tentpole claim, checked per cell: dynamic strictly beats
        // both static extremes (full-window batching and no-batching
        // co-location) on attainment AND goodput. The continuous-
        // batching arm is reported but not gated on: it is already an
        // adaptive policy, not a static extreme.
        let dynamic = &cell_rows[3];
        for stat in &cell_rows[..2] {
            if dynamic.1 <= stat.1 || dynamic.2 <= stat.2 {
                dynamic_wins = false;
                eprintln!(
                    "NOTE: dynamic ({:.1}% / {:.1} req/s) does not beat {} \
                     ({:.1}% / {:.1} req/s) in {} sla={}ms",
                    dynamic.1,
                    dynamic.2,
                    stat.0,
                    stat.1,
                    stat.2,
                    cell.mix,
                    cell.sla.as_millis()
                );
            }
        }
    }

    let mut out = String::new();
    out.push_str(&summary.to_text());
    out.push('\n');
    if let Some((label, agg)) = &breakdown {
        out.push_str(&format!("## per-stage breakdown — {label}\n\n"));
        out.push_str(&agg.table().render());
        out.push('\n');
    }
    out.push_str(&format!(
        "verdict: dynamic {} both static policies on SLA attainment and goodput \
         in every swept cell\n",
        if dynamic_wins {
            "beats"
        } else {
            "DOES NOT beat"
        }
    ));
    print!("{out}");
    let _ = summary.write_csv(std::path::Path::new("results"));
    if !smoke {
        if let Err(e) = std::fs::write("results/colocation_bench.txt", &out) {
            eprintln!("warning: could not write results/colocation_bench.txt: {e}");
        }
    }
    if dynamic_wins {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs one operating point under one policy: both engines on a shared
/// one-unit device, Poisson arrivals for `duration`, then drain.
fn run_cell(cell: &Cell, arm: Arm, duration: Duration) -> Result<RunResult, String> {
    let registry = ModelRegistry::with_tiny_test_zoo().map_err(|e| e.to_string())?;
    let scheduler = Arc::new(DeviceScheduler::new(Device::Cpu { threads: 1 }));
    let executor = Arc::new(DelayExecutor::with_per_item(
        CpuExecutor::new(Threading::new(1)),
        BASE_COST,
        PER_ITEM_COST,
    ));
    let batched = DispatchPolicy::Batched(BatchConfig {
        max_batch: MAX_BATCH,
        max_delay: MAX_DELAY,
    });
    let (dispatch, colocation) = match arm {
        Arm::AlwaysBatch => (batched, ColocationPolicy::AlwaysBatch),
        Arm::AlwaysColocate => (DispatchPolicy::Immediate, ColocationPolicy::AlwaysColocate),
        Arm::ColocateCb => (batched, ColocationPolicy::AlwaysColocate),
        Arm::Dynamic => (batched, ColocationPolicy::Dynamic { sla: cell.sla }),
    };
    let config = EngineConfig {
        policy: dispatch,
        queue_capacity: QUEUE_CAPACITY,
        workers: 4,
        colocation,
    };
    let names = ["tiny-mnist", "tiny-senna"];
    let rates = [cell.interactive_rps, cell.bulk_rps];
    let mut engines = Vec::new();
    let mut inputs = Vec::new();
    for name in names {
        let net = registry.get(name).map_err(|e| e.to_string())?;
        let shape = net.def().input_shape().with_batch(1);
        inputs.push(Tensor::random_uniform(shape, 0.5, 7));
        engines.push(InferenceEngine::start_shared(
            name,
            net,
            executor.clone() as Arc<dyn djinn::Executor>,
            config,
            Arc::clone(&scheduler),
        ));
    }

    // Pre-draw both models' Poisson schedules and merge them by time, so
    // one submitter thread replays the exact arrival process every run.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut schedule: Vec<(Duration, usize)> = Vec::new();
    for (model_idx, rate) in rates.iter().enumerate() {
        let mut t = Duration::ZERO;
        loop {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let u = (rng as f64 + 1.0) * 5.421_010_862_427_522e-20;
            t += Duration::from_secs_f64(-u.ln() / rate);
            if t >= duration {
                break;
            }
            schedule.push((t, model_idx));
        }
    }
    schedule.sort_by_key(|&(t, _)| t);
    let total = schedule.len();

    // Capacity covers every arrival, so the engine-side send never blocks.
    let (tx, rx) = mpsc::sync_channel::<RoutedReply>(total.max(1));
    let collector = std::thread::spawn(move || {
        // Completion time per token, in receive order. The channel
        // closes once the submitter's handle drops and every admitted
        // job has replied — shed jobs never reply, so drain to
        // disconnect instead of counting to `total`.
        let mut done: Vec<(u64, Instant, Result<djinn::trace::EngineSpans, ()>)> =
            Vec::with_capacity(total);
        while let Ok(reply) = rx.recv() {
            let spans = reply.result.map(|(_, s)| s).map_err(|_| ());
            done.push((reply.token, Instant::now(), spans));
        }
        done
    });

    let started = Instant::now();
    let mut submit_times: Vec<Instant> = Vec::with_capacity(total);
    for (token, &(at, model_idx)) in schedule.iter().enumerate() {
        if let Some(gap) = at.checked_sub(started.elapsed()) {
            std::thread::sleep(gap);
        }
        submit_times.push(Instant::now());
        match engines[model_idx].submit_routed(inputs[model_idx].clone(), token as u64, tx.clone())
        {
            Ok(()) => {}
            // Admission shed: the request is offered load that the
            // policy failed to serve — it stays in `total` and counts
            // against attainment, exactly like a late reply.
            Err(djinn::DjinnError::Busy { .. }) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    drop(tx);
    let done = collector.join().map_err(|_| "collector panicked")?;
    let elapsed = started.elapsed();
    for engine in engines {
        engine.shutdown();
    }

    let mut attained = 0usize;
    let mut lat_ms: Vec<f64> = Vec::with_capacity(done.len());
    let mut lease_sum_ms = 0.0f64;
    let mut records = Vec::with_capacity(done.len());
    for (token, finished, spans) in done {
        let Ok(spans) = spans else { continue };
        let latency = finished.duration_since(submit_times[token as usize]);
        if latency <= cell.sla {
            attained += 1;
        }
        lat_ms.push(latency.as_secs_f64() * 1e3);
        lease_sum_ms += spans.lease_us as f64 / 1e3;
        let (_, model_idx) = schedule[token as usize];
        let e2e_us = latency.as_micros() as u64;
        // In-process run: the server span is the whole request, wire 0.
        records.push(TraceRecord::new(
            names[model_idx],
            e2e_us,
            ServerTrace::new(token, spans, e2e_us),
        ));
    }
    lat_ms.sort_by(f64::total_cmp);
    let p99_ms = djinn::trace::percentile(&lat_ms, 0.99).unwrap_or(f64::NAN);
    let n = lat_ms.len().max(1) as f64;
    Ok(RunResult {
        attained,
        total,
        elapsed,
        p99_ms,
        mean_lease_ms: lease_sum_ms / n,
        records,
    })
}
