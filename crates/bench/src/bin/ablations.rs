//! Design-choice ablations (DESIGN.md §5): each section removes one
//! mechanism and reports the metric the paper's figures are built on.
//!
//! ```text
//! cargo run -p bench --bin ablations --release
//! ```

use bench::render::{num, Table};
use dnn::zoo::App;
use gpusim::{simulate, ConcurrencyMode, ServerConfig, ServiceWorkload};
use std::process::ExitCode;
use wsc::{provision, provision_with, AppPerfDb, Mix, NetworkTech, TcoParams, WscDesign};

fn main() -> ExitCode {
    eprintln!("building models…");
    let db = match AppPerfDb::build() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to build performance database: {e}");
            return ExitCode::FAILURE;
        }
    };
    for table in [
        ablation_batching(),
        ablation_mps(),
        ablation_colocation(),
        ablation_host_bandwidth(),
        ablation_rightsizing(&db),
        ablation_provisioning(&db),
    ] {
        println!("{}", table.to_text());
        if let Err(e) = table.write_csv(std::path::Path::new("results")) {
            eprintln!("warning: could not write {}: {e}", table.id);
        }
    }
    ExitCode::SUCCESS
}

fn workload(app: App, batch: usize) -> ServiceWorkload {
    ServiceWorkload::for_app(&perf::GpuSpec::k40(), app, batch)
        .expect("zoo networks always profile")
}

/// Remove query batching: run every app at batch 1 vs its Table 3 batch.
fn ablation_batching() -> Table {
    let mut t = Table::new(
        "ablation_batching",
        "Batching off vs on (single GPU, single instance)",
        &["App", "QPS batch=1", "QPS batch=N", "Gain"],
    );
    let cfg = ServerConfig::k40_server(1);
    for app in App::ALL {
        let b = app.service_meta().batch_size;
        let q1 = simulate(&cfg, &[(workload(app, 1), 0)], 30).qps;
        let qn = simulate(&cfg, &[(workload(app, b), 0)], 30).qps;
        t.push(vec![app.name().into(), num(q1), num(qn), num(qn / q1)]);
    }
    t
}

/// Remove MPS: 4 concurrent instances with kernel co-scheduling vs
/// time-sliced context switching.
fn ablation_mps() -> Table {
    let mut t = Table::new(
        "ablation_mps",
        "MPS vs time-sliced GPU sharing (4 instances, Table 3 batches)",
        &[
            "App",
            "MPS QPS",
            "Timeshared QPS",
            "MPS latency ms",
            "TS latency ms",
        ],
    );
    for app in App::ALL {
        let b = app.service_meta().batch_size;
        let run = |mode| {
            let cfg = ServerConfig::k40_server(1).with_mode(mode);
            let v: Vec<_> = (0..4).map(|_| (workload(app, b), 0)).collect();
            simulate(&cfg, &v, 25)
        };
        let mps = run(ConcurrencyMode::Mps);
        let ts = run(ConcurrencyMode::Timeshared);
        t.push(vec![
            app.name().into(),
            num(mps.qps),
            num(ts.qps),
            num(mps.mean_latency_s * 1e3),
            num(ts.mean_latency_s * 1e3),
        ]);
    }
    t
}

/// Co-locate *different* services on one GPU under MPS: complementary
/// resource profiles (compute-bound ASR beside memory-bound FACE beside
/// latency-bound NLP) should overlap better than homogeneous pairs — the
/// centralized-service consolidation argument of §1.
fn ablation_colocation() -> Table {
    let mut t = Table::new(
        "ablation_colocation",
        "Heterogeneous MPS colocation: paired QPS vs half of each app's solo 2-instance QPS",
        &["Pair", "QPS A", "QPS B", "Colocation efficiency"],
    );
    let cfg = ServerConfig::k40_server(1);
    let solo_share = |app: App| {
        let b = app.service_meta().batch_size;
        let v: Vec<_> = (0..2).map(|_| (workload(app, b), 0)).collect();
        simulate(&cfg, &v, 25).qps / 2.0
    };
    for (a, b) in [
        (App::Asr, App::Face),
        (App::Asr, App::Pos),
        (App::Imc, App::Pos),
        (App::Face, App::Pos),
    ] {
        let pair = vec![
            (workload(a, a.service_meta().batch_size), 0usize),
            (workload(b, b.service_meta().batch_size), 0usize),
        ];
        let r = simulate(&cfg, &pair, 25);
        let qa = r.per_instance[0].qps;
        let qb = r.per_instance[1].qps;
        // Efficiency: achieved share relative to running alone with a
        // same-app sibling (1.0 = colocation costs nothing).
        let eff = 0.5 * (qa / solo_share(a) + qb / solo_share(b));
        t.push(vec![
            format!("{}+{}", a.name(), b.name()),
            num(qa),
            num(qb),
            num(eff),
        ]);
    }
    t
}

/// Remove the host-bandwidth ceiling: the Fig 11 vs Fig 12 mechanism.
fn ablation_host_bandwidth() -> Table {
    let mut t = Table::new(
        "ablation_host_bw",
        "8-GPU scaling with the shared-host bandwidth model on vs off",
        &["App", "Scaling (limited)", "Scaling (pinned)"],
    );
    let base = ServerConfig::k40_server(1);
    for app in App::ALL {
        let lim = gpusim::server_sweep(&base, app, &[1, 8], 4, false)
            .expect("zoo networks always profile");
        let pin = gpusim::server_sweep(&base, app, &[1, 8], 4, true)
            .expect("zoo networks always profile");
        t.push(vec![
            app.name().into(),
            num(lim[1].1 / lim[0].1),
            num(pin[1].1 / pin[0].1),
        ]);
    }
    t
}

/// Remove disaggregation's GPU right-sizing: force every GPU box to carry
/// 12 GPUs like an integrated server.
fn ablation_rightsizing(db: &AppPerfDb) -> Table {
    let mut t = Table::new(
        "ablation_rightsizing",
        "Disaggregated right-sized GPUs vs fixed 12-GPU boxes (100% DNN)",
        &["Mix", "Right-sized TCO $", "Fixed-12 TCO $", "Penalty"],
    );
    let tech = NetworkTech::pcie_v3_10gbe();
    let params = TcoParams::paper();
    for mix in [Mix::Mixed, Mix::Image, Mix::Nlp] {
        let right = provision(WscDesign::DisaggregatedGpu, mix, 1.0, db, &tech, &params);
        // Fixed-12: same box count, 12 GPUs in every box.
        let fixed_gpus = right.wimpy_servers * 12.0;
        let fixed_breakdown = wsc::CostBreakdown::from_bom(
            &params,
            right.beefy_servers,
            right.wimpy_servers,
            fixed_gpus,
            right.nic_units,
            right.extra_hw,
        );
        t.push(vec![
            mix.name().into(),
            num(right.tco_total()),
            num(fixed_breakdown.total()),
            num(fixed_breakdown.total() / right.tco_total()),
        ]);
    }
    t
}

/// Include pre/post-processing capacity in the GPU designs: the paper's
/// headline gains assume the DNN service is the provisioning target; this
/// shows how ASR's decode stage and SENNA's per-word features compress
/// the TCO advantage when charged.
fn ablation_provisioning(db: &AppPerfDb) -> Table {
    let mut t = Table::new(
        "ablation_provisioning",
        "Disaggregated TCO gain vs CPU-only, with/without pre/post provisioning (100% DNN)",
        &["Mix", "Gain (DNN only)", "Gain (with pre/post)"],
    );
    let tech = NetworkTech::pcie_v3_10gbe();
    let params = TcoParams::paper();
    for mix in [Mix::Mixed, Mix::Image, Mix::Nlp] {
        let cpu = provision(WscDesign::CpuOnly, mix, 1.0, db, &tech, &params);
        let dnn_only = provision(WscDesign::DisaggregatedGpu, mix, 1.0, db, &tech, &params);
        let with_pp = provision_with(
            WscDesign::DisaggregatedGpu,
            mix,
            1.0,
            db,
            &tech,
            &params,
            true,
        );
        t.push(vec![
            mix.name().into(),
            num(cpu.tco_total() / dnn_only.tco_total()),
            num(cpu.tco_total() / with_pp.tco_total()),
        ]);
    }
    t
}
