//! Content-keyed cache sweep (DESIGN.md §14): duplicate rate vs. cost.
//!
//! ```text
//! cargo run -p bench --bin caching --release [-- --smoke]
//! ```
//!
//! Each cell replays the *same* deterministic request sequence against
//! two in-process servers — `--cache off` and `--cache both` — at a
//! controlled duplicate rate (0%, 50%, 90%). The sequence is built so a
//! target duplicate rate is exact by construction: `D = R·(1−dup)`
//! distinct inputs, each repeated back-to-back, so the cached arm takes
//! `R − D` exact-cache hits. Three claims are checked per run:
//!
//! 1. **Correctness**: every response from the cached arm is bitwise
//!    identical to the uncached arm's response for the same request.
//! 2. **Hit economics**: on the 90%-duplicate row, the p50 of
//!    hit-flagged requests is at least 2x cheaper than the p50 of
//!    misses — a hit skips queue, lease, and the forward pass entirely.
//! 3. **Accounting**: client-observed hits equal the duplicate count
//!    the sequence was built to offer.
//!
//! Output: a summary table over (duplicate rate × cache mode) with p50
//! end-to-end latency, throughput, and hit rate, written to stdout and
//! `results/caching_bench.txt` (plus CSV). `--smoke` runs only the
//! 90%-duplicate cell against the tiny zoo in well under a minute and
//! exits nonzero unless the measured hit rate exceeds 0.8 — the CI
//! gate.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use bench::render::{num, Table};
use djinn::{DjinnClient, DjinnServer, ModelRegistry, ServerConfig, TraceRecord};
use dnn::zoo::{self, App};
use tensor::Tensor;

/// Requests per (cell, arm) run.
const REQUESTS_FULL: usize = 240;
const REQUESTS_SMOKE: usize = 120;

/// Duplicate-rate sweep: fraction of requests whose input bytes were
/// already seen earlier in the sequence.
const DUP_RATES: [f64; 3] = [0.0, 0.5, 0.9];

/// Outcome of one (cell, arm) run.
struct RunResult {
    outputs: Vec<Vec<u32>>,
    records: Vec<TraceRecord>,
    elapsed: Duration,
}

/// The deterministic request sequence for a duplicate rate: index `i`
/// maps to distinct-input slot `i * distinct / requests`, so each of the
/// `distinct` inputs is sent in one consecutive run and the realized
/// duplicate rate is exactly `1 - distinct/requests`.
fn sequence(requests: usize, dup: f64) -> Vec<usize> {
    let distinct = (((requests as f64) * (1.0 - dup)).round() as usize).clamp(1, requests);
    (0..requests).map(|i| i * distinct / requests).collect()
}

/// Builds the shared input pool: `distinct` tensors for `model`, seeded
/// per slot so both arms replay identical bytes.
fn pool(model: &str, slots: usize) -> Vec<Tensor> {
    let shape = if let Some(app) = App::from_name(model) {
        zoo::netdef(app).input_shape().with_batch(1)
    } else {
        let def = zoo::tiny_test_zoo()
            .into_iter()
            .find(|d| d.name() == model)
            .expect("known model");
        def.input_shape().with_batch(1)
    };
    (0..slots)
        .map(|slot| Tensor::random_uniform(shape.clone(), 0.5, 99 + 7919 * slot as u64))
        .collect()
}

fn registry_for(model: &str) -> ModelRegistry {
    if let Some(app) = App::from_name(model) {
        let mut reg = ModelRegistry::new();
        reg.register(model, zoo::network(app).expect("zoo model builds"));
        reg
    } else {
        ModelRegistry::with_tiny_test_zoo().expect("tiny zoo builds")
    }
}

fn run_arm(
    model: &str,
    cache: &str,
    seq: &[usize],
    inputs: &[Tensor],
) -> Result<RunResult, String> {
    let config = ServerConfig {
        cache_mode: cache.parse().expect("valid cache mode"),
        cache_bytes: 64 * 1024 * 1024,
        ..ServerConfig::default()
    };
    let server =
        DjinnServer::start(registry_for(model), config).map_err(|e| format!("server: {e}"))?;
    let mut client =
        DjinnClient::connect(server.local_addr()).map_err(|e| format!("connect: {e}"))?;
    let mut outputs = Vec::with_capacity(seq.len());
    let mut records = Vec::with_capacity(seq.len());
    let started = Instant::now();
    for &slot in seq {
        let (out, record) = client
            .infer_traced(model, &inputs[slot])
            .map_err(|e| format!("infer: {e}"))?;
        outputs.push(out.data().iter().map(|f| f.to_bits()).collect());
        records.push(record);
    }
    let elapsed = started.elapsed();
    server.shutdown();
    Ok(RunResult {
        outputs,
        records,
        elapsed,
    })
}

fn p50_ms(mut samples: Vec<f64>) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    Some(samples[samples.len() / 2])
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".into(), num)
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (model, requests) = if smoke {
        ("tiny-senna", REQUESTS_SMOKE)
    } else {
        ("pos", REQUESTS_FULL)
    };
    let rates: &[f64] = if smoke { &[0.9] } else { &DUP_RATES };

    let mut summary = Table::new(
        "caching_sweep",
        "Content-keyed cache vs. duplicate rate (closed loop, one \
         connection, exact+embed cache vs. off)",
        &[
            "Dup %",
            "Cache",
            "p50 ms",
            "req/s",
            "Hit rate",
            "Hit p50 ms",
            "Miss p50 ms",
        ],
    );
    let mut all_bitwise_identical = true;
    let mut hit_twice_as_cheap = true;
    let mut smoke_hit_rate = 0.0f64;

    for &dup in rates {
        let seq = sequence(requests, dup);
        let distinct = seq.iter().max().copied().unwrap_or(0) + 1;
        let inputs = pool(model, distinct);
        let expected_hits = (requests - distinct) as u64;

        let mut off_outputs: Option<Vec<Vec<u32>>> = None;
        for cache in ["off", "both"] {
            let r = match run_arm(model, cache, &seq, &inputs) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("run failed (dup={dup}, cache={cache}): {e}");
                    return ExitCode::FAILURE;
                }
            };
            let hits = r.records.iter().filter(|rec| rec.cache_hit).count() as u64;
            let hit_rate = hits as f64 / requests as f64;
            let lat = |pred: &dyn Fn(&TraceRecord) -> bool| {
                p50_ms(
                    r.records
                        .iter()
                        .filter(|rec| pred(rec))
                        .map(|rec| rec.e2e_us as f64 / 1e3)
                        .collect(),
                )
            };
            let p50 = lat(&|_| true);
            let hit_p50 = lat(&|rec: &TraceRecord| rec.cache_hit);
            let miss_p50 = lat(&|rec: &TraceRecord| !rec.cache_hit);
            summary.push(vec![
                format!("{:.0}", dup * 100.0),
                cache.into(),
                fmt_opt(p50),
                num(requests as f64 / r.elapsed.as_secs_f64()),
                num(hit_rate),
                fmt_opt(hit_p50),
                fmt_opt(miss_p50),
            ]);
            match cache {
                "off" => {
                    if hits != 0 {
                        eprintln!("cache-off arm reported {hits} hits");
                        return ExitCode::FAILURE;
                    }
                    off_outputs = Some(r.outputs);
                }
                _ => {
                    if hits != expected_hits {
                        eprintln!(
                            "dup={dup}: {hits} hits, sequence offers exactly {expected_hits}"
                        );
                        return ExitCode::FAILURE;
                    }
                    smoke_hit_rate = hit_rate;
                    let off = off_outputs.as_ref().expect("off arm ran first");
                    for (i, (a, b)) in off.iter().zip(&r.outputs).enumerate() {
                        if a != b {
                            eprintln!("dup={dup}: request {i} differs bitwise between arms");
                            all_bitwise_identical = false;
                        }
                    }
                    // The hit-economics gate applies to the full run
                    // only: tiny-zoo forward passes cost single-digit
                    // microseconds, so in --smoke the wire dominates
                    // both sides and the ratio is meaningless.
                    if dup >= 0.89 && !smoke {
                        if let (Some(h), Some(m)) = (hit_p50, miss_p50) {
                            if h * 2.0 > m {
                                hit_twice_as_cheap = false;
                                eprintln!(
                                    "NOTE: hit p50 {h:.3} ms is not 2x cheaper than \
                                     miss p50 {m:.3} ms"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&summary.to_text());
    out.push('\n');
    out.push_str(&format!(
        "verdict: cached outputs bitwise-identical to uncached: {}; \
         hit p50 at least 2x cheaper than miss p50 on the 90%-dup row: {}\n",
        if all_bitwise_identical { "yes" } else { "NO" },
        if hit_twice_as_cheap { "yes" } else { "NO" },
    ));
    print!("{out}");
    if !smoke {
        let _ = summary.write_csv(std::path::Path::new("results"));
        if let Err(e) = std::fs::write("results/caching_bench.txt", &out) {
            eprintln!("warning: could not write results/caching_bench.txt: {e}");
        }
    }
    if smoke && smoke_hit_rate <= 0.8 {
        eprintln!("smoke gate: hit rate {smoke_hit_rate:.2} <= 0.8");
        return ExitCode::FAILURE;
    }
    if all_bitwise_identical && hit_twice_as_cheap {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
