//! One function per paper experiment. Every function is pure computation
//! over the calibrated models and returns [`Table`]s ready to print.

use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use gpusim::{simulate, standard_server_result, ConcurrencyMode, ServerConfig, ServiceWorkload};
use perf::{CpuSpec, GpuSpec};
use tonic_suite::fig4;
use wsc::{network_upgrade_study, provision, AppPerfDb, Mix, NetworkTech, TcoParams, WscDesign};

use crate::render::{num, Table};

/// Shared inputs for all experiments, built once.
#[derive(Debug)]
pub struct ExperimentSet {
    gpu: GpuSpec,
    cpu: CpuSpec,
    db: AppPerfDb,
}

/// CPU seconds for one query's DNN portion (single core, the paper's
/// Fig 5 baseline).
fn cpu_query_seconds(cpu: &CpuSpec, app: App) -> f64 {
    let meta = app.service_meta();
    let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query)
        .expect("zoo networks always profile");
    perf::cpu_forward_seconds(cpu, &p)
}

/// GPU forward timing for `queries` stacked queries of `app`.
fn gpu_forward_timing(gpu: &GpuSpec, app: App, queries: usize) -> perf::ForwardTiming {
    let meta = app.service_meta();
    let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query * queries)
        .expect("zoo networks always profile");
    perf::gpu_forward(gpu, &p)
}

impl ExperimentSet {
    /// Builds the shared context (runs the per-app GPU simulations once).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn new() -> dnn::Result<Self> {
        Ok(ExperimentSet {
            gpu: GpuSpec::k40(),
            cpu: CpuSpec::xeon_e5_2620_v2(),
            db: AppPerfDb::build()?,
        })
    }

    /// Experiment ids in paper order.
    pub fn ids() -> &'static [&'static str] {
        &[
            "table1",
            "table3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig15",
            "fig16",
            "ext-energy",
            "ext-devices",
        ]
    }

    /// Runs one experiment by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id (see [`ExperimentSet::ids`]).
    pub fn run(&self, id: &str) -> Vec<Table> {
        match id {
            "table1" => self.table1(),
            "table3" => self.table3(),
            "fig4" => self.fig4(),
            "fig5" => self.fig5(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8" => self.fig8_9(true),
            "fig9" => self.fig8_9(false),
            "fig10" => self.fig10(),
            "fig11" => self.fig11_12(false),
            "fig12" => self.fig11_12(true),
            "fig13" => self.fig13(),
            "fig15" => self.fig15(),
            "fig16" => self.fig16(),
            "ext-energy" => self.ext_energy(),
            "ext-devices" => self.ext_devices(),
            other => panic!("unknown experiment `{other}`"),
        }
    }

    /// Table 1: Tonic Suite neural network architectures.
    pub fn table1(&self) -> Vec<Table> {
        let mut t = Table::new(
            "table1",
            "Tonic Suite neural network architectures",
            &["App", "Network", "Type", "Layers", "Params", "Paper params"],
        );
        for app in App::ALL {
            let def = zoo::netdef(app);
            let kind = if app.is_image() { "CNN" } else { "DNN" };
            t.push(vec![
                app.name().into(),
                app.network_name().into(),
                kind.into(),
                def.depth().to_string(),
                def.param_count().to_string(),
                app.table1_params().to_string(),
            ]);
        }
        vec![t]
    }

    /// Table 3: DjiNN service application payloads and chosen batch sizes.
    pub fn table3(&self) -> Vec<Table> {
        let mut t = Table::new(
            "table3",
            "DjiNN service applications (payloads and batch sizes)",
            &[
                "App",
                "Input",
                "Input KB",
                "Output",
                "Output KB (DNN)",
                "Batch size",
            ],
        );
        for app in App::ALL {
            let meta = app.service_meta();
            let p = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query)
                .expect("zoo networks always profile");
            t.push(vec![
                app.name().into(),
                meta.input_desc.into(),
                num(meta.input_kb),
                meta.output_desc.into(),
                num(p.output_bytes / 1024.0),
                meta.batch_size.to_string(),
            ]);
        }
        vec![t]
    }

    /// Fig 4: cycle breakdown between DNN and pre/post-processing.
    pub fn fig4(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig4",
            "Cycle breakdown for each DNN application (CPU)",
            &["App", "DNN %", "Pre %", "Post %"],
        );
        for app in App::ALL {
            let b = fig4::cycle_breakdown(&self.cpu, app);
            let total = b.dnn_s + b.pre_s + b.post_s;
            t.push(vec![
                app.name().into(),
                num(100.0 * b.dnn_s / total),
                num(100.0 * b.pre_s / total),
                num(100.0 * b.post_s / total),
            ]);
        }
        vec![t]
    }

    /// Fig 5: GPU over single-thread-CPU throughput, batch 1, no MPS.
    pub fn fig5(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig5",
            "Throughput improvement of a K40 over one Xeon core (batch 1)",
            &["App", "CPU QPS", "GPU QPS", "Speedup"],
        );
        for app in App::ALL {
            let cpu_s = cpu_query_seconds(&self.cpu, app);
            let gpu_s = gpu_forward_timing(&self.gpu, app, 1).seconds;
            t.push(vec![
                app.name().into(),
                num(1.0 / cpu_s),
                num(1.0 / gpu_s),
                num(cpu_s / gpu_s),
            ]);
        }
        vec![t]
    }

    /// Fig 6: performance-counter bottleneck analysis at batch 1.
    pub fn fig6(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig6",
            "Bottleneck analysis: IPC/peak, occupancy, L1 & L2 utilization",
            &["App", "IPC/Peak", "Occupancy", "L1+Shared util", "L2 util"],
        );
        for app in App::ALL {
            let f = gpu_forward_timing(&self.gpu, app, 1);
            t.push(vec![
                app.name().into(),
                num(f.ipc_ratio),
                num(f.occupancy),
                num(f.l1_utilization),
                num(f.l2_utilization),
            ]);
        }
        vec![t]
    }

    /// Fig 7: throughput (a), occupancy (b) and latency (c) vs batch size.
    pub fn fig7(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig7",
            "Throughput, GPU occupancy and latency with varying batch sizes",
            &["App", "Batch", "QPS", "Occupancy", "Latency ms"],
        );
        let cfg = ServerConfig::k40_server(1);
        for app in App::ALL {
            for &batch in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
                let w = ServiceWorkload::for_app(&cfg.gpu, app, batch)
                    .expect("zoo networks always profile");
                let r = simulate(&cfg, &[(w, 0)], 20);
                let occ = gpu_forward_timing(&self.gpu, app, batch).occupancy;
                t.push(vec![
                    app.name().into(),
                    batch.to_string(),
                    num(r.qps),
                    num(occ),
                    num(r.mean_latency_s * 1e3),
                ]);
            }
        }
        vec![t]
    }

    /// Figs 8 and 9: throughput / latency vs concurrent service instances,
    /// MPS vs time-shared.
    pub fn fig8_9(&self, throughput: bool) -> Vec<Table> {
        let (id, caption, metric) = if throughput {
            (
                "fig8",
                "Throughput vs concurrent DNN service instances",
                "QPS",
            )
        } else {
            (
                "fig9",
                "Latency vs concurrent DNN service instances",
                "Latency ms",
            )
        };
        let mut t = Table::new(
            id,
            caption,
            &[
                "App",
                "Instances",
                &format!("MPS {metric}"),
                &format!("No-MPS {metric}"),
            ],
        );
        for app in App::ALL {
            let batch = app.service_meta().batch_size;
            for &n in &[1usize, 2, 4, 8, 12, 16] {
                let run = |mode: ConcurrencyMode| {
                    let cfg = ServerConfig::k40_server(1).with_mode(mode);
                    let instances: Vec<_> = (0..n)
                        .map(|_| {
                            (
                                ServiceWorkload::for_app(&cfg.gpu, app, batch)
                                    .expect("zoo networks always profile"),
                                0,
                            )
                        })
                        .collect();
                    simulate(&cfg, &instances, 15)
                };
                let mps = run(ConcurrencyMode::Mps);
                let ts = run(ConcurrencyMode::Timeshared);
                let pick = |r: &gpusim::SimResult| {
                    if throughput {
                        num(r.qps)
                    } else {
                        num(r.mean_latency_s * 1e3)
                    }
                };
                t.push(vec![
                    app.name().into(),
                    n.to_string(),
                    pick(&mps),
                    pick(&ts),
                ]);
            }
        }
        vec![t]
    }

    /// Fig 10: final single-GPU speedup with batching + 4 MPS instances.
    pub fn fig10(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig10",
            "Single-GPU throughput improvement with batching + MPS",
            &["App", "Batch", "GPU QPS", "CPU QPS", "Speedup"],
        );
        let cfg = ServerConfig::k40_server(1);
        for app in App::ALL {
            let batch = app.service_meta().batch_size;
            let r = standard_server_result(&cfg, app, 4, batch, false)
                .expect("zoo networks always profile");
            let cpu_qps = 1.0 / cpu_query_seconds(&self.cpu, app);
            t.push(vec![
                app.name().into(),
                batch.to_string(),
                num(r.qps),
                num(cpu_qps),
                num(r.qps / cpu_qps),
            ]);
        }
        vec![t]
    }

    /// Figs 11 and 12: throughput scaling with GPU count, with and
    /// without PCIe/host bandwidth limits.
    pub fn fig11_12(&self, pinned: bool) -> Vec<Table> {
        let (id, caption) = if pinned {
            (
                "fig12",
                "Throughput vs GPUs, no PCIe bandwidth limits (pinned inputs)",
            )
        } else {
            ("fig11", "Throughput vs GPUs (PCIe/host bandwidth limited)")
        };
        let mut t = Table::new(id, caption, &["App", "GPUs", "QPS", "Scaling vs 1 GPU"]);
        let base = ServerConfig::k40_server(1);
        for app in App::ALL {
            let sweep = gpusim::server_sweep(&base, app, &[1, 2, 4, 8], 4, pinned)
                .expect("zoo networks always profile");
            let one = sweep[0].1;
            for (g, qps) in sweep {
                t.push(vec![
                    app.name().into(),
                    g.to_string(),
                    num(qps),
                    num(qps / one),
                ]);
            }
        }
        vec![t]
    }

    /// Fig 13: network bandwidth required to sustain peak throughput.
    pub fn fig13(&self) -> Vec<Table> {
        let mut t = Table::new(
            "fig13",
            "Bandwidth requirement vs GPUs (refs: PCIe v3 15.875 GB/s, 10GbE 1.25 GB/s)",
            &["App", "GPUs", "Required GB/s", ">PCIe v3?", ">10GbE?"],
        );
        for (app, series) in wsc::bandwidth::sweep(&self.db, &[1, 2, 4, 8]) {
            for (g, gbps) in series {
                t.push(vec![
                    app.name().into(),
                    g.to_string(),
                    num(gbps),
                    (gbps > wsc::bandwidth::PCIE_V3_GBPS).to_string(),
                    (gbps > wsc::bandwidth::TEN_GBE_GBPS).to_string(),
                ]);
            }
        }
        vec![t]
    }

    /// Fig 15: normalized TCO of the three WSC designs vs DNN share, for
    /// the MIXED, IMAGE and NLP workloads.
    pub fn fig15(&self) -> Vec<Table> {
        let tech = NetworkTech::pcie_v3_10gbe();
        let params = TcoParams::paper();
        let mut tables = Vec::new();
        for (sub, mix) in [("a", Mix::Mixed), ("b", Mix::Image), ("c", Mix::Nlp)] {
            let mut t = Table::new(
                &format!("fig15{sub}"),
                &format!(
                    "TCO normalized to CPU-Only vs %DNN ({} workload, lower is better)",
                    mix.name()
                ),
                &["DNN %", "CPU Only", "Integrated", "Disaggregated"],
            );
            for pct in (0..=10).map(|i| i as f64 / 10.0) {
                let cpu = provision(WscDesign::CpuOnly, mix, pct, &self.db, &tech, &params);
                let int = provision(WscDesign::IntegratedGpu, mix, pct, &self.db, &tech, &params);
                let dis = provision(
                    WscDesign::DisaggregatedGpu,
                    mix,
                    pct,
                    &self.db,
                    &tech,
                    &params,
                );
                let base = cpu.tco_total();
                t.push(vec![
                    num(100.0 * pct),
                    num(1.0),
                    num(int.tco_total() / base),
                    num(dis.tco_total() / base),
                ]);
            }
            tables.push(t);
        }
        tables
    }

    /// Fig 16: performance and TCO impact of network/interconnect
    /// upgrades (Table 6 design points) for MIXED and NLP workloads.
    pub fn fig16(&self) -> Vec<Table> {
        let params = TcoParams::paper();
        let mut tables = Vec::new();
        for (sub, mix) in [("a", Mix::Mixed), ("b", Mix::Nlp)] {
            let mut t = Table::new(
                &format!("fig16{sub}"),
                &format!(
                    "Network upgrades: performance and TCO breakdown ({} workload, \
                     TCO normalized to baseline CPU-Only)",
                    mix.name()
                ),
                &[
                    "Tech",
                    "Perf x",
                    "Design",
                    "Servers",
                    "GPUs",
                    "Network",
                    "Power+opex",
                    "Total",
                ],
            );
            let baseline_cpu = provision(
                WscDesign::CpuOnly,
                mix,
                1.0,
                &self.db,
                &NetworkTech::pcie_v3_10gbe(),
                &params,
            )
            .tco_total();
            for tech in NetworkTech::all() {
                let study = network_upgrade_study(mix, &tech, &self.db, &params);
                for (name, r) in [
                    ("CPU Only", &study.cpu_only),
                    ("Integrated", &study.integrated),
                    ("Disaggregated", &study.disaggregated),
                ] {
                    let b = &r.breakdown;
                    t.push(vec![
                        tech.name.clone(),
                        num(study.perf_improvement),
                        name.into(),
                        num((b.servers + b.facility + b.maintenance) / baseline_cpu),
                        num(b.gpus / baseline_cpu),
                        num(b.network / baseline_cpu),
                        num(b.power_opex / baseline_cpu),
                        num(b.total() / baseline_cpu),
                    ]);
                }
            }
            tables.push(t);
        }
        tables
    }
}

impl ExperimentSet {
    /// Extension: energy per query — the efficiency story behind the TCO
    /// power terms ("we measure power on our GPU-enabled system", §6.3).
    pub fn ext_energy(&self) -> Vec<Table> {
        let mut t = Table::new(
            "ext-energy",
            "Energy per query: one Xeon core vs one K40 (Table 3 batches)",
            &[
                "App",
                "CPU J/query",
                "GPU W (avg)",
                "GPU J/query",
                "Energy gain",
            ],
        );
        for app in App::ALL {
            let meta = app.service_meta();
            let cpu_s = cpu_query_seconds(&self.cpu, app);
            let cpu_j = cpu_s * self.cpu.core_power_w;
            let f = gpu_forward_timing(&self.gpu, app, meta.batch_size);
            let gpu_j = f.seconds * f.avg_power_w / meta.batch_size as f64;
            t.push(vec![
                app.name().into(),
                num(cpu_j),
                num(f.avg_power_w),
                num(gpu_j),
                num(cpu_j / gpu_j),
            ]);
        }
        vec![t]
    }

    /// Extension: device sensitivity — the Fig 5 speedups across three
    /// GPU generations (K20 / K40 / Titan X).
    pub fn ext_devices(&self) -> Vec<Table> {
        let mut t = Table::new(
            "ext-devices",
            "Batch-1 speedup over one Xeon core across GPU generations",
            &["App", "K20", "K40", "Titan X"],
        );
        let devices = [GpuSpec::k20(), GpuSpec::k40(), GpuSpec::titan_x()];
        for app in App::ALL {
            let cpu_s = cpu_query_seconds(&self.cpu, app);
            let meta = app.service_meta();
            let profile = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query)
                .expect("zoo networks always profile");
            let mut row = vec![app.name().to_string()];
            for gpu in &devices {
                let s = perf::gpu_forward(gpu, &profile).seconds;
                row.push(num(cpu_s / s));
            }
            t.push(row);
        }
        vec![t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn set() -> &'static ExperimentSet {
        static SET: OnceLock<ExperimentSet> = OnceLock::new();
        SET.get_or_init(|| ExperimentSet::new().unwrap())
    }

    #[test]
    fn every_experiment_produces_rows() {
        for id in ExperimentSet::ids() {
            let tables = set().run(id);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in tables {
                assert!(!t.rows.is_empty(), "{id}/{} has no rows", t.id);
                let _ = t.to_text();
                let _ = t.to_csv();
            }
        }
    }

    #[test]
    fn energy_gains_favor_the_gpu() {
        // Batched GPU inference must be far more energy-efficient per
        // query than the single-core baseline for every app.
        let t = &set().ext_energy()[0];
        for row in &t.rows {
            let gain: f64 = row[4].parse().unwrap();
            // FACE's memory-bound local layers keep its energy gain modest
            // (~3x); every other app clears 5x.
            let floor = if row[0] == "FACE" { 2.0 } else { 5.0 };
            assert!(gain > floor, "{} energy gain {gain}", row[0]);
        }
    }

    #[test]
    fn newer_devices_are_faster_for_compute_bound_apps() {
        let t = &set().ext_devices()[0];
        let asr = t.rows.iter().find(|r| r[0] == "ASR").unwrap();
        let k20: f64 = asr[1].parse().unwrap();
        let k40: f64 = asr[2].parse().unwrap();
        let tx: f64 = asr[3].parse().unwrap();
        assert!(k20 < k40 && k40 < tx, "{k20} {k40} {tx}");
    }

    #[test]
    fn fig5_speedup_ordering_matches_paper() {
        // ASR highest (≈120x), NLP lowest (≈7x).
        let t = &set().fig5()[0];
        let speedup = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        assert!(speedup("ASR") > speedup("IMC"));
        assert!(speedup("IMC") > speedup("POS"));
        assert!((90.0..150.0).contains(&speedup("ASR")));
        assert!((4.0..10.0).contains(&speedup("POS")));
    }

    #[test]
    fn fig10_all_but_face_exceed_100x() {
        let t = &set().fig10()[0];
        for row in &t.rows {
            let speedup: f64 = row[4].parse().unwrap();
            if row[0] == "FACE" {
                assert!((25.0..100.0).contains(&speedup), "FACE {speedup}");
            } else {
                // Paper: >100x for all but FACE (40x). In our model DIG
                // lands near 96x and CHK near 80x once real PCIe/host
                // transfer overheads are charged (CHK ships the largest
                // NLP payload, 75 KB/query); the rest clear 100x and FACE
                // remains the clear laggard.
                assert!(speedup > 75.0, "{} only {speedup}", row[0]);
            }
        }
    }
}
