//! Plain-text table and CSV rendering for the experiment harness.

use std::fs;
use std::path::Path;

/// A rendered experiment: a caption, column headers, and rows of cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id, e.g. `fig7a`.
    pub id: String,
    /// One-line caption echoing the paper's figure/table caption.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `headers` fixes the column count.
    pub fn new(id: &str, caption: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.caption));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form under `dir/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Formats a float with sensible precision for tables.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.1 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "sample", &["a", "bee"]);
        t.push(vec!["1".into(), "2".into()]);
        t
    }

    #[test]
    fn text_render_contains_everything() {
        let txt = sample().to_text();
        assert!(txt.contains("fig0"));
        assert!(txt.contains("bee"));
        assert!(txt.contains('1'));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", "c", &["h"]);
        t.push(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_rejects_wrong_width() {
        let mut t = sample();
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(1.234), "1.23");
        assert_eq!(num(0.01234), "0.0123");
    }
}
