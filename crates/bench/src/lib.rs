//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation from the workspace's models and simulators.
//!
//! Each `figN`/`tableN` function in [`experiments`] returns structured
//! rows; [`render`] turns them into aligned text tables and CSV files.
//! The `figures` binary drives everything:
//!
//! ```text
//! cargo run -p bench --bin figures --release            # all experiments
//! cargo run -p bench --bin figures --release -- fig7    # one experiment
//! ```

pub mod experiments;
pub mod render;
