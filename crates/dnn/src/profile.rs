//! Workload characterization: how a forward pass decomposes into GPU
//! kernels, with FLOP counts, DRAM traffic and launch geometry.
//!
//! This is the contract between the functional network (`dnn`) and the
//! timing models (`perf`, `gpusim`): the simulator never executes real
//! math — it consumes the [`WorkloadProfile`] that describes exactly the
//! kernels Caffe+cuDNN would launch for the same network and batch size.

use serde::{Deserialize, Serialize};

use crate::{LayerSpec, NetDef, Result};

/// Threads per block for elementwise/stencil kernels (CUDA convention).
const EW_BLOCK_THREADS: usize = 256;
/// Output tile computed by one GEMM thread block (cuBLAS-style 64x64).
const GEMM_TILE: usize = 64;
/// Warps per GEMM thread block (256 threads).
const GEMM_WARPS_PER_BLOCK: usize = 8;
/// Threads per warp.
const WARP: usize = 32;

/// How a kernel maps onto the GPU grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense matrix multiply with the given `(m, n, k)`, launched `count`
    /// times within one fused kernel (grouped convolutions use `count > 1`).
    Gemm {
        /// Output rows.
        m: usize,
        /// Output columns.
        n: usize,
        /// Inner (reduction) dimension.
        k: usize,
        /// Independent GEMM instances fused into the launch.
        count: usize,
    },
    /// One thread per output element (activations, pooling, im2col, LRN,
    /// softmax).
    Elementwise {
        /// Total output elements.
        elems: usize,
    },
    /// One thread per output element with *uncoalesced* weight access:
    /// locally-connected layers read a distinct kernel per output
    /// location, defeating memory coalescing (the reason DeepFace's GPU
    /// gain trails every other network in the paper).
    Scatter {
        /// Total output elements.
        elems: usize,
    },
}

/// One GPU kernel launch within a forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Diagnostic name, e.g. `conv1.gemm`.
    pub name: String,
    /// Grid/occupancy class.
    pub class: KernelClass,
    /// Floating-point operations performed.
    pub flops: f64,
    /// DRAM bytes moved (reads + writes), assuming streaming access with
    /// weights and activations too large to stay resident in cache.
    pub bytes: f64,
    /// Thread blocks launched.
    pub blocks: usize,
    /// Warps per thread block.
    pub warps_per_block: usize,
}

impl KernelSpec {
    fn gemm(name: String, m: usize, n: usize, k: usize, count: usize) -> Self {
        let c = count as f64;
        let flops = c * 2.0 * m as f64 * n as f64 * k as f64;
        // A + B + C streamed once, per instance.
        let bytes = c * 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
        let blocks = count * m.div_ceil(GEMM_TILE) * n.div_ceil(GEMM_TILE);
        KernelSpec {
            name,
            class: KernelClass::Gemm { m, n, k, count },
            flops,
            bytes,
            blocks,
            warps_per_block: GEMM_WARPS_PER_BLOCK,
        }
    }

    fn elementwise(name: String, elems: usize, flops_per_elem: f64, bytes: f64) -> Self {
        KernelSpec {
            name,
            class: KernelClass::Elementwise { elems },
            flops: elems as f64 * flops_per_elem,
            bytes,
            blocks: elems.div_ceil(EW_BLOCK_THREADS).max(1),
            warps_per_block: EW_BLOCK_THREADS / WARP,
        }
    }

    /// Total warps in the launch grid.
    pub fn total_warps(&self) -> usize {
        self.blocks * self.warps_per_block
    }
}

/// The complete kernel trace of one forward pass at a given batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Network name.
    pub network: String,
    /// Batch size (number of input items stacked).
    pub batch: usize,
    /// Kernels in launch order.
    pub kernels: Vec<KernelSpec>,
    /// Bytes of input transferred host→device per forward pass.
    pub input_bytes: f64,
    /// Bytes of output transferred device→host per forward pass.
    pub output_bytes: f64,
}

impl WorkloadProfile {
    /// Characterizes `def`'s forward pass for `batch` stacked inputs.
    ///
    /// # Errors
    ///
    /// Propagates shape inference failures (none occur for validated
    /// definitions).
    pub fn of(def: &NetDef, batch: usize) -> Result<Self> {
        let shapes = def.layer_shapes(batch)?;
        let mut kernels = Vec::new();
        for (i, layer) in def.layers().iter().enumerate() {
            let in_shape = &shapes[i];
            let out_shape = &shapes[i + 1];
            let in_vol = in_shape.volume();
            let out_vol = out_shape.volume();
            match &layer.spec {
                LayerSpec::Conv(p) => {
                    let d = in_shape.dims();
                    let (n, c) = (d[0], d[1]);
                    let od = out_shape.dims();
                    let (oh, ow) = (od[2], od[3]);
                    let cg = c / p.groups;
                    let og = p.out_channels / p.groups;
                    let kk = p.kernel * p.kernel;
                    // im2col: one thread per unrolled element, per group set.
                    let col_elems = n * c * kk * oh * ow;
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.im2col", layer.name),
                        col_elems,
                        1.0,
                        4.0 * (in_vol + col_elems) as f64,
                    ));
                    // cuDNN-style batched GEMM over all images: per group,
                    // m = out channels, n = batch * spatial, k = cg*k*k.
                    kernels.push(KernelSpec::gemm(
                        format!("{}.gemm", layer.name),
                        og,
                        n * oh * ow,
                        cg * kk,
                        p.groups,
                    ));
                    // Bias broadcast.
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.bias", layer.name),
                        out_vol,
                        1.0,
                        4.0 * 2.0 * out_vol as f64,
                    ));
                }
                LayerSpec::Local(p) => {
                    let d = in_shape.dims();
                    let ksz = d[1] * p.kernel * p.kernel;
                    let weight_bytes = 4.0 * layer.spec.param_count(in_shape) as f64;
                    let mut k = KernelSpec::elementwise(
                        format!("{}.local", layer.name),
                        out_vol,
                        2.0 * ksz as f64,
                        weight_bytes + 4.0 * (in_vol + out_vol) as f64,
                    );
                    k.class = KernelClass::Scatter { elems: out_vol };
                    kernels.push(k);
                }
                LayerSpec::Pool(_, p) => {
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.pool", layer.name),
                        out_vol,
                        (p.kernel * p.kernel) as f64,
                        4.0 * (in_vol + out_vol) as f64,
                    ));
                }
                LayerSpec::InnerProduct { out } => {
                    let (rows, cols) = in_shape.as_matrix();
                    kernels.push(KernelSpec::gemm(
                        format!("{}.gemm", layer.name),
                        rows,
                        *out,
                        cols,
                        1,
                    ));
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.bias", layer.name),
                        rows * out,
                        1.0,
                        4.0 * 2.0 * (rows * out) as f64,
                    ));
                }
                LayerSpec::Activation(a) => {
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.{}", layer.name, a.name()),
                        out_vol,
                        2.0,
                        4.0 * 2.0 * out_vol as f64,
                    ));
                }
                LayerSpec::Lrn(p) => {
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.lrn", layer.name),
                        out_vol,
                        (2 * p.local_size + 2) as f64,
                        4.0 * 2.0 * out_vol as f64,
                    ));
                }
                LayerSpec::Dropout => {
                    // No kernel at inference time.
                }
                LayerSpec::Softmax => {
                    kernels.push(KernelSpec::elementwise(
                        format!("{}.softmax", layer.name),
                        out_vol,
                        3.0,
                        4.0 * 2.0 * out_vol as f64,
                    ));
                }
            }
        }
        let input_bytes = 4.0 * shapes[0].volume() as f64;
        let output_bytes = 4.0 * shapes[shapes.len() - 1].volume() as f64;
        Ok(WorkloadProfile {
            network: def.name().to_string(),
            batch,
            kernels,
            input_bytes,
            output_bytes,
        })
    }

    /// Total floating-point operations of the forward pass.
    pub fn total_flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Total DRAM bytes moved by the forward pass.
    pub fn total_bytes(&self) -> f64 {
        self.kernels.iter().map(|k| k.bytes).sum()
    }

    /// Number of kernel launches.
    pub fn launch_count(&self) -> usize {
        self.kernels.len()
    }

    /// The `(m, n, k)` of the biggest single GEMM (by FLOPs) in the
    /// forward pass, or `None` for a GEMM-free profile.
    ///
    /// This drives the CPU executor's parallelization choice: profiles
    /// whose largest GEMM is skinny (small `m * n`, like SENNA's per-item
    /// matrices) scale by sharding the batch across threads, while fat
    /// GEMMs (AlexNet, Kaldi) are worth splitting internally.
    pub fn largest_gemm(&self) -> Option<(usize, usize, usize)> {
        self.kernels
            .iter()
            .filter_map(|ks| match ks.class {
                KernelClass::Gemm { m, n, k, .. } => Some((m, n, k)),
                _ => None,
            })
            .max_by(|a, b| (a.0 * a.1 * a.2).cmp(&(b.0 * b.1 * b.2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{self, App};

    #[test]
    fn flops_scale_linearly_with_batch() {
        let def = zoo::senna("pos", 45);
        let p1 = WorkloadProfile::of(&def, 1).unwrap();
        let p8 = WorkloadProfile::of(&def, 8).unwrap();
        let ratio = p8.total_flops() / p1.total_flops();
        assert!((ratio - 8.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn alexnet_flops_in_published_range() {
        // Published AlexNet forward pass: ~1.4-1.5 GFLOPs (2 FLOPs/MAC).
        let p = WorkloadProfile::of(&zoo::alexnet(), 1).unwrap();
        let gflops = p.total_flops() / 1e9;
        assert!(
            (1.0..2.5).contains(&gflops),
            "AlexNet forward = {gflops} GFLOPs"
        );
    }

    #[test]
    fn gemm_block_geometry() {
        let k = KernelSpec::gemm("t".into(), 128, 128, 64, 1);
        assert_eq!(k.blocks, 4);
        assert_eq!(k.total_warps(), 32);
        assert_eq!(k.flops, 2.0 * 128.0 * 128.0 * 64.0);
    }

    #[test]
    fn asr_batch1_has_many_warps_nlp_few() {
        // The root cause of Fig 6: ASR queries carry 548 frames so even
        // batch 1 launches large GEMMs; SENNA carries 28 windows.
        let asr = WorkloadProfile::of(&zoo::kaldi(), 548).unwrap();
        let pos = WorkloadProfile::of(&zoo::senna("pos", 45), 28).unwrap();
        let gemm_max = |p: &WorkloadProfile| {
            p.kernels
                .iter()
                .filter(|k| matches!(k.class, KernelClass::Gemm { .. }))
                .map(KernelSpec::total_warps)
                .max()
                .unwrap()
        };
        let asr_max = gemm_max(&asr);
        let pos_max = gemm_max(&pos);
        assert!(asr_max > 900, "asr warps {asr_max}");
        assert!(pos_max < 200, "pos warps {pos_max}");
    }

    #[test]
    fn largest_gemm_separates_fat_from_skinny() {
        let asr = WorkloadProfile::of(&zoo::kaldi(), 16).unwrap();
        let (m, n, k) = asr.largest_gemm().unwrap();
        assert!(m * n * k >= 16 * 2048 * 2048, "kaldi gemm {m}x{n}x{k}");
        let pos = WorkloadProfile::of(&zoo::senna("pos", 45), 28).unwrap();
        let (pm, pn, pk) = pos.largest_gemm().unwrap();
        assert!(pm * pn * pk <= 28 * 450 * 350, "senna gemm {pm}x{pn}x{pk}");
    }

    #[test]
    fn dropout_emits_no_kernel() {
        let p = WorkloadProfile::of(&zoo::alexnet(), 1).unwrap();
        assert!(p.kernels.iter().all(|k| !k.name.contains("drop")));
    }

    #[test]
    fn profiles_exist_for_all_apps() {
        for app in App::ALL {
            let def = zoo::netdef(app);
            let meta = app.service_meta();
            let p = WorkloadProfile::of(&def, meta.inputs_per_query).unwrap();
            assert!(p.total_flops() > 0.0);
            assert!(p.total_bytes() > 0.0);
            assert!(p.launch_count() > 0);
        }
    }
}
