//! Training support: manual backpropagation and SGD for the layer types
//! the Tonic MLP/CNN architectures use.
//!
//! DjiNN serves *pretrained* models; this module is how such models come
//! to exist in a self-contained workspace. Supported layers: inner
//! product, convolution, max/avg pooling, the four activations, dropout
//! (inverted, train-time masks) and a fused softmax + cross-entropy
//! loss. Locally-connected and LRN layers are inference-only and are
//! rejected with a clear error (DeepFace/AlexNet fine-tuning is out of
//! scope; the MNIST-, SENNA- and Kaldi-class networks train end to end).
//!
//! ```
//! use dnn::{train::{SgdConfig, Trainer}, NetDef, LayerDef, LayerSpec, Network};
//! use tensor::{Shape, Tensor};
//!
//! let def = dnn::parser::parse_netdef("
//!     name: tiny
//!     input: 4
//!     layer fc1 fc out=8
//!     layer act relu
//!     layer fc2 fc out=2
//!     layer prob softmax
//! ")?;
//! let net = Network::with_random_weights(def, 1)?;
//! let mut trainer = Trainer::new(net, SgdConfig::default());
//! let x = Tensor::random_uniform(Shape::mat(4, 4), 1.0, 2);
//! let loss = trainer.step(&x, &[0, 1, 0, 1])?;
//! assert!(loss > 0.0);
//! # Ok::<(), dnn::DnnError>(())
//! ```

use tensor::{col2im, im2col, sgemm, Conv2dParams, GemmOptions, Shape, Tensor};

use crate::{ActivationKind, DnnError, LayerSpec, LayerWeights, Network, PoolKind, Result};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Classical momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Dropout keep-probability complement (fraction dropped) applied by
    /// `Dropout` layers at train time.
    pub dropout_p: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            dropout_p: 0.5,
        }
    }
}

/// A network under training: weights, momentum buffers and the SGD
/// configuration.
#[derive(Debug, Clone)]
pub struct Trainer {
    network: Network,
    velocity: Vec<LayerWeights>,
    config: SgdConfig,
    step_count: u64,
}

impl Trainer {
    /// Wraps a network for training.
    pub fn new(network: Network, config: SgdConfig) -> Self {
        let velocity = network
            .weights()
            .iter()
            .map(LayerWeights::zeros_like)
            .collect();
        Trainer {
            network,
            velocity,
            config,
            step_count: 0,
        }
    }

    /// The network in its current state (use for evaluation between
    /// steps).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Consumes the trainer, returning the trained network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// Runs one SGD step on a minibatch: forward, fused softmax +
    /// cross-entropy against `labels`, backward, parameter update.
    /// Returns the mean cross-entropy loss.
    ///
    /// A trailing `Softmax` layer is folded into the loss (standard
    /// practice); any other final layer is treated as logits.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadInput`] if `labels.len()` differs from the
    /// batch size or a label exceeds the class count, and
    /// [`DnnError::BadLayer`] for inference-only layers (LRN,
    /// locally-connected).
    pub fn step(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32> {
        let (grads, loss) = self.gradients(input, labels)?;
        self.apply(&grads);
        self.step_count += 1;
        Ok(loss)
    }

    /// Computes per-layer gradients and the minibatch loss without
    /// updating parameters (exposed for gradient-checking tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Trainer::step`].
    pub fn gradients(&self, input: &Tensor, labels: &[usize]) -> Result<(Vec<LayerWeights>, f32)> {
        let layers = self.network.def().layers();
        // Forward, caching every layer input (and dropout masks).
        let mut caches: Vec<Tensor> = Vec::with_capacity(layers.len());
        let mut masks: Vec<Option<Tensor>> = Vec::with_capacity(layers.len());
        let mut cur = input.clone();
        let train_softmax_last = matches!(layers.last().map(|l| &l.spec), Some(LayerSpec::Softmax));
        let active_layers = if train_softmax_last {
            &layers[..layers.len() - 1]
        } else {
            layers
        };
        for (i, l) in active_layers.iter().enumerate() {
            caches.push(cur.clone());
            match &l.spec {
                LayerSpec::Lrn(_) | LayerSpec::Local(_) => {
                    return Err(DnnError::BadLayer {
                        layer: l.name.clone(),
                        reason: "layer is inference-only; training is not supported".into(),
                    })
                }
                LayerSpec::Dropout => {
                    // Inverted dropout with a deterministic per-step mask.
                    let keep = 1.0 - self.config.dropout_p;
                    let mask = Tensor::random_uniform(
                        cur.shape().clone(),
                        1.0,
                        0xD409 ^ self.step_count.wrapping_mul(31) ^ i as u64,
                    )
                    .map(|v| {
                        if (v + 1.0) / 2.0 < keep {
                            1.0 / keep
                        } else {
                            0.0
                        }
                    });
                    let mut dropped = cur.clone();
                    for (v, m) in dropped.data_mut().iter_mut().zip(mask.data()) {
                        *v *= m;
                    }
                    masks.push(Some(mask));
                    cur = dropped;
                    continue;
                }
                spec => {
                    cur = spec.forward(&cur, &self.network.weights()[i])?;
                }
            }
            masks.push(None);
        }

        // Fused softmax + cross-entropy on the logits.
        let (batch, classes) = cur.shape().as_matrix();
        if labels.len() != batch {
            return Err(DnnError::BadInput {
                expected: vec![batch],
                actual: vec![labels.len()],
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DnnError::BadInput {
                expected: vec![classes],
                actual: vec![bad],
            });
        }
        let mut probs = cur.clone();
        tensor::softmax_rows(&mut probs);
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        for (b, &label) in labels.iter().enumerate() {
            let p = probs.at2(b, label).max(1e-12);
            loss -= p.ln();
            grad.data_mut()[b * classes + label] -= 1.0;
        }
        loss /= batch as f32;
        grad.map_inplace(|v| v / batch as f32);

        // Backward.
        let mut grads: Vec<LayerWeights> = self
            .network
            .weights()
            .iter()
            .map(LayerWeights::zeros_like)
            .collect();
        let mut dy = grad;
        for (i, l) in active_layers.iter().enumerate().rev() {
            let x = &caches[i];
            dy = match &l.spec {
                LayerSpec::InnerProduct { .. } => {
                    backward_inner_product(x, &dy, &self.network.weights()[i], &mut grads[i])?
                }
                LayerSpec::Conv(p) => {
                    backward_conv(x, &dy, p, &self.network.weights()[i], &mut grads[i])?
                }
                LayerSpec::Activation(a) => backward_activation(*a, x, &dy),
                LayerSpec::Pool(kind, p) => backward_pool(*kind, x, &dy, p)?,
                LayerSpec::Dropout => {
                    let mask = masks[i].as_ref().expect("dropout cached its mask");
                    let mut dx = dy;
                    for (v, m) in dx.data_mut().iter_mut().zip(mask.data()) {
                        *v *= m;
                    }
                    dx
                }
                LayerSpec::Softmax => dy, // only reachable mid-network; identity-ish
                LayerSpec::Lrn(_) | LayerSpec::Local(_) => unreachable!("rejected in forward"),
            };
        }
        Ok((grads, loss))
    }

    fn apply(&mut self, grads: &[LayerWeights]) {
        let cfg = self.config;
        for ((w, v), g) in self
            .network
            .weights_mut()
            .iter_mut()
            .zip(&mut self.velocity)
            .zip(grads)
        {
            if w.is_none() {
                continue;
            }
            let decay = cfg.weight_decay;
            for ((wv, vv), gv) in w
                .weights_mut()
                .data_mut()
                .iter_mut()
                .zip(v.weights_mut().data_mut())
                .zip(g.weights().data())
            {
                *vv = cfg.momentum * *vv - cfg.lr * (gv + decay * *wv);
                *wv += *vv;
            }
            for ((wb, vb), gb) in w.bias_mut().iter_mut().zip(v.bias_mut()).zip(g.bias()) {
                *vb = cfg.momentum * *vb - cfg.lr * gb;
                *wb += *vb;
            }
        }
    }
}

/// dX, and accumulates dW/db, for `y = x W + b` with `x: (B, in)`,
/// `W: (in, out)`.
fn backward_inner_product(
    x: &Tensor,
    dy: &Tensor,
    w: &LayerWeights,
    grad: &mut LayerWeights,
) -> Result<Tensor> {
    let (b, in_dim) = x.shape().as_matrix();
    let (_, out_dim) = dy.shape().as_matrix();
    let x_flat = x.data();
    // dW = x^T dy  (in x out)
    sgemm(
        in_dim,
        out_dim,
        b,
        1.0,
        x_flat,
        dy.data(),
        0.0,
        grad.weights_mut().data_mut(),
        GemmOptions {
            trans_a: true,
            ..GemmOptions::default()
        },
    )?;
    // db = column sums of dy
    for row in 0..b {
        for (gb, v) in grad
            .bias_mut()
            .iter_mut()
            .zip(&dy.data()[row * out_dim..(row + 1) * out_dim])
        {
            *gb += v;
        }
    }
    // dX = dy W^T  (B x in)
    let mut dx = Tensor::zeros(Shape::mat(b, in_dim));
    sgemm(
        b,
        in_dim,
        out_dim,
        1.0,
        dy.data(),
        w.weights().data(),
        0.0,
        dx.data_mut(),
        GemmOptions {
            trans_b: true,
            ..GemmOptions::default()
        },
    )?;
    dx.reshape(x.shape().clone()).map_err(DnnError::from)
}

/// dX, and accumulates dW/db, for a (possibly grouped) convolution.
fn backward_conv(
    x: &Tensor,
    dy: &Tensor,
    p: &Conv2dParams,
    _w: &LayerWeights,
    grad: &mut LayerWeights,
) -> Result<Tensor> {
    let d = x.shape().dims();
    let (n, c, h, w_dim) = (d[0], d[1], d[2], d[3]);
    let od = dy.shape().dims();
    let (oh, ow) = (od[2], od[3]);
    let cg = c / p.groups;
    let og = p.out_channels / p.groups;
    let kk = p.kernel * p.kernel;
    let wk = cg * kk;
    let group_params = Conv2dParams {
        out_channels: og,
        groups: 1,
        ..*p
    };
    let mut dx = Tensor::zeros(x.shape().clone());
    let per_in = c * h * w_dim;
    let per_out = p.out_channels * oh * ow;
    let weights = _w.weights().data();
    for img in 0..n {
        for g in 0..p.groups {
            let img_slice = &x.data()[img * per_in + g * cg * h * w_dim..][..cg * h * w_dim];
            let img_t = Tensor::from_vec(Shape::nchw(1, cg, h, w_dim), img_slice.to_vec())?;
            let cols = im2col(&img_t, cg, h, w_dim, &group_params)?;
            let dy_slice = &dy.data()[img * per_out + g * og * oh * ow..][..og * oh * ow];
            // dW += dY (og x ohw) . cols^T (ohw x wk)
            let gw = &mut grad.weights_mut().data_mut()[g * og * wk..(g + 1) * og * wk];
            sgemm(
                og,
                wk,
                oh * ow,
                1.0,
                dy_slice,
                cols.data(),
                1.0,
                gw,
                GemmOptions {
                    trans_b: true,
                    ..GemmOptions::default()
                },
            )?;
            // db += row sums of dY
            for oc in 0..og {
                let sum: f32 = dy_slice[oc * oh * ow..(oc + 1) * oh * ow].iter().sum();
                grad.bias_mut()[g * og + oc] += sum;
            }
            // dcols = W^T (wk x og) . dY (og x ohw)
            let w_slice = &weights[g * og * wk..(g + 1) * og * wk];
            let mut dcols = Tensor::zeros(Shape::mat(wk, oh * ow));
            sgemm(
                wk,
                oh * ow,
                og,
                1.0,
                w_slice,
                dy_slice,
                0.0,
                dcols.data_mut(),
                GemmOptions {
                    trans_a: true,
                    ..GemmOptions::default()
                },
            )?;
            let dimg = col2im(&dcols, cg, h, w_dim, &group_params)?;
            let out_slice =
                &mut dx.data_mut()[img * per_in + g * cg * h * w_dim..][..cg * h * w_dim];
            for (o, v) in out_slice.iter_mut().zip(dimg.data()) {
                *o += v;
            }
        }
    }
    Ok(dx)
}

fn backward_activation(kind: ActivationKind, x: &Tensor, dy: &Tensor) -> Tensor {
    let mut dx = dy.clone();
    match kind {
        ActivationKind::Relu => {
            for (g, &xi) in dx.data_mut().iter_mut().zip(x.data()) {
                if xi <= 0.0 {
                    *g = 0.0;
                }
            }
        }
        ActivationKind::Tanh => {
            for (g, &xi) in dx.data_mut().iter_mut().zip(x.data()) {
                let y = xi.tanh();
                *g *= 1.0 - y * y;
            }
        }
        ActivationKind::Sigmoid => {
            for (g, &xi) in dx.data_mut().iter_mut().zip(x.data()) {
                let y = 1.0 / (1.0 + (-xi).exp());
                *g *= y * (1.0 - y);
            }
        }
        ActivationKind::HardTanh => {
            for (g, &xi) in dx.data_mut().iter_mut().zip(x.data()) {
                if !(-1.0..=1.0).contains(&xi) {
                    *g = 0.0;
                }
            }
        }
    }
    dx
}

fn backward_pool(
    kind: PoolKind,
    x: &Tensor,
    dy: &Tensor,
    p: &tensor::Pool2dParams,
) -> Result<Tensor> {
    let d = x.shape().dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let od = dy.shape().dims();
    let (oh, ow) = (od[2], od[3]);
    let mut dx = Tensor::zeros(x.shape().clone());
    let xd = x.data();
    let dyd = dy.data();
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dyd[((img * c + ch) * oh + oy) * ow + ox];
                    // Collect valid window positions.
                    let mut best: Option<(usize, f32)> = None;
                    let mut count = 0usize;
                    let mut valid: [usize; 16] = [0; 16];
                    for ky in 0..p.kernel {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..p.kernel {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            if count < valid.len() {
                                valid[count] = idx;
                            }
                            count += 1;
                            let v = xd[idx];
                            if best.map(|(_, b)| v > b).unwrap_or(true) {
                                best = Some((idx, v));
                            }
                        }
                    }
                    match kind {
                        PoolKind::Max => {
                            if let Some((idx, _)) = best {
                                dx.data_mut()[idx] += g;
                            }
                        }
                        PoolKind::Avg => {
                            if count > 0 && count <= valid.len() {
                                let share = g / count as f32;
                                for &idx in &valid[..count] {
                                    dx.data_mut()[idx] += share;
                                }
                            } else if count > 0 {
                                // Window larger than the small-window fast
                                // path: recompute positions.
                                let share = g / count as f32;
                                for ky in 0..p.kernel {
                                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..p.kernel {
                                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        dx.data_mut()[base + iy as usize * w + ix as usize] +=
                                            share;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(dx)
}

/// Classification accuracy of `network` over labeled items: the
/// evaluation half of a train/eval loop.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate(network: &Network, items: &[(Tensor, usize)]) -> Result<f64> {
    if items.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (input, label) in items {
        let out = network.forward(input)?;
        if out.row_argmax(0) == *label {
            correct += 1;
        }
    }
    Ok(correct as f64 / items.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerDef, NetDef};

    fn mlp(seed: u64) -> Network {
        let def = NetDef::new(
            "mlp",
            Shape::mat(1, 6),
            vec![
                LayerDef {
                    name: "fc1".into(),
                    spec: LayerSpec::InnerProduct { out: 12 },
                },
                LayerDef {
                    name: "act".into(),
                    spec: LayerSpec::Activation(ActivationKind::Tanh),
                },
                LayerDef {
                    name: "fc2".into(),
                    spec: LayerSpec::InnerProduct { out: 3 },
                },
                LayerDef {
                    name: "prob".into(),
                    spec: LayerSpec::Softmax,
                },
            ],
        )
        .unwrap();
        Network::with_random_weights(def, seed).unwrap()
    }

    fn convnet(seed: u64) -> Network {
        let def = NetDef::new(
            "convnet",
            Shape::nchw(1, 1, 8, 8),
            vec![
                LayerDef {
                    name: "conv1".into(),
                    spec: LayerSpec::Conv(Conv2dParams::new(4, 3, 1, 1)),
                },
                LayerDef {
                    name: "relu1".into(),
                    spec: LayerSpec::Activation(ActivationKind::Relu),
                },
                LayerDef {
                    name: "pool1".into(),
                    spec: LayerSpec::Pool(PoolKind::Max, tensor::Pool2dParams::new(2, 2, 0)),
                },
                LayerDef {
                    name: "fc".into(),
                    spec: LayerSpec::InnerProduct { out: 4 },
                },
                LayerDef {
                    name: "prob".into(),
                    spec: LayerSpec::Softmax,
                },
            ],
        )
        .unwrap();
        Network::with_random_weights(def, seed).unwrap()
    }

    /// Numerical gradient check: analytic dL/dw vs central differences.
    fn grad_check(net: Network, input: Tensor, labels: Vec<usize>) {
        let trainer = Trainer::new(net, SgdConfig::default());
        let (grads, _) = trainer.gradients(&input, &labels).unwrap();
        let eps = 1e-2f32;
        let mut checked = 0usize;
        #[allow(clippy::needless_range_loop)] // li indexes two parallel structures
        for li in 0..trainer.network().weights().len() {
            if trainer.network().weights()[li].is_none() {
                continue;
            }
            let count = trainer.network().weights()[li].weights().len();
            // Probe a handful of parameters per layer.
            for pi in (0..count).step_by((count / 5).max(1)) {
                let loss_at = |delta: f32| -> f32 {
                    let mut n = trainer.network().clone();
                    n.weights_mut()[li].weights_mut().data_mut()[pi] += delta;
                    let t = Trainer::new(n, SgdConfig::default());
                    t.gradients(&input, &labels).unwrap().1
                };
                let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
                let analytic = grads[li].weights().data()[pi];
                let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                assert!(
                    (numeric - analytic).abs() / denom < 0.15,
                    "layer {li} param {pi}: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 5, "gradient check probed too few parameters");
    }

    #[test]
    fn mlp_gradients_match_finite_differences() {
        let input = Tensor::random_uniform(Shape::mat(3, 6), 1.0, 7);
        grad_check(mlp(3), input, vec![0, 1, 2]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let input = Tensor::random_uniform(Shape::nchw(2, 1, 8, 8), 1.0, 9);
        grad_check(convnet(4), input, vec![1, 3]);
    }

    #[test]
    fn training_reduces_loss_on_a_separable_task() {
        // Two Gaussian-ish blobs: class = sign of the first feature.
        let net = mlp(11);
        let mut trainer = Trainer::new(net, SgdConfig::default());
        let make_batch = |seed: u64| {
            let x = Tensor::random_uniform(Shape::mat(16, 6), 1.0, seed);
            let labels: Vec<usize> = (0..16)
                .map(|r| if x.at2(r, 0) > 0.0 { 0 } else { 1 })
                .collect();
            (x, labels)
        };
        let (x0, y0) = make_batch(100);
        let first = trainer.gradients(&x0, &y0).unwrap().1;
        for step in 0..200 {
            let (x, y) = make_batch(100 + step % 20);
            trainer.step(&x, &y).unwrap();
        }
        let last = trainer.gradients(&x0, &y0).unwrap().1;
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
    }

    #[test]
    fn trained_network_classifies_held_out_data() {
        let net = convnet(13);
        let mut trainer = Trainer::new(
            net,
            SgdConfig {
                lr: 0.1,
                dropout_p: 0.0,
                ..SgdConfig::default()
            },
        );
        // Task: which quadrant of the 8x8 image holds the bright blob.
        let sample = |seed: u64| -> (Tensor, usize) {
            let q = (seed % 4) as usize;
            let (cy, cx) = [(2i64, 2i64), (2, 6), (6, 2), (6, 6)][q];
            let img = Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| {
                let y = (i / 8) as i64;
                let x = (i % 8) as i64;
                if (x - cx).abs() <= 1 && (y - cy).abs() <= 1 {
                    1.0
                } else {
                    0.0
                }
            });
            (img, q)
        };
        for epoch in 0..60 {
            let items: Vec<(Tensor, usize)> = (0..8).map(|i| sample(epoch * 8 + i)).collect();
            let tensors: Vec<Tensor> = items.iter().map(|(t, _)| t.clone()).collect();
            let labels: Vec<usize> = items.iter().map(|(_, l)| *l).collect();
            let batch = Tensor::stack_batch(&tensors).unwrap();
            trainer.step(&batch, &labels).unwrap();
        }
        let net = trainer.into_network();
        let mut correct = 0;
        for seed in 1000..1040 {
            let (img, label) = sample(seed);
            let out = net.forward(&img).unwrap();
            if out.row_argmax(0) == label {
                correct += 1;
            }
        }
        assert!(correct >= 36, "only {correct}/40 correct");
    }

    #[test]
    fn evaluate_scores_a_perfect_and_empty_set() {
        let net = mlp(2);
        let x = Tensor::random_uniform(Shape::mat(1, 6), 1.0, 4);
        let label = net.forward(&x).unwrap().row_argmax(0);
        let acc = evaluate(&net, &[(x, label)]).unwrap();
        assert_eq!(acc, 1.0);
        assert_eq!(evaluate(&net, &[]).unwrap(), 0.0);
    }

    #[test]
    fn inference_only_layers_are_rejected() {
        let net = crate::zoo::network(crate::zoo::App::Face).unwrap();
        let mut trainer = Trainer::new(net, SgdConfig::default());
        let input = Tensor::zeros(Shape::nchw(1, 3, 152, 152));
        let err = trainer.step(&input, &[0]).unwrap_err();
        assert!(matches!(err, DnnError::BadLayer { .. }), "{err}");
    }

    #[test]
    fn bad_labels_are_rejected() {
        let mut trainer = Trainer::new(mlp(1), SgdConfig::default());
        let input = Tensor::zeros(Shape::mat(2, 6));
        assert!(trainer.step(&input, &[0]).is_err()); // wrong count
        assert!(trainer.step(&input, &[0, 99]).is_err()); // class out of range
    }

    #[test]
    fn senna_class_network_trains() {
        // The actual SENNA architecture (fc-hardtanh-fc) must be trainable.
        let def = crate::zoo::senna("senna-train", 9);
        let net = Network::with_random_weights(def, 5).unwrap();
        let mut trainer = Trainer::new(
            net,
            SgdConfig {
                lr: 0.02,
                ..SgdConfig::default()
            },
        );
        let x = Tensor::random_uniform(Shape::mat(8, 350), 0.5, 6);
        let labels = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let first = trainer.gradients(&x, &labels).unwrap().1;
        for _ in 0..100 {
            trainer.step(&x, &labels).unwrap();
        }
        let last = trainer.gradients(&x, &labels).unwrap().1;
        assert!(last < first * 0.3, "{first} -> {last}");
    }
}
