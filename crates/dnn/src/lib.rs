//! Neural-network framework for the DjiNN reproduction — the stand-in for
//! Caffe in the original paper.
//!
//! The crate provides:
//!
//! * [`LayerSpec`] — the layer vocabulary needed by the Tonic networks
//!   (convolution, locally-connected, pooling, inner-product, LRN,
//!   activations, dropout, softmax), with shape inference and functional
//!   forward execution on [`tensor`] primitives;
//! * [`NetDef`]/[`Network`] — a declarative network description plus a
//!   weight store, executing the inference (forward) pass;
//! * a prototxt-like [text format](parser) so networks can be configured
//!   without recompiling, mirroring DjiNN's "supporting more applications
//!   simply requires providing a pretrained model" property;
//! * [`profile`] — per-layer workload characterization (FLOPs, bytes,
//!   kernel launch geometry) consumed by the GPU simulator;
//! * [`zoo`] — architecturally-exact definitions of the seven Tonic
//!   networks of Table 1 (AlexNet, MNIST, DeepFace, Kaldi, SENNA×3).
//!
//! # Quickstart
//!
//! ```
//! use dnn::zoo::{self, App};
//!
//! let net = zoo::network(App::Dig)?;
//! let input = tensor::Tensor::zeros(net.def().input_shape().clone());
//! let probs = net.forward(&input)?;
//! assert_eq!(probs.shape().as_matrix().1, 10); // ten digit classes
//! # Ok::<(), dnn::DnnError>(())
//! ```

pub mod cache;
mod error;
mod layer;
pub mod modelfile;
mod netdef;
mod network;
pub mod parser;
pub mod profile;
pub mod train;
mod weights;
pub mod zoo;

pub use error::DnnError;
pub use layer::{ActivationKind, LayerSpec, LocalParams, PoolKind};
pub use netdef::{LayerDef, NetDef};
pub use network::Network;
pub use weights::LayerWeights;

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, DnnError>;
