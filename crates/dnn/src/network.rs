//! A network definition paired with weights: the executable model.

use serde::{Deserialize, Serialize};
use tensor::{partition, Shape, Tensor, Threading};

use crate::cache::EmbedCache;
use crate::{DnnError, LayerSpec, LayerWeights, NetDef, Result};

/// An executable network: a [`NetDef`] plus one [`LayerWeights`] per layer.
///
/// This is what DjiNN loads into memory once per application at service
/// start-up; worker threads share it read-only (it is `Sync` because all
/// state is immutable after construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    def: NetDef,
    weights: Vec<LayerWeights>,
}

impl Network {
    /// Creates a network with deterministic, architecture-correct random
    /// weights (see DESIGN.md §2 for why untrained weights suffice).
    ///
    /// # Errors
    ///
    /// Propagates shape-validation failures from the definition.
    pub fn with_random_weights(def: NetDef, seed: u64) -> Result<Self> {
        let shapes = def.layer_shapes(1)?;
        let weights = def
            .layers()
            .iter()
            .zip(&shapes)
            .enumerate()
            .map(|(i, (l, s))| LayerWeights::init(&l.spec, s, seed.wrapping_add(i as u64)))
            .collect();
        Ok(Network { def, weights })
    }

    /// Creates a network from explicit weights (e.g. deserialized from a
    /// model file).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadNetwork`] if the weight count does not match
    /// the layer count or any parameterized layer's weight volume is wrong.
    pub fn with_weights(def: NetDef, weights: Vec<LayerWeights>) -> Result<Self> {
        if weights.len() != def.layers().len() {
            return Err(DnnError::BadNetwork {
                reason: format!(
                    "{} weight entries for {} layers",
                    weights.len(),
                    def.layers().len()
                ),
            });
        }
        let shapes = def.layer_shapes(1)?;
        for ((l, s), w) in def.layers().iter().zip(&shapes).zip(&weights) {
            let want = l.spec.param_count(s);
            if w.param_count() != want {
                return Err(DnnError::BadNetwork {
                    reason: format!(
                        "layer `{}` expects {} params, got {}",
                        l.name,
                        want,
                        w.param_count()
                    ),
                });
            }
        }
        Ok(Network { def, weights })
    }

    /// The underlying definition.
    pub fn def(&self) -> &NetDef {
        &self.def
    }

    /// Per-layer weights, aligned with `def().layers()`.
    pub fn weights(&self) -> &[LayerWeights] {
        &self.weights
    }

    /// Mutable per-layer weights (used by [`crate::train::Trainer`]).
    pub fn weights_mut(&mut self) -> &mut [LayerWeights] {
        &mut self.weights
    }

    /// Total learned parameters.
    pub fn param_count(&self) -> usize {
        self.weights.iter().map(LayerWeights::param_count).sum()
    }

    /// Runs the inference (forward) pass on a batched input.
    ///
    /// The input's non-batch dimensions must match the definition's input
    /// shape; the batch axis may be any size — this is exactly the batching
    /// lever of §5.1 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadInput`] on shape mismatch; propagates layer
    /// execution failures.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(input, Threading::SINGLE)
    }

    /// [`Network::forward`] with a worker-thread budget applied *within*
    /// each layer (parallel convolution batches and GEMM row strips).
    ///
    /// Best for compute-heavy models (AlexNet, DeepFace) where single
    /// layers dominate. For skinny matrices on wide batches (SENNA),
    /// [`Network::forward_sharded`] usually scales better.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_with(&self, input: &Tensor, threading: Threading) -> Result<Tensor> {
        let want = self.def.input_shape();
        if input.shape().dims()[1..] != want.dims()[1..] || input.shape().rank() != want.rank() {
            return Err(DnnError::BadInput {
                expected: want.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        let mut cur = input.clone();
        for (l, w) in self.def.layers().iter().zip(&self.weights) {
            cur = l
                .spec
                .forward_with(&cur, w, threading)
                .map_err(|e| match e {
                    DnnError::BadLayer { reason, .. } => DnnError::BadLayer {
                        layer: l.name.clone(),
                        reason,
                    },
                    other => other,
                })?;
        }
        Ok(cur)
    }

    /// Batch-sharded forward pass: splits the batch axis into contiguous
    /// shards, runs the whole layer stack per shard on scoped worker
    /// threads, and restacks the outputs in order.
    ///
    /// Every layer in this workspace treats batch items independently
    /// (convolution, pooling and LRN per image; inner product and softmax
    /// per row), so sharding is semantically transparent. It amortizes
    /// per-layer overhead across threads and is the profitable strategy
    /// for the paper's NLP services, whose per-item GEMMs are too skinny
    /// to split internally.
    ///
    /// With one worker (or a single-item batch) this degrades to
    /// [`Network::forward`] exactly.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_sharded(&self, input: &Tensor, threading: Threading) -> Result<Tensor> {
        let batch = *input.shape().dims().first().unwrap_or(&0);
        let workers = threading.workers_for(batch);
        if workers <= 1 {
            return self.forward_with(input, threading);
        }
        let sizes: Vec<usize> = partition(batch, workers)
            .into_iter()
            .map(|(s, e)| e - s)
            .collect();
        let shards = input.split_batch(&sizes)?;
        let results: Vec<Result<Tensor>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| scope.spawn(move || self.forward(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("forward shard panicked"))
                .collect()
        });
        let outs = results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(Tensor::stack_batch(&outs)?)
    }

    /// The length of this network's *embedding prefix*: the leading
    /// layer run (fully-connected lookup plus its activation) whose
    /// output depends on each input row independently. This is the
    /// memoizable region for SENNA-style NLP models, where the first
    /// inner product is a vocabulary-embedding lookup and hot words
    /// repeat across requests.
    ///
    /// Returns `None` for networks that don't open with an inner
    /// product on row-vector input (the convolutional models), in which
    /// case [`Network::forward_embed_cached`] degrades to an uncached
    /// forward pass.
    pub fn embed_prefix(&self) -> Option<usize> {
        if self.def.input_shape().rank() != 2 {
            return None;
        }
        let layers = self.def.layers();
        match layers.first().map(|l| &l.spec) {
            Some(LayerSpec::InnerProduct { .. }) => {}
            _ => return None,
        }
        let prefix = match layers.get(1).map(|l| &l.spec) {
            Some(LayerSpec::Activation(_)) => 2,
            _ => 1,
        };
        // A prefix covering the whole network would duplicate what the
        // exact-match cache already does, with per-row overhead on top.
        (prefix < layers.len()).then_some(prefix)
    }

    /// [`Network::forward_with`] that memoizes the embedding prefix
    /// per input row in `cache` (see [`EmbedCache`]).
    ///
    /// Rows whose bit pattern was seen before reuse the cached prefix
    /// output; cold rows are computed **one row at a time** and
    /// inserted. Row-at-a-time execution is what makes a later hit
    /// bitwise-identical to the miss that populated it: each row's
    /// prefix output is independent of its batch neighbors by
    /// construction, and single-row GEMMs have one reduction order.
    /// The layers after the prefix run batched under `threading` as
    /// usual.
    ///
    /// For networks with no embedding prefix this is exactly
    /// [`Network::forward_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_embed_cached(
        &self,
        input: &Tensor,
        cache: &EmbedCache,
        threading: Threading,
    ) -> Result<Tensor> {
        let Some(prefix) = self.embed_prefix() else {
            return self.forward_with(input, threading);
        };
        let want = self.def.input_shape();
        if input.shape().dims()[1..] != want.dims()[1..] || input.shape().rank() != want.rank() {
            return Err(DnnError::BadInput {
                expected: want.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        let (rows, width) = input.shape().as_matrix();
        if rows == 0 {
            return self.forward_with(input, threading);
        }
        let mut mid_data: Vec<f32> = Vec::new();
        let mut out_width = 0usize;
        for r in 0..rows {
            let row = &input.data()[r * width..(r + 1) * width];
            let out_row: std::sync::Arc<[f32]> = match cache.get_row(row) {
                Some(hit) => hit,
                None => {
                    let one = Tensor::from_vec(Shape::mat(1, width), row.to_vec())?;
                    let computed = self.run_layers(0..prefix, one, Threading::SINGLE)?;
                    cache.insert_row(row, computed.data());
                    std::sync::Arc::from(computed.data())
                }
            };
            out_width = out_row.len();
            mid_data.extend_from_slice(&out_row);
        }
        let mid = Tensor::from_vec(Shape::mat(rows, out_width), mid_data)?;
        self.run_layers(prefix..self.def.depth(), mid, threading)
    }

    /// Runs the half-open layer range `span` on `cur`, remapping layer
    /// errors to the failing layer's name like [`Network::forward_with`].
    fn run_layers(
        &self,
        span: std::ops::Range<usize>,
        mut cur: Tensor,
        threading: Threading,
    ) -> Result<Tensor> {
        for (l, w) in self.def.layers()[span.clone()]
            .iter()
            .zip(&self.weights[span])
        {
            cur = l
                .spec
                .forward_with(&cur, w, threading)
                .map_err(|e| match e {
                    DnnError::BadLayer { reason, .. } => DnnError::BadLayer {
                        layer: l.name.clone(),
                        reason,
                    },
                    other => other,
                })?;
        }
        Ok(cur)
    }

    /// Runs the forward pass, returning every intermediate activation
    /// (index `i` holds layer `i`'s output). Exposes intermediate results
    /// per C-INTERMEDIATE for users that need feature maps.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_all(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let mut acts = Vec::with_capacity(self.def.depth());
        let mut cur = input.clone();
        for (l, w) in self.def.layers().iter().zip(&self.weights) {
            cur = l.spec.forward(&cur, w)?;
            acts.push(cur.clone());
        }
        Ok(acts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, LayerDef, LayerSpec};
    use tensor::Shape;

    fn mlp() -> NetDef {
        NetDef::new(
            "mlp",
            Shape::mat(1, 8),
            vec![
                LayerDef {
                    name: "fc1".into(),
                    spec: LayerSpec::InnerProduct { out: 16 },
                },
                LayerDef {
                    name: "act1".into(),
                    spec: LayerSpec::Activation(ActivationKind::Relu),
                },
                LayerDef {
                    name: "fc2".into(),
                    spec: LayerSpec::InnerProduct { out: 4 },
                },
                LayerDef {
                    name: "prob".into(),
                    spec: LayerSpec::Softmax,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn forward_produces_probabilities() {
        let net = Network::with_random_weights(mlp(), 1).unwrap();
        let input = Tensor::random_uniform(Shape::mat(3, 8), 1.0, 2);
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        for r in 0..3 {
            let sum: f32 = out.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_batch_equals_itemwise() {
        // Batching must not change per-item results — the correctness
        // precondition for the paper's batching optimization.
        let net = Network::with_random_weights(mlp(), 7).unwrap();
        let a = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 3);
        let b = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 4);
        let batched = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        let out_batched = net.forward(&batched).unwrap();
        let parts = out_batched.split_batch(&[1, 1]).unwrap();
        let out_a = net.forward(&a).unwrap();
        let out_b = net.forward(&b).unwrap();
        assert!(parts[0].max_abs_diff(&out_a).unwrap() < 1e-5);
        assert!(parts[1].max_abs_diff(&out_b).unwrap() < 1e-5);
    }

    #[test]
    fn sharded_forward_equals_serial() {
        let net = Network::with_random_weights(mlp(), 11).unwrap();
        let input = Tensor::random_uniform(Shape::mat(13, 8), 1.0, 12);
        let serial = net.forward(&input).unwrap();
        for threads in [1usize, 2, 4, 7, 32] {
            let sharded = net
                .forward_sharded(&input, Threading::new(threads))
                .unwrap();
            assert_eq!(sharded.shape(), serial.shape());
            assert!(
                sharded.max_abs_diff(&serial).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_forward_equals_serial() {
        let net = Network::with_random_weights(mlp(), 5).unwrap();
        let input = Tensor::random_uniform(Shape::mat(9, 8), 1.0, 6);
        let serial = net.forward(&input).unwrap();
        let threaded = net.forward_with(&input, Threading::new(4)).unwrap();
        assert!(threaded.max_abs_diff(&serial).unwrap() < 1e-5);
    }

    #[test]
    fn forward_rejects_wrong_shape() {
        let net = Network::with_random_weights(mlp(), 1).unwrap();
        let bad = Tensor::zeros(Shape::mat(1, 9));
        assert!(matches!(net.forward(&bad), Err(DnnError::BadInput { .. })));
    }

    #[test]
    fn with_weights_validates_counts() {
        let def = mlp();
        let too_few = Network::with_weights(def.clone(), vec![LayerWeights::none()]);
        assert!(too_few.is_err());
        let net = Network::with_random_weights(def.clone(), 1).unwrap();
        let rebuilt = Network::with_weights(def, net.weights().to_vec()).unwrap();
        assert_eq!(rebuilt.param_count(), net.param_count());
    }

    #[test]
    fn embed_prefix_detects_fc_plus_activation() {
        let net = Network::with_random_weights(mlp(), 1).unwrap();
        assert_eq!(net.embed_prefix(), Some(2), "fc1 + act1 form the prefix");
    }

    #[test]
    fn embed_cached_forward_matches_uncached_bitwise() {
        let net = Network::with_random_weights(mlp(), 21).unwrap();
        let cache = EmbedCache::new(1 << 20);
        let input = Tensor::random_uniform(Shape::mat(4, 8), 1.0, 22);
        let plain = net.forward(&input).unwrap();
        let cold = net
            .forward_embed_cached(&input, &cache, Threading::SINGLE)
            .unwrap();
        let warm = net
            .forward_embed_cached(&input, &cache, Threading::SINGLE)
            .unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&cold), bits(&warm), "hit must equal the miss bitwise");
        assert_eq!(
            bits(&cold),
            bits(&plain),
            "row-at-a-time prefix must match batched forward bitwise for fc layers"
        );
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (4, 4), "4 cold rows then 4 warm rows");
    }

    #[test]
    fn embed_cached_forward_hits_hot_rows_in_mixed_batches() {
        let net = Network::with_random_weights(mlp(), 31).unwrap();
        let cache = EmbedCache::new(1 << 20);
        let hot = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 32);
        net.forward_embed_cached(&hot, &cache, Threading::SINGLE)
            .unwrap();
        let cold = Tensor::random_uniform(Shape::mat(1, 8), 1.0, 33);
        let mixed = Tensor::stack_batch(&[hot.clone(), cold.clone()]).unwrap();
        let out = net
            .forward_embed_cached(&mixed, &cache, Threading::SINGLE)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1, "the hot row hits even though the batch is novel");
        assert_eq!(s.misses, 2, "one cold warm-up row + one cold mixed row");
        let itemwise =
            Tensor::stack_batch(&[net.forward(&hot).unwrap(), net.forward(&cold).unwrap()])
                .unwrap();
        assert!(out.max_abs_diff(&itemwise).unwrap() < 1e-6);
    }

    #[test]
    fn forward_all_exposes_intermediates() {
        let net = Network::with_random_weights(mlp(), 1).unwrap();
        let input = Tensor::zeros(Shape::mat(1, 8));
        let acts = net.forward_all(&input).unwrap();
        assert_eq!(acts.len(), 4);
        assert_eq!(acts[0].shape().dims(), &[1, 16]);
        assert_eq!(acts[3].shape().dims(), &[1, 4]);
    }
}
