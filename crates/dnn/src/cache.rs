//! Content-keyed inference caching: memoization at layer boundaries.
//!
//! WSC inference traffic is redundant in two ways the forward pass can
//! exploit (ROADMAP item 4; see DESIGN.md §14):
//!
//! * **Exact duplicates** — IMC/DIG style services see the same input
//!   tensor again and again (retries, hot content, identical thumbnails).
//!   [`ExactCache`] memoizes the *full* network output keyed by the
//!   input's content, so a repeat skips the forward pass entirely.
//! * **Hot vocabulary** — the SENNA NLP services (POS/CHK/NER) re-embed
//!   the same word-window rows on every request even when the full
//!   input tensor is novel. [`EmbedCache`] memoizes the embedding-layer
//!   (first fully-connected + activation) output *per input row*, so a
//!   partially-hot input still hits on its hot rows.
//!
//! Both caches share one engine, [`ShardedLru`]: a hash-sharded map with
//! strict byte-budget LRU eviction. Keys are the exact bit patterns of
//! the input floats (shape included for the full-output memo), and every
//! hit re-verifies the **full key** against the stored copy — a hash
//! collision can never serve another input's output, only cost a miss.
//! `-0.0` vs `0.0` and differing NaN payloads are distinct keys by
//! construction, which is what makes a hit bitwise-equivalent to the
//! compute it replaced.
//!
//! Consistency model: models are immutable after load (the registry is
//! load-once, share-read-only), so a cached output can never go stale —
//! eviction exists purely to bound memory, never for correctness.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tensor::Tensor;

/// Hash function over canonical key words. Pluggable so tests can force
/// collisions and prove hits compare the full key, not just the hash.
pub type KeyHasher = fn(&[u32]) -> u64;

/// FNV-1a over the little-endian bytes of each key word — the default
/// [`KeyHasher`]. Deterministic across processes and platforms.
pub fn fnv1a(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

/// Point-in-time cache telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (full key verified).
    pub hits: u64,
    /// Lookups that found nothing (or only a colliding key).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Bytes currently resident (keys + values).
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum, for reporting two cache layers as one line.
    #[must_use]
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            insertions: self.insertions + other.insertions,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            entries: self.entries + other.entries,
        }
    }
}

struct Entry<V> {
    key: Box<[u32]>,
    value: V,
    bytes: usize,
    tick: u64,
}

struct Shard<V> {
    /// Hash → chain of entries with that hash. Chains hold every
    /// colliding key; a lookup walks the chain comparing full keys.
    chains: HashMap<u64, Vec<Entry<V>>>,
    /// LRU index: recency tick → hash of the entry stamped with it.
    /// Ticks are unique within a shard, so the map's first key is always
    /// the least-recently-used entry.
    lru: BTreeMap<u64, u64>,
    bytes: usize,
    tick: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            chains: HashMap::new(),
            lru: BTreeMap::new(),
            bytes: 0,
            tick: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A hash-sharded, byte-budgeted LRU map from content keys to values —
/// the storage engine behind [`ExactCache`] and [`EmbedCache`].
///
/// Keys are canonical `u32` words (float bit patterns, shape words).
/// Every hit compares the stored key word-for-word before answering, so
/// hash collisions degrade to misses, never to wrong answers. Each shard
/// owns an equal slice of the byte budget and evicts least-recently-used
/// entries whenever an insert would overflow it.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_budget: usize,
    hasher: KeyHasher,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

/// Shards per cache: enough to keep concurrent engine workers off each
/// other's locks, few enough that tiny budgets still hold real entries.
const SHARDS: usize = 8;

impl<V: Clone> ShardedLru<V> {
    /// A cache holding at most `budget_bytes` of keys + values, using
    /// the default FNV-1a hasher.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_hasher(budget_bytes, fnv1a)
    }

    /// Like [`ShardedLru::new`] with a caller-chosen hash function —
    /// the hook collision-hardening tests use to force every key onto
    /// one chain.
    pub fn with_hasher(budget_bytes: usize, hasher: KeyHasher) -> Self {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: (budget_bytes / SHARDS).max(1),
            hasher,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, hash: u64) -> &Mutex<Shard<V>> {
        // Take shard bits from the top of the hash so they stay
        // independent of whatever low bits HashMap buckets by.
        &self.shards[(hash >> 56) as usize % self.shards.len()]
    }

    /// Looks `key` up, returning a clone of the stored value on a
    /// verified full-key match and refreshing the entry's recency.
    pub fn get(&self, key: &[u32]) -> Option<V> {
        let hash = (self.hasher)(key);
        let mut shard = self
            .shard_of(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let tick = shard.next_tick();
        if let Some(chain) = shard.chains.get_mut(&hash) {
            if let Some(entry) = chain.iter_mut().find(|e| &*e.key == key) {
                let old = entry.tick;
                entry.tick = tick;
                let value = entry.value.clone();
                shard.lru.remove(&old);
                shard.lru.insert(tick, hash);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or refreshes) `key → value`, charging `bytes` against
    /// the shard's budget and evicting LRU entries to make room. An
    /// entry larger than a whole shard's budget is not admitted at all —
    /// caching it would evict everything and still overflow.
    pub fn insert(&self, key: Vec<u32>, value: V, bytes: usize) {
        if bytes > self.shard_budget {
            return;
        }
        let hash = (self.hasher)(&key);
        let mut shard = self
            .shard_of(hash)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let tick = shard.next_tick();
        // Replace an existing entry for this exact key (concurrent
        // misses race to insert the same computation; last write wins).
        if let Some(chain) = shard.chains.get_mut(&hash) {
            if let Some(entry) = chain.iter_mut().find(|e| *e.key == key[..]) {
                let (old_tick, old_bytes) = (entry.tick, entry.bytes);
                entry.value = value;
                entry.bytes = bytes;
                entry.tick = tick;
                shard.lru.remove(&old_tick);
                shard.lru.insert(tick, hash);
                shard.bytes = shard.bytes - old_bytes + bytes;
                self.evict_over_budget(&mut shard);
                return;
            }
        }
        shard.bytes += bytes;
        shard.chains.entry(hash).or_default().push(Entry {
            key: key.into_boxed_slice(),
            value,
            bytes,
            tick,
        });
        shard.lru.insert(tick, hash);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evict_over_budget(&mut shard);
    }

    fn evict_over_budget(&self, shard: &mut Shard<V>) {
        while shard.bytes > self.shard_budget {
            let Some((&tick, &hash)) = shard.lru.iter().next() else {
                break; // unreachable: bytes > 0 implies an entry exists
            };
            shard.lru.remove(&tick);
            let mut freed = 0;
            if let Some(chain) = shard.chains.get_mut(&hash) {
                if let Some(pos) = chain.iter().position(|e| e.tick == tick) {
                    freed = chain[pos].bytes;
                    chain.swap_remove(pos);
                }
                if chain.is_empty() {
                    shard.chains.remove(&hash);
                }
            }
            shard.bytes -= freed;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).lru.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte budget one shard enforces (total budget / shard count).
    pub fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes() as u64,
            entries: self.len() as u64,
        }
    }
}

/// Canonical key words for a whole tensor: rank, dims, then the bit
/// pattern of every float. Two tensors map to the same key iff they are
/// bitwise identical in shape and content.
pub fn tensor_key(t: &Tensor) -> Vec<u32> {
    let dims = t.shape().dims();
    let mut key = Vec::with_capacity(1 + dims.len() + t.data().len());
    key.push(dims.len() as u32);
    key.extend(dims.iter().map(|&d| d as u32));
    key.extend(t.data().iter().map(|v| v.to_bits()));
    key
}

/// Canonical key words for one row: just the float bit patterns (the
/// row length is implied by the model's input width).
fn row_key(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// Full-output memo: input tensor content → network output. A hit is a
/// request that never needs the forward pass (nor, in the serving
/// engine, the queue or the device lease).
pub struct ExactCache {
    lru: ShardedLru<Tensor>,
}

impl ExactCache {
    /// An exact-match cache bounded by `budget_bytes`.
    pub fn new(budget_bytes: usize) -> Self {
        ExactCache {
            lru: ShardedLru::new(budget_bytes),
        }
    }

    /// Like [`ExactCache::new`] with a custom hasher (collision tests).
    pub fn with_hasher(budget_bytes: usize, hasher: KeyHasher) -> Self {
        ExactCache {
            lru: ShardedLru::with_hasher(budget_bytes, hasher),
        }
    }

    /// The cached output for a bitwise-identical prior input, if any.
    pub fn get(&self, input: &Tensor) -> Option<Tensor> {
        self.lru.get(&tensor_key(input))
    }

    /// Memoizes `input → output`. The charge covers both the key (a
    /// bitwise copy of the input) and the stored output.
    pub fn insert(&self, input: &Tensor, output: &Tensor) {
        let key = tensor_key(input);
        let bytes = key.len() * 4 + output.byte_len();
        self.lru.insert(key, output.clone(), bytes);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.lru.resident_bytes()
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

/// Embedding-layer row memo: one input row's content → the embedding
/// prefix's output row (see [`crate::Network::forward_embed_cached`]).
/// Keying per row is what lets a *partially* hot input — a SENNA window
/// batch where only some word windows repeat — still hit on the hot
/// rows while computing the cold ones.
pub struct EmbedCache {
    lru: ShardedLru<Arc<[f32]>>,
}

impl EmbedCache {
    /// A per-row cache bounded by `budget_bytes`.
    pub fn new(budget_bytes: usize) -> Self {
        EmbedCache {
            lru: ShardedLru::new(budget_bytes),
        }
    }

    /// Like [`EmbedCache::new`] with a custom hasher (collision tests).
    pub fn with_hasher(budget_bytes: usize, hasher: KeyHasher) -> Self {
        EmbedCache {
            lru: ShardedLru::with_hasher(budget_bytes, hasher),
        }
    }

    /// The cached prefix output for a bitwise-identical prior row.
    pub fn get_row(&self, row: &[f32]) -> Option<Arc<[f32]>> {
        self.lru.get(&row_key(row))
    }

    /// Memoizes `row → prefix output row`.
    pub fn insert_row(&self, row: &[f32], out: &[f32]) {
        let key = row_key(row);
        let bytes = (key.len() + out.len()) * 4;
        self.lru.insert(key, Arc::from(out), bytes);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.lru.resident_bytes()
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

/// Which cache layers a service enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No caching (the pre-cache serving path, byte for byte).
    #[default]
    Off,
    /// Full-output memoization only.
    Exact,
    /// Embedding-layer row memoization only.
    Embed,
    /// Both layers, splitting the byte budget evenly.
    Both,
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CacheMode::Off),
            "exact" => Ok(CacheMode::Exact),
            "embed" => Ok(CacheMode::Embed),
            "both" => Ok(CacheMode::Both),
            other => Err(format!(
                "unknown cache mode `{other}` (want off|exact|embed|both)"
            )),
        }
    }
}

impl std::fmt::Display for CacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheMode::Off => "off",
            CacheMode::Exact => "exact",
            CacheMode::Embed => "embed",
            CacheMode::Both => "both",
        })
    }
}

/// One model's cache configuration: the enabled layers under a shared
/// byte budget. [`InferenceCache::new`] returns `None` for
/// [`CacheMode::Off`] so a disabled cache costs the serving path nothing
/// — not even a branch into this module.
pub struct InferenceCache {
    exact: Option<ExactCache>,
    embed: Option<EmbedCache>,
}

impl InferenceCache {
    /// Builds the caches `mode` enables under `budget_bytes` total
    /// ([`CacheMode::Both`] splits the budget evenly); `None` for
    /// [`CacheMode::Off`].
    pub fn new(mode: CacheMode, budget_bytes: usize) -> Option<Self> {
        match mode {
            CacheMode::Off => None,
            CacheMode::Exact => Some(InferenceCache {
                exact: Some(ExactCache::new(budget_bytes)),
                embed: None,
            }),
            CacheMode::Embed => Some(InferenceCache {
                exact: None,
                embed: Some(EmbedCache::new(budget_bytes)),
            }),
            CacheMode::Both => Some(InferenceCache {
                exact: Some(ExactCache::new(budget_bytes / 2)),
                embed: Some(EmbedCache::new(budget_bytes / 2)),
            }),
        }
    }

    /// The full-output memo, when enabled.
    pub fn exact(&self) -> Option<&ExactCache> {
        self.exact.as_ref()
    }

    /// The embedding-row memo, when enabled.
    pub fn embed(&self) -> Option<&EmbedCache> {
        self.embed.as_ref()
    }

    /// Exact-layer counters, when that layer is enabled. **Unit:
    /// whole requests** — one lookup per inference, so
    /// [`CacheStats::hit_rate`] here is the fraction of *requests*
    /// answered from cache, directly comparable to the client-observed
    /// `cache_hit` trace flag.
    pub fn exact_stats(&self) -> Option<CacheStats> {
        self.exact.as_ref().map(ExactCache::stats)
    }

    /// Embed-layer counters, when that layer is enabled. **Unit: input
    /// rows** — one lookup per row of every forwarded batch, so
    /// [`CacheStats::hit_rate`] here is the fraction of *rows* that
    /// reused a cached embedding. Dividing these hits by a request
    /// count mixes units and overstates the hit rate by the batch size;
    /// reconcile against rows sent, not requests sent.
    pub fn embed_stats(&self) -> Option<CacheStats> {
        self.embed.as_ref().map(EmbedCache::stats)
    }

    /// Combined counters across the enabled layers. Byte/entry fields
    /// add cleanly; the hit/miss counters keep their *layer-local*
    /// units (exact counts whole requests, embed counts rows), so a
    /// [`CacheStats::hit_rate`] over this merged snapshot is a lookup
    /// rate, not a request rate — use [`InferenceCache::exact_stats`] /
    /// [`InferenceCache::embed_stats`] when the unit matters.
    pub fn stats(&self) -> CacheStats {
        let exact = self.exact_stats().unwrap_or_default();
        let embed = self.embed_stats().unwrap_or_default();
        exact.merged(&embed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Shape;

    fn tens(seed: u64, n: usize) -> Tensor {
        Tensor::random_uniform(Shape::mat(1, n), 1.0, seed)
    }

    #[test]
    fn exact_cache_round_trips_bitwise() {
        let cache = ExactCache::new(1 << 20);
        let input = tens(1, 16);
        let output = tens(2, 4);
        assert!(cache.get(&input).is_none(), "cold cache misses");
        cache.insert(&input, &output);
        let hit = cache.get(&input).expect("warm cache hits");
        assert_eq!(hit.shape(), output.shape());
        let bitwise: Vec<u32> = hit.data().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = output.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bitwise, want, "hit must be bitwise-identical");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn different_shapes_with_same_bytes_are_different_keys() {
        let cache = ExactCache::new(1 << 20);
        let flat = Tensor::from_vec(Shape::mat(1, 4), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let tall = Tensor::from_vec(Shape::mat(4, 1), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        cache.insert(&flat, &tens(9, 2));
        assert!(cache.get(&tall).is_none(), "shape is part of the key");
    }

    #[test]
    fn negative_zero_and_nan_payloads_are_distinct_keys() {
        let cache = ExactCache::new(1 << 20);
        let pos = Tensor::from_vec(Shape::mat(1, 2), vec![0.0, 1.0]).unwrap();
        let neg = Tensor::from_vec(Shape::mat(1, 2), vec![-0.0, 1.0]).unwrap();
        cache.insert(&pos, &tens(5, 2));
        assert!(
            cache.get(&neg).is_none(),
            "-0.0 == 0.0 numerically but must not alias in a bitwise cache"
        );
    }

    #[test]
    fn eviction_keeps_resident_bytes_under_budget() {
        let budget = 64 << 10;
        let cache = ExactCache::new(budget);
        for seed in 0..200 {
            cache.insert(&tens(seed, 256), &tens(seed + 1000, 64));
            assert!(
                cache.resident_bytes() <= budget,
                "resident {} exceeds budget {budget}",
                cache.resident_bytes()
            );
        }
        let s = cache.stats();
        assert!(
            s.evictions > 0,
            "200 x ~1.3KB entries must evict under 64KB"
        );
        assert!(!cache.is_empty(), "eviction must not empty a warm cache");
    }

    #[test]
    fn eviction_is_lru_not_random() {
        // One shard's worth of traffic: keys all collide onto one chain
        // via a constant hasher, so recency alone decides who survives.
        let cache = ExactCache::with_hasher(8 << 10, |_| 7);
        let (a, b) = (tens(1, 64), tens(2, 64));
        cache.insert(&a, &tens(10, 8));
        cache.insert(&b, &tens(11, 8));
        assert!(cache.get(&a).is_some(), "touch `a` so `b` is now LRU");
        // Fill until something must go: the survivor set must favor `a`.
        for seed in 100..103 {
            cache.insert(&tens(seed, 64), &tens(seed + 1, 8));
        }
        let (a_alive, b_alive) = (cache.get(&a).is_some(), cache.get(&b).is_some());
        assert!(
            a_alive || !b_alive,
            "b (LRU) survived while a (recently touched) was evicted"
        );
    }

    /// The strict true-LRU contract: a key that is *read* on every
    /// round of churn must never be evicted, no matter how many cold
    /// keys stream past it. A FIFO cache — one whose `get` does not
    /// refresh recency — fails this within the first few rounds, because
    /// the hot key keeps its original insertion tick and becomes the
    /// eviction victim as soon as the budget fills. (The weaker
    /// `eviction_is_lru_not_random` check above can pass under FIFO when
    /// both probed keys die; this one cannot.)
    #[test]
    fn hot_key_survives_sustained_churn() {
        // Constant hasher pins everything to one shard so its budget —
        // which fits only a handful of entries — is the whole cache.
        let cache = ExactCache::with_hasher(8 << 10, |_| 3);
        let hot = tens(777, 64);
        cache.insert(&hot, &tens(778, 8));
        for seed in 0..64 {
            assert!(
                cache.get(&hot).is_some(),
                "hot key evicted after {seed} churn inserts despite being \
                 read every round — `get` is not refreshing recency"
            );
            cache.insert(&tens(seed, 64), &tens(seed + 1, 8));
        }
        let s = cache.stats();
        assert_eq!(s.hits, 64, "every hot-key read must hit");
        assert!(
            s.evictions > 0,
            "the churn must actually overflow the shard"
        );
    }

    #[test]
    fn colliding_hashes_never_cross_answers() {
        // Constant hasher: every key lands on one chain. Both inputs
        // must still get their own outputs back.
        let cache = ExactCache::with_hasher(1 << 20, |_| 42);
        let (in_a, in_b) = (tens(1, 16), tens(2, 16));
        let (out_a, out_b) = (tens(3, 4), tens(4, 4));
        cache.insert(&in_a, &out_a);
        cache.insert(&in_b, &out_b);
        let hit_a = cache.get(&in_a).expect("a hits");
        let hit_b = cache.get(&in_b).expect("b hits");
        assert_eq!(hit_a.data(), out_a.data());
        assert_eq!(hit_b.data(), out_b.data());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let cache = ExactCache::new(1 << 10); // 128 B per shard
        let big = tens(1, 4096);
        cache.insert(&big, &tens(2, 4096));
        assert_eq!(cache.len(), 0, "an entry wider than a shard is skipped");
        assert!(cache.get(&big).is_none());
    }

    #[test]
    fn embed_cache_keys_per_row() {
        let cache = EmbedCache::new(1 << 20);
        let row_a = [1.0f32, 2.0, 3.0];
        let row_b = [4.0f32, 5.0, 6.0];
        cache.insert_row(&row_a, &[10.0, 20.0]);
        assert_eq!(cache.get_row(&row_a).as_deref(), Some(&[10.0f32, 20.0][..]));
        assert!(cache.get_row(&row_b).is_none(), "other rows miss");
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            CacheMode::Off,
            CacheMode::Exact,
            CacheMode::Embed,
            CacheMode::Both,
        ] {
            assert_eq!(mode.to_string().parse::<CacheMode>(), Ok(mode));
        }
        assert!("nonsense".parse::<CacheMode>().is_err());
        assert!(InferenceCache::new(CacheMode::Off, 1 << 20).is_none());
        let both = InferenceCache::new(CacheMode::Both, 1 << 20).unwrap();
        assert!(both.exact().is_some() && both.embed().is_some());
    }

    #[test]
    fn stats_merge_both_layers() {
        let cache = InferenceCache::new(CacheMode::Both, 1 << 20).unwrap();
        let input = tens(1, 8);
        assert!(cache.exact().unwrap().get(&input).is_none());
        cache.exact().unwrap().insert(&input, &tens(2, 4));
        assert!(cache.exact().unwrap().get(&input).is_some());
        cache.embed().unwrap().insert_row(input.data(), &[1.0]);
        assert!(cache.embed().unwrap().get_row(input.data()).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    /// Per-layer snapshots keep their units apart: exact counts whole
    /// requests, embed counts rows. A 4-row batch replayed once gives an
    /// exact request-hit-rate of 1/2 and an embed row-hit-rate of 1/2 —
    /// but 4 row hits against 2 requests, which a merged/naive division
    /// would misreport as a 200% "request" hit rate.
    #[test]
    fn layer_stats_keep_request_and_row_units_apart() {
        let cache = InferenceCache::new(CacheMode::Both, 1 << 20).unwrap();
        let batch = Tensor::random_uniform(Shape::mat(4, 8), 1.0, 42);
        let rows: Vec<&[f32]> = batch.data().chunks(8).collect();

        // Request 1 (cold): one exact miss, then per-row embed misses +
        // inserts, then the exact insert — the engine's miss path.
        assert!(cache.exact().unwrap().get(&batch).is_none());
        for row in &rows {
            assert!(cache.embed().unwrap().get_row(row).is_none());
            cache.embed().unwrap().insert_row(row, &[1.0, 2.0]);
        }
        cache.exact().unwrap().insert(&batch, &tens(9, 4));

        // Request 2 (replay): exact hits at admission; embed untouched.
        assert!(cache.exact().unwrap().get(&batch).is_some());

        let exact = cache.exact_stats().unwrap();
        let embed = cache.embed_stats().unwrap();
        assert_eq!(
            (exact.hits, exact.misses),
            (1, 1),
            "exact layer: one lookup per request"
        );
        assert_eq!(
            (embed.hits, embed.misses),
            (0, 4),
            "embed layer: one lookup per row"
        );
        // The trap this split exists to prevent: embed row hits after a
        // row-level replay divided by the request count.
        for row in &rows {
            assert!(cache.embed().unwrap().get_row(row).is_some());
        }
        let embed = cache.embed_stats().unwrap();
        assert_eq!(embed.hits, 4, "4 row hits...");
        let requests = 3.0; // ...across 3 requests
        assert!(
            embed.hits as f64 / requests > 1.0,
            "row hits exceed requests — per-request division is meaningless"
        );
        assert!((embed.hit_rate() - 0.5).abs() < 1e-9, "row hit rate is 4/8");
    }
}
