//! Declarative network descriptions with whole-network shape validation.

use serde::{Deserialize, Serialize};
use tensor::Shape;

use crate::{DnnError, LayerSpec, Result};

/// A named layer within a network definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerDef {
    /// Unique layer name (e.g. `conv1`).
    pub name: String,
    /// The layer's specification.
    pub spec: LayerSpec,
}

/// A complete network description: an input shape (with batch size 1) and
/// an ordered list of layers. `NetDef` is pure configuration; pair it with
/// weights via [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetDef {
    name: String,
    input_shape: Shape,
    layers: Vec<LayerDef>,
}

impl NetDef {
    /// Builds and validates a network definition.
    ///
    /// Validation runs full shape inference front to back, so any geometry
    /// error surfaces at load time rather than at the first query — the
    /// same property DjiNN gets from loading models once at initialization.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadNetwork`] for an empty layer list, a non-unit
    /// input batch, or duplicate layer names; propagates per-layer shape
    /// errors.
    pub fn new(name: impl Into<String>, input_shape: Shape, layers: Vec<LayerDef>) -> Result<Self> {
        let name = name.into();
        if layers.is_empty() {
            return Err(DnnError::BadNetwork {
                reason: format!("network `{name}` has no layers"),
            });
        }
        if input_shape.batch() != 1 {
            return Err(DnnError::BadNetwork {
                reason: format!(
                    "input shape {input_shape} must describe a single item (batch 1); \
                     batching is applied at query time"
                ),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for l in &layers {
            if !seen.insert(l.name.as_str()) {
                return Err(DnnError::BadNetwork {
                    reason: format!("duplicate layer name `{}`", l.name),
                });
            }
        }
        let def = NetDef {
            name,
            input_shape,
            layers,
        };
        def.layer_shapes(1)?; // validate geometry end to end
        Ok(def)
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-item input shape (batch axis is 1).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The ordered layers.
    pub fn layers(&self) -> &[LayerDef] {
        &self.layers
    }

    /// Number of layers (the paper's Table 1 "Layers" column).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Shape flowing *into* each layer, then the final output shape, for a
    /// given batch size. `result[i]` is layer `i`'s input; `result[depth()]`
    /// is the network output.
    ///
    /// # Errors
    ///
    /// Propagates per-layer shape inference failures.
    pub fn layer_shapes(&self, batch: usize) -> Result<Vec<Shape>> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        let mut cur = self.input_shape.with_batch(batch);
        for l in &self.layers {
            shapes.push(cur.clone());
            cur = l.spec.output_shape(&cur).map_err(|e| match e {
                DnnError::BadLayer { reason, .. } => DnnError::BadLayer {
                    layer: l.name.clone(),
                    reason,
                },
                other => other,
            })?;
        }
        shapes.push(cur);
        Ok(shapes)
    }

    /// Output shape for a given batch size.
    ///
    /// # Errors
    ///
    /// Propagates shape inference failures.
    pub fn output_shape(&self, batch: usize) -> Result<Shape> {
        Ok(self
            .layer_shapes(batch)?
            .last()
            .expect("layer_shapes is never empty")
            .clone())
    }

    /// Total learned parameters (the paper's Table 1 "Parameters" column).
    pub fn param_count(&self) -> usize {
        let shapes = self
            .layer_shapes(1)
            .expect("validated at construction time");
        self.layers
            .iter()
            .zip(&shapes)
            .map(|(l, s)| l.spec.param_count(s))
            .sum()
    }

    /// Model size in bytes (4 bytes per parameter) — what DjiNN holds
    /// in memory per registered model.
    pub fn model_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// A per-layer summary table (name, kind, output shape, parameters),
    /// torchsummary-style, for humans inspecting a model.
    pub fn summary(&self) -> String {
        let shapes = self
            .layer_shapes(1)
            .expect("validated at construction time");
        let mut out = String::new();
        out.push_str(&format!(
            "{} — input {}, {} layers, {} params ({:.1} MB)\n",
            self.name,
            self.input_shape,
            self.depth(),
            self.param_count(),
            self.model_bytes() as f64 / 1e6
        ));
        out.push_str(&format!(
            "{:<12} {:<10} {:>16} {:>12}\n",
            "layer", "kind", "output", "params"
        ));
        for (l, s_in) in self.layers.iter().zip(&shapes) {
            let s_out = l
                .spec
                .output_shape(s_in)
                .expect("validated at construction time");
            out.push_str(&format!(
                "{:<12} {:<10} {:>16} {:>12}\n",
                l.name,
                l.spec.kind_name(),
                s_out.to_string(),
                l.spec.param_count(s_in)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActivationKind;
    use tensor::{Conv2dParams, Pool2dParams};

    fn tiny() -> NetDef {
        NetDef::new(
            "tiny",
            Shape::nchw(1, 1, 8, 8),
            vec![
                LayerDef {
                    name: "conv1".into(),
                    spec: LayerSpec::Conv(Conv2dParams::new(4, 3, 1, 1)),
                },
                LayerDef {
                    name: "relu1".into(),
                    spec: LayerSpec::Activation(ActivationKind::Relu),
                },
                LayerDef {
                    name: "pool1".into(),
                    spec: LayerSpec::Pool(crate::PoolKind::Max, Pool2dParams::new(2, 2, 0)),
                },
                LayerDef {
                    name: "fc1".into(),
                    spec: LayerSpec::InnerProduct { out: 10 },
                },
                LayerDef {
                    name: "prob".into(),
                    spec: LayerSpec::Softmax,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn shape_inference_threads_through() {
        let def = tiny();
        let shapes = def.layer_shapes(2).unwrap();
        assert_eq!(shapes[0].dims(), &[2, 1, 8, 8]);
        assert_eq!(shapes[1].dims(), &[2, 4, 8, 8]); // after conv
        assert_eq!(shapes[3].dims(), &[2, 4, 4, 4]); // after pool
        assert_eq!(shapes[5].dims(), &[2, 10]); // output
        assert_eq!(def.output_shape(2).unwrap().dims(), &[2, 10]);
    }

    #[test]
    fn param_count_sums_layers() {
        let def = tiny();
        // conv: 4*1*9+4 = 40; fc: 64*10+10 = 650.
        assert_eq!(def.param_count(), 40 + 650);
        assert_eq!(def.model_bytes(), (40 + 650) * 4);
    }

    #[test]
    fn summary_lists_every_layer() {
        let text = tiny().summary();
        for name in ["conv1", "relu1", "pool1", "fc1", "prob"] {
            assert!(text.contains(name), "missing {name} in summary");
        }
        assert!(text.contains("690 params"));
    }

    #[test]
    fn rejects_duplicates_and_empties() {
        let dup = NetDef::new(
            "dup",
            Shape::mat(1, 4),
            vec![
                LayerDef {
                    name: "a".into(),
                    spec: LayerSpec::InnerProduct { out: 2 },
                },
                LayerDef {
                    name: "a".into(),
                    spec: LayerSpec::Softmax,
                },
            ],
        );
        assert!(matches!(dup, Err(DnnError::BadNetwork { .. })));
        assert!(NetDef::new("empty", Shape::mat(1, 4), vec![]).is_err());
    }

    #[test]
    fn rejects_batched_input_shape() {
        let r = NetDef::new(
            "batched",
            Shape::mat(16, 4),
            vec![LayerDef {
                name: "fc".into(),
                spec: LayerSpec::InnerProduct { out: 2 },
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_geometry_errors_at_load() {
        let r = NetDef::new(
            "bad",
            Shape::nchw(1, 1, 4, 4),
            vec![LayerDef {
                name: "conv".into(),
                spec: LayerSpec::Conv(Conv2dParams::new(2, 9, 1, 0)),
            }],
        );
        assert!(matches!(r, Err(DnnError::BadLayer { .. })));
    }
}
