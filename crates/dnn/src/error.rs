use std::fmt;

use tensor::TensorError;

/// Error type for network construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A layer's parameters are inconsistent with its input shape.
    BadLayer {
        /// Layer name from the network definition.
        layer: String,
        /// What is wrong.
        reason: String,
    },
    /// The network definition itself is malformed (no layers, no classifier,
    /// duplicate names, ...).
    BadNetwork {
        /// What is wrong.
        reason: String,
    },
    /// The supplied input does not match the network's input shape.
    BadInput {
        /// Expected per-item dims (ignoring batch).
        expected: Vec<usize>,
        /// Actual dims.
        actual: Vec<usize>,
    },
    /// A network text description could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        reason: String,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::BadLayer { layer, reason } => write!(f, "bad layer `{layer}`: {reason}"),
            DnnError::BadNetwork { reason } => write!(f, "bad network: {reason}"),
            DnnError::BadInput { expected, actual } => {
                write!(f, "input shape {actual:?} incompatible with {expected:?}")
            }
            DnnError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
        }
    }
}

impl std::error::Error for DnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}
