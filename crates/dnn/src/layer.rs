//! The layer vocabulary: shape inference, parameter counting and
//! functional forward execution for each layer type used by Tonic Suite.

use serde::{Deserialize, Serialize};
use tensor::{Conv2dParams, LrnParams, Pool2dParams, Shape, Tensor, Threading};

use crate::{DnnError, LayerWeights, Result};

/// Pointwise nonlinearity selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit (AlexNet, MNIST).
    Relu,
    /// Hyperbolic tangent (Kaldi ASR).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hard tanh, clamp to `[-1, 1]` (SENNA).
    HardTanh,
}

impl ActivationKind {
    /// Applies the activation in place.
    pub fn apply(&self, t: &mut Tensor) {
        match self {
            ActivationKind::Relu => tensor::relu(t),
            ActivationKind::Tanh => tensor::tanh(t),
            ActivationKind::Sigmoid => tensor::sigmoid(t),
            ActivationKind::HardTanh => tensor::hardtanh(t),
        }
    }

    /// Lower-case name used in the text format.
    pub fn name(&self) -> &'static str {
        match self {
            ActivationKind::Relu => "relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::HardTanh => "hardtanh",
        }
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the valid window.
    Avg,
}

/// Geometry of a locally-connected layer (DeepFace's L4–L6): identical to a
/// convolution except the kernel weights are *untied* — every output
/// location has its own kernel. This is what makes DeepFace's parameter
/// count enormous (120M) relative to its depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalParams {
    /// Number of output feature maps.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl LocalParams {
    /// Output spatial side for an input side of `input` pixels.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit.
    pub fn out_dim(&self, input: usize) -> Result<usize> {
        Conv2dParams::new(self.out_channels, self.kernel, self.stride, self.pad)
            .out_dim(input)
            .map_err(DnnError::from)
    }
}

/// One layer of a network.
///
/// A `LayerSpec` is pure description: it owns no weights (see
/// [`LayerWeights`]) and can infer its output shape from any compatible
/// input shape, which is how the whole network validates itself at load
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution (shared kernels).
    Conv(Conv2dParams),
    /// Locally-connected 2-D layer (untied kernels).
    Local(LocalParams),
    /// Spatial pooling.
    Pool(PoolKind, Pool2dParams),
    /// Fully-connected (inner-product) layer with `out` outputs.
    InnerProduct {
        /// Number of output neurons.
        out: usize,
    },
    /// Pointwise nonlinearity.
    Activation(ActivationKind),
    /// Cross-channel local response normalization.
    Lrn(LrnParams),
    /// Dropout: a no-op at inference time, kept so layer counts match the
    /// published architectures.
    Dropout,
    /// Row-wise softmax classifier output.
    Softmax,
}

impl LayerSpec {
    /// Infers the output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadLayer`] when the layer cannot accept the
    /// input (wrong rank, kernel larger than input, ...).
    pub fn output_shape(&self, input: &Shape) -> Result<Shape> {
        let fail = |reason: String| DnnError::BadLayer {
            layer: self.kind_name().to_string(),
            reason,
        };
        match self {
            LayerSpec::Conv(p) => {
                let d = input.dims();
                if d.len() != 4 {
                    return Err(fail(format!("conv needs NCHW input, got {input}")));
                }
                if !d[1].is_multiple_of(p.groups) || p.out_channels % p.groups != 0 {
                    return Err(fail(format!(
                        "channels {} / out {} not divisible by groups {}",
                        d[1], p.out_channels, p.groups
                    )));
                }
                let oh = p.out_dim(d[2]).map_err(|e| fail(e.to_string()))?;
                let ow = p.out_dim(d[3]).map_err(|e| fail(e.to_string()))?;
                Ok(Shape::nchw(d[0], p.out_channels, oh, ow))
            }
            LayerSpec::Local(p) => {
                let d = input.dims();
                if d.len() != 4 {
                    return Err(fail(format!("local needs NCHW input, got {input}")));
                }
                let oh = p.out_dim(d[2]).map_err(|e| fail(e.to_string()))?;
                let ow = p.out_dim(d[3]).map_err(|e| fail(e.to_string()))?;
                Ok(Shape::nchw(d[0], p.out_channels, oh, ow))
            }
            LayerSpec::Pool(_, p) => {
                let d = input.dims();
                if d.len() != 4 {
                    return Err(fail(format!("pool needs NCHW input, got {input}")));
                }
                let oh = p.out_dim(d[2]).map_err(|e| fail(e.to_string()))?;
                let ow = p.out_dim(d[3]).map_err(|e| fail(e.to_string()))?;
                Ok(Shape::nchw(d[0], d[1], oh, ow))
            }
            LayerSpec::InnerProduct { out } => {
                if *out == 0 {
                    return Err(fail("inner product with zero outputs".into()));
                }
                let (rows, _) = input.as_matrix();
                Ok(Shape::mat(rows, *out))
            }
            LayerSpec::Activation(_) | LayerSpec::Dropout | LayerSpec::Softmax => Ok(input.clone()),
            LayerSpec::Lrn(p) => {
                if input.dims().len() != 4 {
                    return Err(fail(format!("lrn needs NCHW input, got {input}")));
                }
                if p.local_size == 0 {
                    return Err(fail("lrn local_size must be non-zero".into()));
                }
                Ok(input.clone())
            }
        }
    }

    /// Number of learned parameters (weights + biases) for a given input
    /// shape; zero for parameter-free layers.
    pub fn param_count(&self, input: &Shape) -> usize {
        match self {
            LayerSpec::Conv(p) => {
                let cg = input.dims()[1] / p.groups;
                p.out_channels * cg * p.kernel * p.kernel + p.out_channels
            }
            LayerSpec::Local(p) => {
                let d = input.dims();
                let (oh, ow) = match (p.out_dim(d[2]), p.out_dim(d[3])) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => return 0,
                };
                // Untied: a full kernel (+bias) per output location.
                oh * ow * p.out_channels * (d[1] * p.kernel * p.kernel + 1)
            }
            LayerSpec::InnerProduct { out } => {
                let (_, cols) = input.as_matrix();
                cols * out + out
            }
            _ => 0,
        }
    }

    /// Whether this layer carries learned weights.
    pub fn has_params(&self) -> bool {
        matches!(
            self,
            LayerSpec::Conv(_) | LayerSpec::Local(_) | LayerSpec::InnerProduct { .. }
        )
    }

    /// Short lower-case kind name (matches the text format keywords).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerSpec::Conv(_) => "conv",
            LayerSpec::Local(_) => "local",
            LayerSpec::Pool(PoolKind::Max, _) => "maxpool",
            LayerSpec::Pool(PoolKind::Avg, _) => "avgpool",
            LayerSpec::InnerProduct { .. } => "fc",
            LayerSpec::Activation(a) => a.name(),
            LayerSpec::Lrn(_) => "lrn",
            LayerSpec::Dropout => "dropout",
            LayerSpec::Softmax => "softmax",
        }
    }

    /// Executes the layer's forward pass sequentially.
    ///
    /// `weights` must be the weights created for this layer by
    /// [`LayerWeights::init`] (empty for parameter-free layers).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the tensor kernels.
    pub fn forward(&self, input: &Tensor, weights: &LayerWeights) -> Result<Tensor> {
        self.forward_with(input, weights, Threading::SINGLE)
    }

    /// [`LayerSpec::forward`] with a worker-thread budget.
    ///
    /// The budget reaches the compute-bound layers — convolution
    /// (parallel over batch images, then GEMM row strips) and inner
    /// product (parallel over GEMM row strips, i.e. batch rows).
    /// Pointwise and pooling layers run sequentially; they are
    /// memory-bound and their batch dimension is instead covered by
    /// [`crate::Network::forward_sharded`].
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the tensor kernels.
    pub fn forward_with(
        &self,
        input: &Tensor,
        weights: &LayerWeights,
        threading: Threading,
    ) -> Result<Tensor> {
        match self {
            LayerSpec::Conv(p) => {
                let out =
                    tensor::conv2d_with(input, weights.weights(), weights.bias(), p, threading)?;
                Ok(out)
            }
            LayerSpec::Local(p) => forward_local(input, weights, p),
            LayerSpec::Pool(kind, p) => {
                let out = match kind {
                    PoolKind::Max => tensor::max_pool2d(input, p)?,
                    PoolKind::Avg => tensor::avg_pool2d(input, p)?,
                };
                Ok(out)
            }
            LayerSpec::InnerProduct { out } => {
                let (rows, cols) = input.shape().as_matrix();
                let flat = input
                    .clone()
                    .reshape(Shape::mat(rows, cols))
                    .expect("matrix view volume always matches");
                // weights stored (cols x out), so y = x * W + b.
                let w = weights.weights();
                let mut y = tensor::matmul_with(&flat, w, threading.threads)?;
                debug_assert_eq!(y.shape().as_matrix().1, *out);
                tensor::add_bias_rows(&mut y, weights.bias())?;
                Ok(y)
            }
            LayerSpec::Activation(a) => {
                let mut out = input.clone();
                a.apply(&mut out);
                Ok(out)
            }
            LayerSpec::Lrn(p) => Ok(tensor::lrn_cross_channel(input, p)?),
            LayerSpec::Dropout => Ok(input.clone()),
            LayerSpec::Softmax => {
                let mut out = input.clone();
                tensor::softmax_rows(&mut out);
                Ok(out)
            }
        }
    }
}

/// Locally-connected forward pass: like a convolution but each output
/// location `(oc, oy, ox)` uses its own kernel slice.
fn forward_local(input: &Tensor, weights: &LayerWeights, p: &LocalParams) -> Result<Tensor> {
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(DnnError::BadLayer {
            layer: "local".into(),
            reason: format!("needs NCHW input, got {}", input.shape()),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let ksz = c * p.kernel * p.kernel;
    let expected = oh * ow * p.out_channels * ksz;
    if weights.weights().len() != expected || weights.bias().len() != oh * ow * p.out_channels {
        return Err(DnnError::BadLayer {
            layer: "local".into(),
            reason: format!(
                "weight volume {} / bias {} inconsistent with untied geometry {}",
                weights.weights().len(),
                weights.bias().len(),
                expected
            ),
        });
    }
    let mut out = Tensor::zeros(Shape::nchw(n, p.out_channels, oh, ow));
    let x = input.data();
    let wt = weights.weights().data();
    let bias = weights.bias();
    for img in 0..n {
        for oc in 0..p.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Kernel for this output location.
                    let loc = (oc * oh + oy) * ow + ox;
                    let kbase = loc * ksz;
                    let mut acc = bias[loc];
                    for ic in 0..c {
                        for ky in 0..p.kernel {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..p.kernel {
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xv = x[((img * c + ic) * h + iy as usize) * w + ix as usize];
                                let wv = wt[kbase + (ic * p.kernel + ky) * p.kernel + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out.data_mut()[((img * p.out_channels + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference_matches_alexnet_conv1() {
        let layer = LayerSpec::Conv(Conv2dParams::new(96, 11, 4, 0));
        let out = layer.output_shape(&Shape::nchw(1, 3, 227, 227)).unwrap();
        assert_eq!(out.dims(), &[1, 96, 55, 55]);
        assert_eq!(layer.param_count(&Shape::nchw(1, 3, 227, 227)), 34_944);
    }

    #[test]
    fn inner_product_flattens_input() {
        let layer = LayerSpec::InnerProduct { out: 10 };
        let out = layer.output_shape(&Shape::nchw(4, 2, 3, 3)).unwrap();
        assert_eq!(out.dims(), &[4, 10]);
        assert_eq!(layer.param_count(&Shape::nchw(4, 2, 3, 3)), 18 * 10 + 10);
    }

    #[test]
    fn local_param_count_is_untied() {
        // 2x2 input of 1 channel, 1x1 kernel, 2 out channels:
        // 4 locations x 2 channels x (1 weight + 1 bias) = 16.
        let p = LocalParams {
            out_channels: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let layer = LayerSpec::Local(p);
        assert_eq!(layer.param_count(&Shape::nchw(1, 1, 2, 2)), 16);
    }

    #[test]
    fn local_layer_with_unit_weights_equals_conv() {
        // With all weights = 1 and bias = 0, local == conv of all-ones.
        let p = LocalParams {
            out_channels: 1,
            kernel: 2,
            stride: 1,
            pad: 0,
        };
        let layer = LayerSpec::Local(p);
        let input = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| i as f32);
        let in_shape = input.shape().clone();
        let mut w = LayerWeights::init(&layer, &in_shape, 0);
        w.fill_for_test(1.0, 0.0);
        let out = layer.forward(&input, &w).unwrap();
        assert_eq!(out.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let input = Tensor::random_uniform(Shape::mat(3, 4), 1.0, 9);
        let out = LayerSpec::Dropout
            .forward(&input, &LayerWeights::none())
            .unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn activation_layers_preserve_shape() {
        let input = Tensor::random_uniform(Shape::nchw(2, 3, 4, 4), 2.0, 1);
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
            ActivationKind::HardTanh,
        ] {
            let out = LayerSpec::Activation(kind)
                .forward(&input, &LayerWeights::none())
                .unwrap();
            assert_eq!(out.shape(), input.shape());
        }
    }

    #[test]
    fn bad_geometry_is_rejected_at_shape_inference() {
        let layer = LayerSpec::Conv(Conv2dParams::new(8, 9, 1, 0));
        assert!(layer.output_shape(&Shape::nchw(1, 1, 4, 4)).is_err());
        let layer = LayerSpec::Conv(Conv2dParams {
            groups: 3,
            ..Conv2dParams::new(8, 3, 1, 0)
        });
        assert!(layer.output_shape(&Shape::nchw(1, 4, 8, 8)).is_err());
        assert!(LayerSpec::InnerProduct { out: 0 }
            .output_shape(&Shape::mat(1, 4))
            .is_err());
    }
}
