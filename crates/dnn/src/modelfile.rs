//! Binary model files: how pretrained networks are stored on disk and
//! loaded by a DjiNN service at initialization.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "DJNM" | version u8 | def_len u32 | netdef text (parser format)
//! | per parameterized layer: weight f32s, then bias f32s
//! ```
//!
//! The definition travels in the human-readable [`crate::parser`] format,
//! so a model file is self-describing: `head -c 400 model.djnm` shows the
//! architecture.

use std::io::{Read, Write};

use tensor::Tensor;

use crate::{DnnError, LayerWeights, Network, Result};

/// File magic.
pub const MAGIC: &[u8; 4] = b"DJNM";
/// Format version written by this implementation.
pub const VERSION: u8 = 1;
/// Upper bound on the embedded definition text.
const MAX_DEF_LEN: usize = 1 << 20;

fn io_err(e: std::io::Error) -> DnnError {
    DnnError::BadNetwork {
        reason: format!("model file i/o: {e}"),
    }
}

/// Writes a network to a model file. The writer may be `&mut`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save<W: Write>(network: &Network, mut w: W) -> Result<()> {
    let def_text = crate::parser::render_netdef(network.def());
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&[VERSION]).map_err(io_err)?;
    w.write_all(&(def_text.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(def_text.as_bytes()).map_err(io_err)?;
    for lw in network.weights() {
        if lw.is_none() {
            continue;
        }
        for &v in lw.weights().data() {
            w.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
        for &v in lw.bias() {
            w.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)
}

/// Reads a network from a model file. The reader may be `&mut`.
///
/// # Errors
///
/// Returns [`DnnError::BadNetwork`] for bad magic/version/lengths and
/// parse errors for a corrupt embedded definition.
pub fn load<R: Read>(mut r: R) -> Result<Network> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(DnnError::BadNetwork {
            reason: "not a DjiNN model file (bad magic)".into(),
        });
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version).map_err(io_err)?;
    if version[0] != VERSION {
        return Err(DnnError::BadNetwork {
            reason: format!("unsupported model file version {}", version[0]),
        });
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(io_err)?;
    let def_len = u32::from_le_bytes(len_bytes) as usize;
    if def_len > MAX_DEF_LEN {
        return Err(DnnError::BadNetwork {
            reason: format!("definition length {def_len} exceeds cap"),
        });
    }
    let mut def_bytes = vec![0u8; def_len];
    r.read_exact(&mut def_bytes).map_err(io_err)?;
    let def_text = String::from_utf8(def_bytes).map_err(|_| DnnError::BadNetwork {
        reason: "definition is not utf-8".into(),
    })?;
    let def = crate::parser::parse_netdef(&def_text)?;

    let shapes = def.layer_shapes(1)?;
    let mut weights = Vec::with_capacity(def.layers().len());
    let mut f32_buf = Vec::new();
    for (l, s) in def.layers().iter().zip(&shapes) {
        if !l.spec.has_params() {
            weights.push(LayerWeights::none());
            continue;
        }
        // Recover the canonical weight/bias shapes from a fresh init.
        let template = LayerWeights::init(&l.spec, s, 0);
        let wlen = template.weights().len();
        let blen = template.bias().len();
        f32_buf.clear();
        f32_buf.resize((wlen + blen) * 4, 0u8);
        r.read_exact(&mut f32_buf).map_err(io_err)?;
        let mut values = f32_buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        let wdata: Vec<f32> = values.by_ref().take(wlen).collect();
        let bias: Vec<f32> = values.collect();
        let wt = Tensor::from_vec(template.weights().shape().clone(), wdata)?;
        let mut lw = template;
        *lw.weights_mut() = wt;
        lw.bias_mut().copy_from_slice(&bias);
        weights.push(lw);
    }
    // Reject trailing garbage.
    let mut extra = [0u8; 1];
    if r.read(&mut extra).map_err(io_err)? != 0 {
        return Err(DnnError::BadNetwork {
            reason: "trailing bytes after model weights".into(),
        });
    }
    Network::with_weights(def, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{self, App};
    use tensor::Shape;

    #[test]
    fn roundtrip_preserves_network_exactly() {
        for app in [App::Dig, App::Pos] {
            let net = zoo::network(app).unwrap();
            let mut buf = Vec::new();
            save(&net, &mut buf).unwrap();
            let loaded = load(&buf[..]).unwrap();
            assert_eq!(loaded, net, "{app}");
        }
    }

    #[test]
    fn loaded_model_predicts_identically() {
        let net = zoo::network(App::Dig).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        let loaded = load(&buf[..]).unwrap();
        let input = Tensor::random_uniform(Shape::nchw(2, 1, 28, 28), 1.0, 3);
        assert_eq!(
            net.forward(&input).unwrap(),
            loaded.forward(&input).unwrap()
        );
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let net = zoo::network(App::Pos).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(load(&bad_magic[..]).is_err());

        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(load(&bad_version[..]).is_err());

        for cut in [5usize, 12, buf.len() / 2, buf.len() - 1] {
            assert!(load(&buf[..cut]).is_err(), "prefix {cut} loaded");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let net = zoo::network(App::Pos).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        buf.push(0xFF);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn file_is_self_describing() {
        let net = zoo::network(App::Pos).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        let head = String::from_utf8_lossy(&buf[9..120]);
        assert!(head.contains("name: senna-pos"), "{head}");
        assert!(head.contains("layer l1 fc out=450"), "{head}");
    }
}
