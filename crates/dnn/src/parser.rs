//! A prototxt-like text format for network definitions.
//!
//! DjiNN's flexibility claim — "supporting more applications simply
//! requires providing a pretrained neural network model" — needs a
//! configuration format that can describe a network without recompiling.
//! The grammar is line-oriented:
//!
//! ```text
//! name: tiny
//! input: 1 28 28          # channels height width (or a single feature dim)
//! layer conv1 conv out=10 kernel=5 stride=1 pad=0 groups=1
//! layer pool1 maxpool kernel=2 stride=2
//! layer ip1 fc out=10
//! layer act1 relu
//! layer prob softmax
//! ```
//!
//! `#` starts a comment; blank lines are ignored.

use std::collections::HashMap;

use tensor::{Conv2dParams, LrnParams, Pool2dParams, Shape};

use crate::{ActivationKind, DnnError, LayerDef, LayerSpec, LocalParams, NetDef, PoolKind, Result};

/// Parses a network definition from its text form.
///
/// # Errors
///
/// Returns [`DnnError::Parse`] with a 1-based line number for any syntax
/// error, and network-validation errors for semantic ones.
///
/// ```
/// let def = dnn::parser::parse_netdef("
///     name: mini
///     input: 4
///     layer fc1 fc out=2
///     layer prob softmax
/// ")?;
/// assert_eq!(def.depth(), 2);
/// # Ok::<(), dnn::DnnError>(())
/// ```
pub fn parse_netdef(text: &str) -> Result<NetDef> {
    let mut name: Option<String> = None;
    let mut input: Option<Shape> = None;
    let mut layers: Vec<LayerDef> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| DnnError::Parse {
            line: lineno,
            reason,
        };
        if let Some(rest) = line.strip_prefix("name:") {
            name = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("input:") {
            let dims: Vec<usize> = rest
                .split_whitespace()
                .map(|t| t.parse::<usize>())
                .collect::<std::result::Result<_, _>>()
                .map_err(|e| err(format!("bad input dims: {e}")))?;
            input = Some(match dims.as_slice() {
                [features] => Shape::mat(1, *features),
                [c, h, w] => Shape::nchw(1, *c, *h, *w),
                other => {
                    return Err(err(format!(
                        "input expects 1 (features) or 3 (c h w) dims, got {}",
                        other.len()
                    )))
                }
            });
        } else if let Some(rest) = line.strip_prefix("layer ") {
            layers.push(parse_layer(rest, lineno)?);
        } else {
            return Err(err(format!("unrecognized directive `{line}`")));
        }
    }

    let name = name.ok_or(DnnError::Parse {
        line: 0,
        reason: "missing `name:` directive".into(),
    })?;
    let input = input.ok_or(DnnError::Parse {
        line: 0,
        reason: "missing `input:` directive".into(),
    })?;
    NetDef::new(name, input, layers)
}

fn parse_layer(rest: &str, lineno: usize) -> Result<LayerDef> {
    let err = |reason: String| DnnError::Parse {
        line: lineno,
        reason,
    };
    let mut tokens = rest.split_whitespace();
    let lname = tokens
        .next()
        .ok_or_else(|| err("layer needs a name".into()))?;
    let kind = tokens
        .next()
        .ok_or_else(|| err(format!("layer `{lname}` needs a kind")))?;
    let mut kv: HashMap<&str, usize> = HashMap::new();
    for tok in tokens {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, got `{tok}`")))?;
        let v = v
            .parse::<usize>()
            .map_err(|e| err(format!("bad value for `{k}`: {e}")))?;
        kv.insert(k, v);
    }
    let get = |k: &str| -> Result<usize> {
        kv.get(k)
            .copied()
            .ok_or_else(|| err(format!("layer `{lname}` ({kind}) missing `{k}=`")))
    };
    let opt = |k: &str, default: usize| kv.get(k).copied().unwrap_or(default);

    let spec = match kind {
        "conv" => LayerSpec::Conv(Conv2dParams {
            out_channels: get("out")?,
            kernel: get("kernel")?,
            stride: opt("stride", 1),
            pad: opt("pad", 0),
            groups: opt("groups", 1),
        }),
        "local" => LayerSpec::Local(LocalParams {
            out_channels: get("out")?,
            kernel: get("kernel")?,
            stride: opt("stride", 1),
            pad: opt("pad", 0),
        }),
        "maxpool" | "avgpool" => {
            let p = Pool2dParams::new(get("kernel")?, opt("stride", 1), opt("pad", 0));
            let kind = if kind == "maxpool" {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            LayerSpec::Pool(kind, p)
        }
        "fc" => LayerSpec::InnerProduct { out: get("out")? },
        "relu" => LayerSpec::Activation(ActivationKind::Relu),
        "tanh" => LayerSpec::Activation(ActivationKind::Tanh),
        "sigmoid" => LayerSpec::Activation(ActivationKind::Sigmoid),
        "hardtanh" => LayerSpec::Activation(ActivationKind::HardTanh),
        "lrn" => LayerSpec::Lrn(LrnParams {
            local_size: opt("size", 5),
            ..LrnParams::default()
        }),
        "dropout" => LayerSpec::Dropout,
        "softmax" => LayerSpec::Softmax,
        other => return Err(err(format!("unknown layer kind `{other}`"))),
    };
    Ok(LayerDef {
        name: lname.to_string(),
        spec,
    })
}

/// Renders a definition back to the text format; `parse_netdef` of the
/// output reproduces the definition (round-trip property, tested).
pub fn render_netdef(def: &NetDef) -> String {
    let mut out = String::new();
    out.push_str(&format!("name: {}\n", def.name()));
    let dims = def.input_shape().dims();
    match dims {
        [_, f] => out.push_str(&format!("input: {f}\n")),
        [_, c, h, w] => out.push_str(&format!("input: {c} {h} {w}\n")),
        _ => out.push_str("input: 1\n"),
    }
    for l in def.layers() {
        out.push_str(&format!("layer {} {}", l.name, l.spec.kind_name()));
        match &l.spec {
            LayerSpec::Conv(p) => out.push_str(&format!(
                " out={} kernel={} stride={} pad={} groups={}",
                p.out_channels, p.kernel, p.stride, p.pad, p.groups
            )),
            LayerSpec::Local(p) => out.push_str(&format!(
                " out={} kernel={} stride={} pad={}",
                p.out_channels, p.kernel, p.stride, p.pad
            )),
            LayerSpec::Pool(_, p) => out.push_str(&format!(
                " kernel={} stride={} pad={}",
                p.kernel, p.stride, p.pad
            )),
            LayerSpec::InnerProduct { out: o } => out.push_str(&format!(" out={o}")),
            LayerSpec::Lrn(p) => out.push_str(&format!(" size={}", p.local_size)),
            _ => {}
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn parses_minimal_network() {
        let def =
            parse_netdef("name: mini\ninput: 8\nlayer fc1 fc out=4\nlayer prob softmax\n").unwrap();
        assert_eq!(def.name(), "mini");
        assert_eq!(def.depth(), 2);
        assert_eq!(def.output_shape(1).unwrap().dims(), &[1, 4]);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let def =
            parse_netdef("# a tagger\nname: t\n\ninput: 4  # features\nlayer fc fc out=2 # out\n")
                .unwrap();
        assert_eq!(def.depth(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_netdef("name: x\ninput: 4\nlayer a wat\n").unwrap_err();
        match e {
            DnnError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn missing_required_key_is_reported() {
        let e = parse_netdef("name: x\ninput: 4\nlayer a fc\n").unwrap_err();
        assert!(matches!(e, DnnError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn missing_directives_are_reported() {
        assert!(parse_netdef("input: 4\nlayer a fc out=1\n").is_err());
        assert!(parse_netdef("name: x\nlayer a fc out=1\n").is_err());
    }

    #[test]
    fn zoo_networks_roundtrip() {
        for app in zoo::App::ALL {
            let def = zoo::netdef(app);
            let text = render_netdef(&def);
            let reparsed = parse_netdef(&text).unwrap();
            assert_eq!(reparsed, def, "{app} failed text round-trip");
        }
    }
}
