//! Weight storage and initialization.

use serde::{Deserialize, Serialize};
use tensor::{Shape, Tensor};

use crate::LayerSpec;

/// The learned parameters of one layer: a weight tensor and a bias vector.
///
/// Parameter-free layers use [`LayerWeights::none`], which owns a 1-element
/// placeholder (shapes cannot be empty) and an empty bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    weights: Tensor,
    bias: Vec<f32>,
    empty: bool,
}

impl LayerWeights {
    /// Placeholder for parameter-free layers.
    pub fn none() -> Self {
        LayerWeights {
            weights: Tensor::zeros(Shape::vec(1)),
            bias: Vec::new(),
            empty: true,
        }
    }

    /// Initializes weights for `layer` given its input shape, drawing from a
    /// deterministic uniform distribution scaled by fan-in (a simplified
    /// Xavier init — sufficient because only the architecture, not the
    /// values, matters for the paper's performance results).
    pub fn init(layer: &LayerSpec, input: &Shape, seed: u64) -> Self {
        match layer {
            LayerSpec::Conv(p) => {
                let cg = input.dims()[1] / p.groups;
                let fan_in = cg * p.kernel * p.kernel;
                let scale = (1.0 / fan_in as f32).sqrt();
                LayerWeights {
                    weights: Tensor::random_uniform(
                        Shape::nchw(p.out_channels, cg, p.kernel, p.kernel),
                        scale,
                        seed,
                    ),
                    bias: vec![0.0; p.out_channels],
                    empty: false,
                }
            }
            LayerSpec::Local(p) => {
                let d = input.dims();
                let oh = p.out_dim(d[2]).expect("validated by shape inference");
                let ow = p.out_dim(d[3]).expect("validated by shape inference");
                let ksz = d[1] * p.kernel * p.kernel;
                let fan_in = ksz;
                let scale = (1.0 / fan_in as f32).sqrt();
                let count = oh * ow * p.out_channels;
                LayerWeights {
                    weights: Tensor::random_uniform(Shape::mat(count, ksz), scale, seed),
                    bias: vec![0.0; count],
                    empty: false,
                }
            }
            LayerSpec::InnerProduct { out } => {
                let (_, cols) = input.as_matrix();
                let scale = (1.0 / cols as f32).sqrt();
                LayerWeights {
                    weights: Tensor::random_uniform(Shape::mat(cols, *out), scale, seed),
                    bias: vec![0.0; *out],
                    empty: false,
                }
            }
            _ => LayerWeights::none(),
        }
    }

    /// The weight tensor. For `Conv`: `(out, in/groups, k, k)`; for
    /// `InnerProduct`: `(in, out)`; for `Local`: `(locations*out, in*k*k)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector (empty for parameter-free layers).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the weight tensor (used by the trainer's update
    /// step; parameter-free placeholders should not be mutated).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// A zero-valued gradient/velocity buffer with this entry's shapes.
    pub fn zeros_like(&self) -> Self {
        LayerWeights {
            weights: Tensor::zeros(self.weights.shape().clone()),
            bias: vec![0.0; self.bias.len()],
            empty: self.empty,
        }
    }

    /// Whether this is the parameter-free placeholder.
    pub fn is_none(&self) -> bool {
        self.empty
    }

    /// Total number of stored parameters.
    pub fn param_count(&self) -> usize {
        if self.empty {
            0
        } else {
            self.weights.len() + self.bias.len()
        }
    }

    /// Bytes occupied by the stored parameters (4 per value).
    pub fn byte_len(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Overwrites weights and biases with constants; test helper.
    pub fn fill_for_test(&mut self, weight: f32, bias: f32) {
        self.weights.map_inplace(|_| weight);
        for b in &mut self.bias {
            *b = bias;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Conv2dParams;

    #[test]
    fn init_matches_layer_param_count() {
        let input = Shape::nchw(1, 3, 16, 16);
        let layers = [
            LayerSpec::Conv(Conv2dParams::new(8, 3, 1, 1)),
            LayerSpec::InnerProduct { out: 10 },
            LayerSpec::Local(crate::LocalParams {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 0,
            }),
        ];
        for layer in layers {
            let w = LayerWeights::init(&layer, &input, 1);
            assert_eq!(w.param_count(), layer.param_count(&input), "{layer:?}");
        }
    }

    #[test]
    fn none_has_zero_params() {
        let w = LayerWeights::none();
        assert!(w.is_none());
        assert_eq!(w.param_count(), 0);
        assert_eq!(w.byte_len(), 0);
    }

    #[test]
    fn init_is_deterministic() {
        let input = Shape::mat(1, 64);
        let layer = LayerSpec::InnerProduct { out: 16 };
        let a = LayerWeights::init(&layer, &input, 42);
        let b = LayerWeights::init(&layer, &input, 42);
        assert_eq!(a, b);
    }
}
