//! The model zoo: architecturally-exact definitions of the seven Tonic
//! Suite networks (paper Table 1) and their service-level metadata
//! (paper Table 3).
//!
//! Parameter counts are asserted against Table 1 in this module's tests;
//! where the paper's rounded figure differs from what the published
//! architecture actually implies (e.g. DeepFace retargeted to 83 PubFig
//! identities), the count lands within ±20% of the table value.

use serde::{Deserialize, Serialize};
use tensor::{Conv2dParams, LrnParams, Pool2dParams, Shape};

use crate::{ActivationKind, LayerDef, LayerSpec, LocalParams, NetDef, Network, PoolKind, Result};

/// The seven Tonic Suite applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum App {
    /// Image classification (AlexNet over ImageNet classes).
    Imc,
    /// Digit recognition (MNIST).
    Dig,
    /// Facial recognition (DeepFace over 83 PubFig identities).
    Face,
    /// Automatic speech recognition (Kaldi hybrid DNN).
    Asr,
    /// Part-of-speech tagging (SENNA).
    Pos,
    /// Word chunking (SENNA).
    Chk,
    /// Named-entity recognition (SENNA).
    Ner,
}

impl App {
    /// All seven applications, in the paper's presentation order.
    pub const ALL: [App; 7] = [
        App::Imc,
        App::Dig,
        App::Face,
        App::Asr,
        App::Pos,
        App::Chk,
        App::Ner,
    ];

    /// The three NLP applications.
    pub const NLP: [App; 3] = [App::Pos, App::Chk, App::Ner];

    /// The three image applications.
    pub const IMAGE: [App; 3] = [App::Imc, App::Dig, App::Face];

    /// Upper-case short name used throughout the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            App::Imc => "IMC",
            App::Dig => "DIG",
            App::Face => "FACE",
            App::Asr => "ASR",
            App::Pos => "POS",
            App::Chk => "CHK",
            App::Ner => "NER",
        }
    }

    /// Parses the upper- or lower-case short name.
    pub fn from_name(s: &str) -> Option<App> {
        App::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(s))
    }

    /// Whether this is one of the SENNA NLP tasks.
    pub fn is_nlp(&self) -> bool {
        Self::NLP.contains(self)
    }

    /// Whether this is one of the image tasks.
    pub fn is_image(&self) -> bool {
        Self::IMAGE.contains(self)
    }

    /// Service-level metadata (paper Table 3).
    pub fn service_meta(&self) -> ServiceMeta {
        match self {
            App::Imc => ServiceMeta {
                app: *self,
                input_desc: "1 image",
                input_kb: 604.0,
                output_desc: "1 classification",
                batch_size: 16,
                inputs_per_query: 1,
            },
            App::Dig => ServiceMeta {
                app: *self,
                input_desc: "100 images",
                input_kb: 307.0,
                output_desc: "100 classifications",
                batch_size: 16,
                inputs_per_query: 100,
            },
            App::Face => ServiceMeta {
                app: *self,
                input_desc: "1 image",
                input_kb: 271.0,
                output_desc: "1 classification",
                batch_size: 2,
                inputs_per_query: 1,
            },
            App::Asr => ServiceMeta {
                app: *self,
                input_desc: "548 speech feature vectors",
                input_kb: 4594.0,
                output_desc: "548 probability vectors",
                batch_size: 2,
                inputs_per_query: 548,
            },
            App::Pos => ServiceMeta {
                app: *self,
                input_desc: "28 word sentence",
                input_kb: 38.0,
                output_desc: "28 probability vectors",
                batch_size: 64,
                inputs_per_query: 28,
            },
            App::Chk => ServiceMeta {
                app: *self,
                input_desc: "28 word sentence",
                input_kb: 75.0,
                output_desc: "28 probability vectors",
                batch_size: 64,
                inputs_per_query: 28,
            },
            App::Ner => ServiceMeta {
                app: *self,
                input_desc: "28 word sentence",
                input_kb: 43.0,
                output_desc: "28 probability vectors",
                batch_size: 64,
                inputs_per_query: 28,
            },
        }
    }

    /// Table 1 "Parameters" column (paper's rounded figure).
    pub fn table1_params(&self) -> usize {
        match self {
            App::Imc => 60_000_000,
            App::Dig => 60_000,
            App::Face => 120_000_000,
            App::Asr => 30_000_000,
            App::Pos | App::Chk | App::Ner => 180_000,
        }
    }

    /// Table 1 network name.
    pub fn network_name(&self) -> &'static str {
        match self {
            App::Imc => "AlexNet",
            App::Dig => "MNIST",
            App::Face => "DeepFace",
            App::Asr => "Kaldi",
            App::Pos | App::Chk | App::Ner => "SENNA",
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Paper Table 3 metadata for one application's service interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMeta {
    /// Which application.
    pub app: App,
    /// Human description of the input payload.
    pub input_desc: &'static str,
    /// Input payload size in KB, as measured in the paper (includes
    /// serialization overhead; used as protocol ground truth for the
    /// bandwidth studies).
    pub input_kb: f64,
    /// Human description of the output payload.
    pub output_desc: &'static str,
    /// Batch size chosen in §5.1 (Table 3, last column).
    pub batch_size: usize,
    /// How many DNN inputs (images/frames/words) one query carries.
    pub inputs_per_query: usize,
}

impl ServiceMeta {
    /// Input payload in bytes.
    pub fn input_bytes(&self) -> f64 {
        self.input_kb * 1024.0
    }
}

fn conv(name: &str, out: usize, k: usize, s: usize, p: usize, groups: usize) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Conv(Conv2dParams {
            out_channels: out,
            kernel: k,
            stride: s,
            pad: p,
            groups,
        }),
    }
}

fn local(name: &str, out: usize, k: usize, s: usize) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Local(LocalParams {
            out_channels: out,
            kernel: k,
            stride: s,
            pad: 0,
        }),
    }
}

fn maxpool(name: &str, k: usize, s: usize) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Pool(PoolKind::Max, Pool2dParams::new(k, s, 0)),
    }
}

fn fc(name: &str, out: usize) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::InnerProduct { out },
    }
}

fn act(name: &str, kind: ActivationKind) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Activation(kind),
    }
}

fn lrn(name: &str) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Lrn(LrnParams::default()),
    }
}

fn dropout(name: &str) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Dropout,
    }
}

fn softmax(name: &str) -> LayerDef {
    LayerDef {
        name: name.into(),
        spec: LayerSpec::Softmax,
    }
}

/// AlexNet (Krizhevsky et al.) — 1000-class ImageNet classifier, ~61M
/// parameters, 22 layers counting activations/LRN/dropout as Caffe does.
pub fn alexnet() -> NetDef {
    NetDef::new(
        "alexnet",
        Shape::nchw(1, 3, 227, 227),
        vec![
            conv("conv1", 96, 11, 4, 0, 1),
            act("relu1", ActivationKind::Relu),
            lrn("norm1"),
            maxpool("pool1", 3, 2),
            conv("conv2", 256, 5, 1, 2, 2),
            act("relu2", ActivationKind::Relu),
            lrn("norm2"),
            maxpool("pool2", 3, 2),
            conv("conv3", 384, 3, 1, 1, 1),
            act("relu3", ActivationKind::Relu),
            conv("conv4", 384, 3, 1, 1, 2),
            act("relu4", ActivationKind::Relu),
            conv("conv5", 256, 3, 1, 1, 2),
            act("relu5", ActivationKind::Relu),
            maxpool("pool5", 3, 2),
            fc("fc6", 4096),
            act("relu6", ActivationKind::Relu),
            dropout("drop6"),
            fc("fc7", 4096),
            act("relu7", ActivationKind::Relu),
            dropout("drop7"),
            fc("fc8", 1000),
        ],
    )
    .expect("alexnet definition is statically valid")
}

/// MNIST digit recognizer — the compact 7-layer variant the paper cites
/// (~60K parameters).
pub fn mnist() -> NetDef {
    NetDef::new(
        "mnist",
        Shape::nchw(1, 1, 28, 28),
        vec![
            conv("conv1", 10, 5, 1, 0, 1),
            maxpool("pool1", 2, 2),
            conv("conv2", 20, 5, 1, 0, 1),
            maxpool("pool2", 2, 2),
            fc("ip1", 160),
            fc("ip2", 10),
            softmax("prob"),
        ],
    )
    .expect("mnist definition is statically valid")
}

/// DeepFace (Taigman et al.) retargeted to the paper's 83 PubFig83+LFW
/// identities — 8 layers, dominated by the untied locally-connected layers.
pub fn deepface() -> NetDef {
    NetDef::new(
        "deepface",
        Shape::nchw(1, 3, 152, 152),
        vec![
            conv("c1", 32, 11, 1, 0, 1),
            maxpool("m2", 3, 2),
            conv("c3", 16, 9, 1, 0, 1),
            local("l4", 16, 9, 1),
            local("l5", 16, 7, 2),
            local("l6", 16, 5, 1),
            fc("f7", 4096),
            fc("f8", 83),
        ],
    )
    .expect("deepface definition is statically valid")
}

/// Kaldi hybrid DNN acoustic model — 6 hidden tanh layers of 2048 units
/// over 440-dim spliced filterbank features, 3500 senone outputs;
/// 13 layers, ~29M parameters.
pub fn kaldi() -> NetDef {
    let mut layers = vec![fc("affine1", 2048), act("tanh1", ActivationKind::Tanh)];
    for i in 2..=6 {
        layers.push(fc(&format!("affine{i}"), 2048));
        layers.push(act(&format!("tanh{i}"), ActivationKind::Tanh));
    }
    layers.push(fc("affine7", 3500));
    NetDef::new("kaldi", Shape::mat(1, 440), layers).expect("kaldi definition is statically valid")
}

/// SENNA window-approach tagger: 7-word window × 50-dim embeddings → 450
/// hidden hard-tanh units → per-task tag scores. 3 layers, ~180K params.
///
/// `tags` selects the task-specific output size (POS 45, CHK 23, NER 9).
pub fn senna(name: &str, tags: usize) -> NetDef {
    NetDef::new(
        name,
        Shape::mat(1, 350),
        vec![
            fc("l1", 450),
            act("htanh1", ActivationKind::HardTanh),
            fc("l3", tags),
        ],
    )
    .expect("senna definition is statically valid")
}

/// Number of output tags for each SENNA task.
pub fn senna_tags(app: App) -> usize {
    match app {
        App::Pos => 45,
        App::Chk => 23,
        App::Ner => 9,
        _ => panic!("senna_tags called for non-NLP app {app}"),
    }
}

/// The network definition for an application.
pub fn netdef(app: App) -> NetDef {
    match app {
        App::Imc => alexnet(),
        App::Dig => mnist(),
        App::Face => deepface(),
        App::Asr => kaldi(),
        App::Pos => senna("senna-pos", senna_tags(App::Pos)),
        App::Chk => senna("senna-chk", senna_tags(App::Chk)),
        App::Ner => senna("senna-ner", senna_tags(App::Ner)),
    }
}

/// An executable network for an application, with deterministic weights.
///
/// # Errors
///
/// Propagates weight-initialization failures (none occur for the built-in
/// definitions).
pub fn network(app: App) -> Result<Network> {
    // Seed derives from the app so every process builds identical models —
    // the moral equivalent of all servers loading the same model file.
    let seed = 0xD1_44 + app as u64;
    Network::with_random_weights(netdef(app), seed)
}

/// A few-KB convolutional classifier shaped like [`mnist`] (conv → pool →
/// fc → fc → softmax) for fast integration tests: ~1.8K parameters, so a
/// forward pass costs microseconds and a full serving-stack test stays
/// well under a second.
pub fn tiny_mnist() -> NetDef {
    NetDef::new(
        "tiny-mnist",
        Shape::nchw(1, 1, 12, 12),
        vec![
            conv("conv1", 4, 3, 1, 0, 1),
            maxpool("pool1", 2, 2),
            fc("ip1", 16),
            fc("ip2", 10),
            softmax("prob"),
        ],
    )
    .expect("tiny-mnist definition is statically valid")
}

/// A few-KB SENNA-shaped tagger (fc → hard-tanh → fc) for fast
/// integration tests: ~1K parameters over a 30-dim input row.
pub fn tiny_senna() -> NetDef {
    NetDef::new(
        "tiny-senna",
        Shape::mat(1, 30),
        vec![
            fc("l1", 24),
            act("htanh1", ActivationKind::HardTanh),
            fc("l3", 9),
        ],
    )
    .expect("tiny-senna definition is statically valid")
}

/// A small autoregressive text-generation language model: next-token
/// scores over a 256-entry vocabulary from a one-hot current token.
/// Because the output row has the same width as the input row, the
/// serving engine can feed the argmax of each step straight back in as
/// the next one-hot input — the token-at-a-time decode loop behind the
/// streaming (`--stream`) workload. ~0.5M parameters.
pub fn textgen() -> NetDef {
    NetDef::new(
        "textgen",
        Shape::mat(1, 256),
        vec![
            fc("embed", 512),
            act("tanh1", ActivationKind::Tanh),
            fc("hidden", 512),
            act("tanh2", ActivationKind::Tanh),
            fc("logits", 256),
            softmax("prob"),
        ],
    )
    .expect("textgen definition is statically valid")
}

/// A sub-KB autoregressive LM shaped like [`textgen`] (vocab 16, one
/// hidden layer) for fast streaming integration tests: the output row
/// width equals the input row width so greedy decode can feed back, and
/// a full multi-token generation costs microseconds.
pub fn tiny_lm() -> NetDef {
    NetDef::new(
        "tiny-lm",
        Shape::mat(1, 16),
        vec![
            fc("embed", 24),
            act("htanh1", ActivationKind::HardTanh),
            fc("logits", 16),
            softmax("prob"),
        ],
    )
    .expect("tiny-lm definition is statically valid")
}

/// The tiny test zoo: miniature stand-ins for the served model shapes
/// (convolutional image net, fully-connected NLP net, autoregressive
/// LM), each a few KB. Serving-stack integration tests load these
/// instead of the real zoo so an end-to-end request costs microseconds
/// of compute, keeping the whole test deterministic and under a second.
pub fn tiny_test_zoo() -> Vec<NetDef> {
    vec![tiny_mnist(), tiny_senna(), tiny_lm()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: usize, target: usize, tol: f64) -> bool {
        let a = actual as f64;
        let t = target as f64;
        (a - t).abs() / t <= tol
    }

    #[test]
    fn table1_layer_counts() {
        assert_eq!(alexnet().depth(), 22);
        assert_eq!(mnist().depth(), 7);
        assert_eq!(deepface().depth(), 8);
        assert_eq!(kaldi().depth(), 13);
        assert_eq!(senna("pos", 45).depth(), 3);
    }

    #[test]
    fn table1_param_counts_within_20pct() {
        for app in App::ALL {
            let def = netdef(app);
            assert!(
                within(def.param_count(), app.table1_params(), 0.20),
                "{app}: {} vs Table 1 {}",
                def.param_count(),
                app.table1_params()
            );
        }
    }

    #[test]
    fn alexnet_param_count_exact() {
        // Published AlexNet total: ~60.97M.
        let n = alexnet().param_count();
        assert_eq!(n, 60_965_224);
    }

    #[test]
    fn output_sizes_match_task_classes() {
        assert_eq!(alexnet().output_shape(1).unwrap().dims(), &[1, 1000]);
        assert_eq!(mnist().output_shape(1).unwrap().dims(), &[1, 10]);
        assert_eq!(deepface().output_shape(1).unwrap().dims(), &[1, 83]);
        assert_eq!(kaldi().output_shape(1).unwrap().dims(), &[1, 3500]);
        assert_eq!(senna("pos", 45).output_shape(1).unwrap().dims(), &[1, 45]);
    }

    #[test]
    fn table3_batch_sizes() {
        assert_eq!(App::Imc.service_meta().batch_size, 16);
        assert_eq!(App::Dig.service_meta().batch_size, 16);
        assert_eq!(App::Face.service_meta().batch_size, 2);
        assert_eq!(App::Asr.service_meta().batch_size, 2);
        for app in App::NLP {
            assert_eq!(app.service_meta().batch_size, 64);
        }
    }

    #[test]
    fn app_name_roundtrip() {
        for app in App::ALL {
            assert_eq!(App::from_name(app.name()), Some(app));
            assert_eq!(App::from_name(&app.name().to_lowercase()), Some(app));
        }
        assert_eq!(App::from_name("nope"), None);
    }

    #[test]
    fn networks_are_deterministic_across_builds() {
        let a = network(App::Pos).unwrap();
        let b = network(App::Pos).unwrap();
        assert_eq!(a, b);
    }

    /// Issue acceptance criterion: for every Tonic model, the parallel
    /// forward paths (batch-sharded and intra-layer threaded) must agree
    /// with the serial forward within 1e-5.
    #[test]
    fn parallel_forward_matches_serial_for_every_model() {
        use tensor::Threading;
        for app in App::ALL {
            let net = network(app).unwrap();
            // Keep the vision batches small — AlexNet at batch 2 is
            // already ~3 GFLOP per pass on the test machine.
            let batch = match app {
                App::Imc | App::Face => 2,
                _ => 6,
            };
            let shape = net.def().input_shape().with_batch(batch);
            let input = tensor::Tensor::random_uniform(shape, 1.0, 0xC0 + app as u64);
            let serial = net.forward(&input).unwrap();
            let sharded = net.forward_sharded(&input, Threading::new(2)).unwrap();
            assert_eq!(serial.shape(), sharded.shape(), "{app}: sharded shape");
            assert!(
                serial.max_abs_diff(&sharded).unwrap() < 1e-5,
                "{app}: sharded forward diverged"
            );
            let threaded = net.forward_with(&input, Threading::new(2)).unwrap();
            assert!(
                serial.max_abs_diff(&threaded).unwrap() < 1e-5,
                "{app}: threaded forward diverged"
            );
        }
    }

    /// The tiny zoo exists so integration tests run in well under a
    /// second: every net must stay a few KB and still produce sane
    /// classifier-shaped output.
    #[test]
    fn tiny_test_zoo_is_actually_tiny() {
        let defs = tiny_test_zoo();
        assert_eq!(defs.len(), 3);
        for def in &defs {
            assert!(
                def.param_count() < 4_000,
                "{}: {} params is not tiny",
                def.name(),
                def.param_count()
            );
            let net = Network::with_random_weights(def.clone(), 7).unwrap();
            let input = tensor::Tensor::random_uniform(def.input_shape().with_batch(3), 1.0, 11);
            let out = net.forward(&input).unwrap();
            assert_eq!(out.shape().dims()[0], 3);
        }
        assert_eq!(tiny_mnist().output_shape(1).unwrap().dims(), &[1, 10]);
        assert_eq!(tiny_senna().output_shape(1).unwrap().dims(), &[1, 9]);
        assert_eq!(tiny_lm().output_shape(1).unwrap().dims(), &[1, 16]);
    }

    /// Autoregressive decode requires the LM output row to be the same
    /// width as its one-hot input row, at every batch size — otherwise
    /// the engine cannot feed a step's argmax back in as the next input.
    #[test]
    fn lm_output_width_matches_input_for_feedback() {
        for def in [textgen(), tiny_lm()] {
            let width = def.input_shape().dims()[1];
            assert_eq!(
                def.output_shape(1).unwrap().dims(),
                &[1, width],
                "{}: output row must match input row",
                def.name()
            );
        }
        assert!(textgen().param_count() < 1_000_000);
    }

    #[test]
    fn nlp_forward_smoke() {
        let net = network(App::Pos).unwrap();
        let input = tensor::Tensor::random_uniform(Shape::mat(28, 350), 1.0, 5);
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[28, 45]);
    }
}
