//! Max and average pooling over `NCHW` tensors.

use crate::{Result, Shape, Tensor, TensorError};

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Pool2dParams {
    /// Square window side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl Pool2dParams {
    /// Creates pooling parameters.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        Pool2dParams {
            kernel,
            stride,
            pad,
        }
    }

    /// Output spatial side length; Caffe uses ceiling division so partial
    /// windows at the bottom/right edge still produce an output.
    ///
    /// # Errors
    ///
    /// Returns an error if the window does not fit in the padded input.
    pub fn out_dim(&self, input: usize) -> Result<usize> {
        let padded = input + 2 * self.pad;
        if self.kernel == 0 || self.stride == 0 || padded < self.kernel {
            return Err(TensorError::InvalidParams {
                op: "pool2d",
                reason: format!(
                    "window {} stride {} does not fit input {} (+2*{})",
                    self.kernel, self.stride, input, self.pad
                ),
            });
        }
        Ok((padded - self.kernel).div_ceil(self.stride) + 1)
    }
}

fn pool2d(
    input: &Tensor,
    p: &Pool2dParams,
    init: f32,
    fold: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::InvalidParams {
            op: "pool2d",
            reason: format!("input must be NCHW, got {}", input.shape()),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let x = input.data();
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = init;
                    let mut count = 0usize;
                    for ky in 0..p.kernel {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..p.kernel {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc = fold(acc, x[base + iy as usize * w + ix as usize]);
                            count += 1;
                        }
                    }
                    out.data_mut()[((img * c + ch) * oh + oy) * ow + ox] = finish(acc, count);
                }
            }
        }
    }
    Ok(out)
}

/// Max-pooling: each output is the maximum over its window (ignoring the
/// zero padding, matching Caffe's behaviour).
///
/// # Errors
///
/// Returns an error if the input is not 4-D or the window geometry is invalid.
pub fn max_pool2d(input: &Tensor, p: &Pool2dParams) -> Result<Tensor> {
    pool2d(input, p, f32::NEG_INFINITY, f32::max, |acc, count| {
        if count == 0 {
            0.0
        } else {
            acc
        }
    })
}

/// Average pooling over the valid (non-padding) window elements.
///
/// # Errors
///
/// Returns an error if the input is not 4-D or the window geometry is invalid.
pub fn avg_pool2d(input: &Tensor, p: &Pool2dParams) -> Result<Tensor> {
    pool2d(
        input,
        p,
        0.0,
        |a, b| a + b,
        |acc, count| {
            if count == 0 {
                0.0
            } else {
                acc / count as f32
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn out_dim_uses_ceiling() {
        // AlexNet pool1: 55 -> 27 with k=3, s=2.
        assert_eq!(Pool2dParams::new(3, 2, 0).out_dim(55).unwrap(), 27);
        // Partial window: (5 - 2).ceil_div(2) + 1 = 3.
        assert_eq!(Pool2dParams::new(2, 2, 0).out_dim(5).unwrap(), 3);
    }

    #[test]
    fn max_pool_known_answer() {
        let input = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| i as f32);
        let out = max_pool2d(&input, &Pool2dParams::new(2, 2, 0)).unwrap();
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_known_answer() {
        let input = Tensor::from_fn(Shape::nchw(1, 1, 2, 2), |i| i as f32);
        let out = avg_pool2d(&input, &Pool2dParams::new(2, 2, 0)).unwrap();
        assert_eq!(out.data(), &[1.5]);
    }

    #[test]
    fn padding_is_ignored_by_max() {
        // Negative inputs with zero padding: max must come from the real
        // values, not the implicit zeros.
        let input = Tensor::filled(Shape::nchw(1, 1, 2, 2), -3.0);
        let out = max_pool2d(&input, &Pool2dParams::new(2, 1, 1)).unwrap();
        assert!(out.data().iter().all(|&v| v == -3.0));
    }

    #[test]
    fn rejects_non_nchw() {
        let input = Tensor::zeros(Shape::mat(4, 4));
        assert!(max_pool2d(&input, &Pool2dParams::new(2, 2, 0)).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn max_pool_dominates_avg_pool(
            hw in 2usize..8, k in 1usize..4, s in 1usize..3, seed in 0u64..100
        ) {
            prop_assume!(hw >= k);
            let p = Pool2dParams::new(k, s, 0);
            let input = Tensor::random_uniform(Shape::nchw(1, 2, hw, hw), 1.0, seed);
            let mx = max_pool2d(&input, &p).unwrap();
            let av = avg_pool2d(&input, &p).unwrap();
            for (m, a) in mx.data().iter().zip(av.data()) {
                prop_assert!(m >= a);
            }
        }

        #[test]
        fn pooling_output_within_input_range(hw in 2usize..8, seed in 0u64..100) {
            let input = Tensor::random_uniform(Shape::nchw(1, 1, hw, hw), 5.0, seed);
            let lo = input.data().iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = input.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let p = Pool2dParams::new(2.min(hw), 1, 0);
            let mx = max_pool2d(&input, &p).unwrap();
            for &v in mx.data() {
                prop_assert!(v >= lo && v <= hi);
            }
        }
    }
}
