//! Pointwise activations, softmax, bias addition and local response
//! normalization — the non-GEMM layers of the Tonic networks.

use crate::{Result, Tensor, TensorError};

/// Rectified linear unit, in place: `x = max(x, 0)`.
pub fn relu(t: &mut Tensor) {
    t.map_inplace(|v| v.max(0.0));
}

/// Hyperbolic tangent, in place. Used by the Kaldi ASR network.
pub fn tanh(t: &mut Tensor) {
    t.map_inplace(f32::tanh);
}

/// Logistic sigmoid, in place.
pub fn sigmoid(t: &mut Tensor) {
    t.map_inplace(|v| 1.0 / (1.0 + (-v).exp()));
}

/// Hard tanh (clamp to `[-1, 1]`), in place. SENNA's activation of choice.
pub fn hardtanh(t: &mut Tensor) {
    t.map_inplace(|v| v.clamp(-1.0, 1.0));
}

/// Adds `bias[j]` to column `j` of every row when the tensor is viewed as a
/// matrix. This is the bias term of an inner-product layer.
///
/// # Errors
///
/// Returns an error if `bias.len()` differs from the column count.
pub fn add_bias_rows(t: &mut Tensor, bias: &[f32]) -> Result<()> {
    let (rows, cols) = t.shape().as_matrix();
    if bias.len() != cols {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: vec![rows, cols],
            rhs: vec![bias.len()],
        });
    }
    for r in 0..rows {
        let row = &mut t.data_mut()[r * cols..(r + 1) * cols];
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
    Ok(())
}

/// Numerically-stable softmax over each row of the matrix view, in place.
/// This is the classifier layer that terminates every Tonic network.
pub fn softmax_rows(t: &mut Tensor) {
    let (rows, cols) = t.shape().as_matrix();
    for r in 0..rows {
        let row = &mut t.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Parameters for cross-channel local response normalization (AlexNet's
/// LRN layers).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LrnParams {
    /// Number of adjacent channels included in each normalization window.
    pub local_size: usize,
    /// Scaling coefficient.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Additive constant.
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        // AlexNet's published constants.
        LrnParams {
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

/// Cross-channel LRN over an `NCHW` tensor:
/// `y = x / (k + alpha/n * sum_{nearby channels} x^2)^beta`.
///
/// # Errors
///
/// Returns an error if the input is not 4-D or `local_size` is zero.
pub fn lrn_cross_channel(input: &Tensor, p: &LrnParams) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::InvalidParams {
            op: "lrn",
            reason: format!("input must be NCHW, got {}", input.shape()),
        });
    }
    if p.local_size == 0 {
        return Err(TensorError::InvalidParams {
            op: "lrn",
            reason: "local_size must be non-zero".into(),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let half = p.local_size / 2;
    let mut out = input.clone();
    let x = input.data();
    for img in 0..n {
        for ch in 0..c {
            let lo = ch.saturating_sub(half);
            let hi = (ch + half).min(c - 1);
            for y in 0..h {
                for xx in 0..w {
                    let mut sq = 0.0f32;
                    for nc in lo..=hi {
                        let v = x[((img * c + nc) * h + y) * w + xx];
                        sq += v * v;
                    }
                    let denom = (p.k + p.alpha / p.local_size as f32 * sq).powf(p.beta);
                    out.data_mut()[((img * c + ch) * h + y) * w + xx] /= denom;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::from_vec(Shape::vec(4), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        relu(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn hardtanh_clamps_both_sides() {
        let mut t = Tensor::from_vec(Shape::vec(4), vec![-3.0, -0.5, 0.5, 3.0]).unwrap();
        hardtanh(&mut t);
        assert_eq!(t.data(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut t = Tensor::zeros(Shape::vec(1));
        sigmoid(&mut t);
        assert!((t.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_argmax() {
        let mut t =
            Tensor::from_vec(Shape::mat(2, 3), vec![1.0, 5.0, 2.0, -1.0, -2.0, -3.0]).unwrap();
        let argmax_before = [t.row_argmax(0), t.row_argmax(1)];
        softmax_rows(&mut t);
        for r in 0..2 {
            let sum: f32 = t.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!([t.row_argmax(0), t.row_argmax(1)], argmax_before);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut t = Tensor::from_vec(Shape::mat(1, 2), vec![1000.0, 999.0]).unwrap();
        softmax_rows(&mut t);
        assert!(t.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bias_rows_adds_per_column() {
        let mut t = Tensor::zeros(Shape::mat(2, 3));
        add_bias_rows(&mut t, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(add_bias_rows(&mut t, &[1.0]).is_err());
    }

    #[test]
    fn lrn_shrinks_magnitudes() {
        let input = Tensor::filled(Shape::nchw(1, 8, 2, 2), 2.0);
        let out = lrn_cross_channel(&input, &LrnParams::default()).unwrap();
        // k = 2 > 1, so the denominator > 1 and outputs shrink.
        for (&o, &i) in out.data().iter().zip(input.data()) {
            assert!(o.abs() < i.abs());
            assert!(o > 0.0);
        }
    }

    #[test]
    fn lrn_rejects_bad_input() {
        let input = Tensor::zeros(Shape::mat(2, 2));
        assert!(lrn_cross_channel(&input, &LrnParams::default()).is_err());
        let nchw = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let bad = LrnParams {
            local_size: 0,
            ..LrnParams::default()
        };
        assert!(lrn_cross_channel(&nchw, &bad).is_err());
    }

    proptest! {
        #[test]
        fn softmax_outputs_are_probabilities(rows in 1usize..5, cols in 1usize..10, seed in 0u64..100) {
            let mut t = Tensor::random_uniform(Shape::mat(rows, cols), 10.0, seed);
            softmax_rows(&mut t);
            for r in 0..rows {
                let row = &t.data()[r * cols..(r + 1) * cols];
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }

        #[test]
        fn relu_is_idempotent(n in 1usize..64, seed in 0u64..100) {
            let mut t = Tensor::random_uniform(Shape::vec(n), 4.0, seed);
            relu(&mut t);
            let once = t.clone();
            relu(&mut t);
            prop_assert_eq!(once, t);
        }

        #[test]
        fn lrn_preserves_sign_and_shape(seed in 0u64..100) {
            let input = Tensor::random_uniform(Shape::nchw(2, 6, 3, 3), 2.0, seed);
            let out = lrn_cross_channel(&input, &LrnParams::default()).unwrap();
            prop_assert_eq!(out.shape(), input.shape());
            for (&o, &i) in out.data().iter().zip(input.data()) {
                prop_assert!(o.signum() == i.signum() || i == 0.0);
            }
        }
    }
}
