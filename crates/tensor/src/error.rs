use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate returns `Result<T, TensorError>`.
/// The variants carry enough context to diagnose shape mismatches without a
/// debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the buffer.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Left-hand shape dims.
        lhs: Vec<usize>,
        /// Right-hand shape dims.
        rhs: Vec<usize>,
    },
    /// A shape with zero dimensions or a zero-sized dimension was supplied
    /// where a non-empty tensor is required.
    EmptyShape,
    /// The operation's parameters are inconsistent with the input shape
    /// (e.g. a kernel larger than the padded input).
    InvalidParams {
        /// Which operation rejected its parameters.
        op: &'static str,
        /// Why the parameters were rejected.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::EmptyShape => {
                write!(f, "empty shape where a non-empty tensor is required")
            }
            TensorError::InvalidParams { op, reason } => {
                write!(f, "invalid parameters for {op}: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
