use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TensorError;

/// The extent of a tensor along each axis, in row-major (C) order.
///
/// Tonic networks use at most 4-D tensors in `NCHW` layout (batch, channels,
/// height, width); fully-connected layers use 2-D `(rows, cols)` matrices.
/// `Shape` supports 1- to 4-D.
///
/// ```
/// use tensor::Shape;
/// let s = Shape::nchw(16, 3, 227, 227);
/// assert_eq!(s.volume(), 16 * 3 * 227 * 227);
/// assert_eq!(s.dims().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from arbitrary dimensions (1 to 4 of them).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty, has more than
    /// 4 axes, or any axis is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        Ok(Shape {
            dims: dims.to_vec(),
        })
    }

    /// A 1-D shape of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn vec(n: usize) -> Self {
        Shape::new(&[n]).expect("vector length must be non-zero")
    }

    /// A 2-D `(rows, cols)` matrix shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mat(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols]).expect("matrix dims must be non-zero")
    }

    /// A 4-D `NCHW` shape (batch, channels, height, width).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(&[n, c, h, w]).expect("nchw dims must be non-zero")
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides for each axis, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Interprets the shape as a matrix: the first axis becomes the row
    /// count and all remaining axes are flattened into the column count.
    ///
    /// This mirrors how Caffe flattens a `NCHW` blob before an inner-product
    /// layer: `(N, C*H*W)`.
    pub fn as_matrix(&self) -> (usize, usize) {
        let rows = self.dims[0];
        let cols: usize = self.dims[1..].iter().product::<usize>().max(1);
        (rows, cols)
    }

    /// Batch dimension (first axis).
    pub fn batch(&self) -> usize {
        self.dims[0]
    }

    /// Returns a copy of this shape with the batch (first) axis replaced.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(&self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        let mut dims = self.dims.clone();
        dims[0] = batch;
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Self {
        Shape::mat(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_and_zero() {
        assert_eq!(Shape::new(&[]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[3, 0]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[1, 2, 3, 4, 5]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn volume_and_strides() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn as_matrix_flattens_trailing_axes() {
        assert_eq!(Shape::nchw(8, 3, 2, 2).as_matrix(), (8, 12));
        assert_eq!(Shape::mat(4, 7).as_matrix(), (4, 7));
        assert_eq!(Shape::vec(9).as_matrix(), (9, 1));
    }

    #[test]
    fn with_batch_replaces_first_axis() {
        let s = Shape::nchw(1, 3, 8, 8).with_batch(32);
        assert_eq!(s.dims(), &[32, 3, 8, 8]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::nchw(1, 3, 8, 8).to_string(), "(1x3x8x8)");
    }
}
