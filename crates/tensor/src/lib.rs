//! Dense tensor math substrate for the DjiNN reproduction.
//!
//! This crate is the stand-in for the ATLAS/OpenBLAS layer the paper's CPU
//! baseline uses: a small, self-contained library of dense `f32` tensor
//! operations — blocked and parallel SGEMM, im2col-based convolution,
//! pooling, and the pointwise activations needed by the Tonic networks.
//!
//! # Quickstart
//!
//! ```
//! use tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.])?;
//! let c = tensor::matmul(&a, &b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.data()[0], 58.0);
//! # Ok::<(), tensor::TensorError>(())
//! ```

mod conv;
mod error;
mod gemm;
mod ops;
mod pool;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;
mod threading;

pub use conv::{col2im, conv2d, conv2d_direct, conv2d_with, im2col, Conv2dParams};
pub use error::TensorError;
pub use gemm::{gemm_blocked, gemm_naive, matmul, matmul_with, sgemm, transpose, GemmOptions};
pub use ops::{
    add_bias_rows, hardtanh, lrn_cross_channel, relu, sigmoid, softmax_rows, tanh, LrnParams,
};
pub use pool::{avg_pool2d, max_pool2d, Pool2dParams};
pub use shape::Shape;
pub use tensor::Tensor;
pub use threading::{partition, Threading};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
