//! 2-D convolution via im2col + GEMM, plus a direct reference kernel.
//!
//! This mirrors Caffe's convolution strategy (and the reason convolutional
//! layers become large matrix multiplications on the GPU, which is what the
//! paper's batching optimization exploits): the input is unrolled into a
//! column matrix and the kernel bank becomes the left GEMM operand.

use crate::{partition, sgemm, GemmOptions, Result, Shape, Tensor, TensorError, Threading};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conv2dParams {
    /// Number of output feature maps.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
    /// Channel groups (AlexNet uses 2); input and output channels are split
    /// evenly across groups and groups do not mix.
    pub groups: usize,
}

impl Conv2dParams {
    /// Convenience constructor for an ungrouped convolution.
    pub fn new(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Conv2dParams {
            out_channels,
            kernel,
            stride,
            pad,
            groups: 1,
        }
    }

    /// Output spatial side length for an input side of `input` pixels.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit in the padded input.
    pub fn out_dim(&self, input: usize) -> Result<usize> {
        let padded = input + 2 * self.pad;
        if self.kernel == 0 || self.stride == 0 || padded < self.kernel {
            return Err(TensorError::InvalidParams {
                op: "conv2d",
                reason: format!(
                    "kernel {} stride {} does not fit input {} (+2*{} pad)",
                    self.kernel, self.stride, input, self.pad
                ),
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// Unrolls an `NCHW` input into the im2col matrix for one image.
///
/// The produced matrix has `c*kernel*kernel` rows and `out_h*out_w` columns;
/// element `(ckk, xy)` is the input pixel that kernel position `ckk` covers
/// at output location `xy` (zero where the kernel overhangs the padding).
///
/// # Errors
///
/// Returns an error if `image` is not a single 3-D image (`1xCxHxW`) or the
/// geometry is inconsistent.
pub fn im2col(image: &Tensor, c: usize, h: usize, w: usize, p: &Conv2dParams) -> Result<Tensor> {
    if image.len() != c * h * w {
        return Err(TensorError::InvalidParams {
            op: "im2col",
            reason: format!("image len {} != {}x{}x{}", image.len(), c, h, w),
        });
    }
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let rows = c * p.kernel * p.kernel;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = image.data();
    for ch in 0..c {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (ch * p.kernel + ky) * p.kernel + kx;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[row * cols + oy * ow + ox] =
                            data[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::mat(rows, cols), out)
}

/// Resolved geometry shared by every image of one [`conv2d`] call.
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    cg: usize,
    og: usize,
    /// GEMM inner dimension per group (`cg * k * k`).
    wk: usize,
    per_in: usize,
    per_out: usize,
}

/// 2-D convolution of an `NCHW` input with a weight bank, sequentially.
///
/// `weights` must have shape `(out_channels, in_channels/groups, k, k)` and
/// `bias` length `out_channels`. Returns an `NCHW` output.
///
/// # Errors
///
/// Returns an error on any geometry inconsistency.
pub fn conv2d(input: &Tensor, weights: &Tensor, bias: &[f32], p: &Conv2dParams) -> Result<Tensor> {
    conv2d_with(input, weights, bias, p, Threading::SINGLE)
}

/// [`conv2d`] with a worker-thread budget.
///
/// The batch dimension is split into contiguous image ranges, one scoped
/// worker per range; each image is an independent im2col + GEMM, so the
/// result is bitwise identical to the sequential path. Any budget left
/// over after the batch split (e.g. a batch of one on a multi-core
/// machine) flows into the per-image GEMM, which then parallelizes over
/// output-channel row strips instead.
///
/// # Errors
///
/// Returns an error on any geometry inconsistency.
pub fn conv2d_with(
    input: &Tensor,
    weights: &Tensor,
    bias: &[f32],
    p: &Conv2dParams,
    threading: Threading,
) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::InvalidParams {
            op: "conv2d",
            reason: format!("input must be NCHW, got {}", input.shape()),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c % p.groups != 0 || !p.out_channels.is_multiple_of(p.groups) {
        return Err(TensorError::InvalidParams {
            op: "conv2d",
            reason: format!(
                "channels {} / out {} not divisible by groups {}",
                c, p.out_channels, p.groups
            ),
        });
    }
    let cg = c / p.groups;
    let og = p.out_channels / p.groups;
    if weights.len() != p.out_channels * cg * p.kernel * p.kernel {
        return Err(TensorError::InvalidParams {
            op: "conv2d",
            reason: format!(
                "weight volume {} != {}x{}x{}x{}",
                weights.len(),
                p.out_channels,
                cg,
                p.kernel,
                p.kernel
            ),
        });
    }
    if bias.len() != p.out_channels {
        return Err(TensorError::InvalidParams {
            op: "conv2d",
            reason: format!("bias len {} != out_channels {}", bias.len(), p.out_channels),
        });
    }
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let geom = ConvGeom {
        h,
        w,
        oh,
        ow,
        cg,
        og,
        wk: cg * p.kernel * p.kernel,
        per_in: c * h * w,
        per_out: p.out_channels * oh * ow,
    };
    let mut out = Tensor::zeros(Shape::nchw(n, p.out_channels, oh, ow));

    let img_workers = threading.workers_for(n);
    let gemm_threads = (threading.threads / img_workers.max(1)).max(1);
    if img_workers <= 1 {
        conv_image_range(
            input.data(),
            weights.data(),
            bias,
            p,
            &geom,
            0..n,
            out.data_mut(),
            gemm_threads,
        )?;
        return Ok(out);
    }

    let ranges = partition(n, img_workers);
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest = out.data_mut();
        let (x, wt, geom_ref) = (input.data(), weights.data(), &geom);
        for &(img0, img1) in &ranges {
            let (chunk, tail) = rest.split_at_mut((img1 - img0) * geom.per_out);
            rest = tail;
            handles.push(scope.spawn(move || {
                conv_image_range(x, wt, bias, p, geom_ref, img0..img1, chunk, gemm_threads)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("conv2d worker panicked"))
            .collect::<Vec<Result<()>>>()
    });
    for r in results {
        r?;
    }
    Ok(out)
}

/// Convolves images `imgs.start..imgs.end`; `out` covers exactly those
/// images' output volumes.
#[allow(clippy::too_many_arguments)]
fn conv_image_range(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    p: &Conv2dParams,
    geom: &ConvGeom,
    imgs: std::ops::Range<usize>,
    out: &mut [f32],
    gemm_threads: usize,
) -> Result<()> {
    let ConvGeom {
        h,
        w,
        oh,
        ow,
        cg,
        og,
        wk,
        per_in,
        per_out,
    } = *geom;
    let group_params = Conv2dParams {
        out_channels: og,
        groups: 1,
        ..*p
    };
    let img0 = imgs.start;
    for img in imgs {
        for g in 0..p.groups {
            // Slice out this group's input channels as a standalone image.
            let img_slice = &input[img * per_in + g * cg * h * w..][..cg * h * w];
            let img_t = Tensor::from_vec(Shape::nchw(1, cg, h, w), img_slice.to_vec())?;
            let cols = im2col(&img_t, cg, h, w, &group_params)?;
            let w_slice = &weights[g * og * wk..(g + 1) * og * wk];
            let out_slice = &mut out[(img - img0) * per_out + g * og * oh * ow..][..og * oh * ow];
            sgemm(
                og,
                oh * ow,
                wk,
                1.0,
                w_slice,
                cols.data(),
                0.0,
                out_slice,
                GemmOptions::with_threads(gemm_threads),
            )?;
            for oc in 0..og {
                let bv = bias[g * og + oc];
                for v in &mut out_slice[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    Ok(())
}

/// The adjoint of [`im2col`]: scatters a column matrix back into image
/// space, summing contributions of overlapping kernel positions. This is
/// the core of the convolution *backward* pass (gradient w.r.t. the
/// input).
///
/// `cols` must be the `(c*k*k) x (oh*ow)` matrix layout produced by
/// [`im2col`] for an image of `c x h x w` under `p`.
///
/// # Errors
///
/// Returns an error if `cols` has the wrong volume for the geometry.
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, p: &Conv2dParams) -> Result<Tensor> {
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let rows = c * p.kernel * p.kernel;
    let ncols = oh * ow;
    if cols.len() != rows * ncols {
        return Err(TensorError::InvalidParams {
            op: "col2im",
            reason: format!("cols len {} != {}x{}", cols.len(), rows, ncols),
        });
    }
    let mut out = Tensor::zeros(Shape::nchw(1, c, h, w));
    let data = cols.data();
    let img = out.data_mut();
    for ch in 0..c {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let row = (ch * p.kernel + ky) * p.kernel + kx;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img[(ch * h + iy as usize) * w + ix as usize] +=
                            data[row * ncols + oy * ow + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Direct (sliding-window) convolution used as the correctness oracle for
/// [`conv2d`] in tests. O(n·c·k²·oh·ow) with no GEMM restructuring.
///
/// # Errors
///
/// Same geometry errors as [`conv2d`].
pub fn conv2d_direct(
    input: &Tensor,
    weights: &Tensor,
    bias: &[f32],
    p: &Conv2dParams,
) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(TensorError::InvalidParams {
            op: "conv2d_direct",
            reason: format!("input must be NCHW, got {}", input.shape()),
        });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let cg = c / p.groups;
    let og = p.out_channels / p.groups;
    let oh = p.out_dim(h)?;
    let ow = p.out_dim(w)?;
    let mut out = Tensor::zeros(Shape::nchw(n, p.out_channels, oh, ow));
    let x = input.data();
    let wt = weights.data();
    for img in 0..n {
        for oc in 0..p.out_channels {
            let g = oc / og;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..cg {
                        let in_ch = g * cg + ic;
                        for ky in 0..p.kernel {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..p.kernel {
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xv = x[((img * c + in_ch) * h + iy as usize) * w + ix as usize];
                                let wv = wt[((oc * cg + ic) * p.kernel + ky) * p.kernel + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out.data_mut()[((img * p.out_channels + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn out_dim_formula() {
        let p = Conv2dParams::new(8, 11, 4, 0);
        assert_eq!(p.out_dim(227).unwrap(), 55); // AlexNet conv1
        let p2 = Conv2dParams::new(8, 3, 1, 1);
        assert_eq!(p2.out_dim(13).unwrap(), 13); // same-padding
        assert!(Conv2dParams::new(1, 9, 1, 0).out_dim(4).is_err());
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1 and zero bias is the identity.
        let input = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| i as f32);
        let weights = Tensor::filled(Shape::nchw(1, 1, 1, 1), 1.0);
        let p = Conv2dParams::new(1, 1, 1, 0);
        let out = conv2d(&input, &weights, &[0.0], &p).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 2x2 kernel over a 3x3 ramp, stride 1, no pad:
        // windows sum to 8, 12, 20, 24.
        let input = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| i as f32);
        let weights = Tensor::filled(Shape::nchw(1, 1, 2, 2), 1.0);
        let p = Conv2dParams::new(1, 2, 1, 0);
        let out = conv2d(&input, &weights, &[0.0], &p).unwrap();
        assert_eq!(out.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let input = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let weights = Tensor::filled(Shape::nchw(2, 1, 1, 1), 1.0);
        let p = Conv2dParams::new(2, 1, 1, 0);
        let out = conv2d(&input, &weights, &[1.5, -2.0], &p).unwrap();
        assert_eq!(&out.data()[0..4], &[1.5; 4]);
        assert_eq!(&out.data()[4..8], &[-2.0; 4]);
    }

    #[test]
    fn grouped_conv_does_not_mix_groups() {
        // Two input channels, two groups, 1x1 unit kernels: each output
        // channel must equal its own input channel only.
        let input = Tensor::from_vec(
            Shape::nchw(1, 2, 1, 2),
            vec![1.0, 2.0, /* ch1 */ 10.0, 20.0],
        )
        .unwrap();
        let weights = Tensor::filled(Shape::nchw(2, 1, 1, 1), 1.0);
        let p = Conv2dParams {
            out_channels: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
            groups: 2,
        };
        let out = conv2d(&input, &weights, &[0.0, 0.0], &p).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn rejects_bad_geometry() {
        let input = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        let weights = Tensor::zeros(Shape::nchw(2, 3, 3, 3));
        let p = Conv2dParams::new(2, 3, 1, 0);
        assert!(conv2d(&input, &weights, &[0.0], &p).is_err()); // bias too short
        let bad_w = Tensor::zeros(Shape::nchw(2, 2, 3, 3));
        assert!(conv2d(&input, &bad_w, &[0.0, 0.0], &p).is_err()); // weight volume
    }

    #[test]
    fn threaded_conv_is_bitwise_equal_to_sequential() {
        // Batch of 5 with 2 groups: exercises uneven image splits and the
        // leftover-budget path (7 threads over 5 images).
        let p = Conv2dParams {
            out_channels: 6,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 2,
        };
        let input = Tensor::random_uniform(Shape::nchw(5, 4, 9, 9), 1.0, 21);
        let weights = Tensor::random_uniform(Shape::nchw(6, 2, 3, 3), 1.0, 22);
        let bias = vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
        let serial = conv2d(&input, &weights, &bias, &p).unwrap();
        for threads in [2usize, 4, 7] {
            let par = conv2d_with(&input, &weights, &bias, &p, Threading::new(threads)).unwrap();
            assert_eq!(serial.data(), par.data(), "threads={threads}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining
        // property of the backward operator.
        let p = Conv2dParams::new(1, 3, 2, 1);
        let (c, h, w) = (2usize, 5usize, 6usize);
        let x = Tensor::random_uniform(Shape::nchw(1, c, h, w), 1.0, 11);
        let cols_shape_rows = c * 9;
        let oh = p.out_dim(h).unwrap();
        let ow = p.out_dim(w).unwrap();
        let cmat = Tensor::random_uniform(Shape::mat(cols_shape_rows, oh * ow), 1.0, 12);
        let ax = im2col(&x, c, h, w, &p).unwrap();
        let aty = col2im(&cmat, c, h, w, &p).unwrap();
        let lhs: f32 = ax.data().iter().zip(cmat.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn gemm_conv_matches_direct(
            n in 1usize..3,
            c in 1usize..4,
            hw in 4usize..10,
            oc in 1usize..5,
            k in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u64..100,
        ) {
            prop_assume!(hw + 2 * pad >= k);
            let p = Conv2dParams { out_channels: oc, kernel: k, stride, pad, groups: 1 };
            let input = Tensor::random_uniform(Shape::nchw(n, c, hw, hw), 1.0, seed);
            let weights = Tensor::random_uniform(Shape::nchw(oc, c, k, k), 1.0, seed + 1);
            let bias: Vec<f32> = (0..oc).map(|i| i as f32 * 0.1).collect();
            let fast = conv2d(&input, &weights, &bias, &p).unwrap();
            let slow = conv2d_direct(&input, &weights, &bias, &p).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
        }

        #[test]
        fn grouped_matches_direct(
            hw in 4usize..8,
            seed in 0u64..50,
        ) {
            // 4 input channels, 2 groups, 6 output channels.
            let p = Conv2dParams { out_channels: 6, kernel: 3, stride: 1, pad: 1, groups: 2 };
            let input = Tensor::random_uniform(Shape::nchw(2, 4, hw, hw), 1.0, seed);
            let weights = Tensor::random_uniform(Shape::nchw(6, 2, 3, 3), 1.0, seed + 5);
            let bias = vec![0.25; 6];
            let fast = conv2d(&input, &weights, &bias, &p).unwrap();
            let slow = conv2d_direct(&input, &weights, &bias, &p).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
        }
    }
}
