//! Thread-count configuration shared by the parallel kernels.
//!
//! Every parallel code path in this workspace — the packed GEMM driver,
//! the batched convolution, and the sharded network forward — takes its
//! worker count from a [`Threading`] value so the whole stack can be
//! tuned from one `--threads` flag. Parallelism here is always scoped
//! (`std::thread::scope`) over disjoint output slices, so results are
//! bitwise identical to the sequential path regardless of thread count.

/// Worker-thread budget for a parallel kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threading {
    /// Number of worker threads; `1` means run sequentially on the
    /// calling thread.
    pub threads: usize,
}

impl Threading {
    /// Sequential execution on the calling thread.
    pub const SINGLE: Threading = Threading { threads: 1 };

    /// A budget of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Threading {
            threads: threads.max(1),
        }
    }

    /// Whether more than one worker is available.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Workers to actually launch for `items` independent units of work:
    /// never more threads than units, never zero.
    pub fn workers_for(&self, items: usize) -> usize {
        self.threads.max(1).min(items.max(1))
    }

    /// The smaller of two budgets — how a configured budget is capped by
    /// an externally granted one (e.g. a device-scheduler lease) without
    /// ever exceeding either.
    #[must_use]
    pub fn min(self, other: Threading) -> Threading {
        Threading::new(self.threads.min(other.threads))
    }
}

impl Default for Threading {
    fn default() -> Self {
        Threading::SINGLE
    }
}

/// Splits `items` units of work into at most `workers` contiguous ranges
/// of near-equal size. Returns `(start, end)` pairs covering `0..items`.
pub fn partition(items: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1).min(items.max(1));
    let per = items.div_ceil(workers);
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    while start < items {
        let end = (start + per).min(items);
        out.push((start, end));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_never_exceed_items_or_drop_to_zero() {
        assert_eq!(Threading::new(8).workers_for(3), 3);
        assert_eq!(Threading::new(2).workers_for(100), 2);
        assert_eq!(Threading::new(0).workers_for(0), 1);
        assert_eq!(Threading::SINGLE.workers_for(64), 1);
        assert!(!Threading::default().is_parallel());
        assert!(Threading::new(4).is_parallel());
    }

    #[test]
    fn min_caps_a_budget_without_dropping_to_zero() {
        assert_eq!(Threading::new(8).min(Threading::new(3)).threads, 3);
        assert_eq!(Threading::new(2).min(Threading::new(5)).threads, 2);
        assert_eq!(Threading::new(4).min(Threading::new(0)).threads, 1);
        assert_eq!(Threading::SINGLE.min(Threading::new(16)), Threading::SINGLE);
    }

    #[test]
    fn partition_covers_everything_exactly_once() {
        for items in [0usize, 1, 5, 7, 16, 33] {
            for workers in [1usize, 2, 3, 4, 7, 40] {
                let ranges = partition(items, workers);
                assert!(ranges.len() <= workers.max(1));
                let mut next = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, next);
                    assert!(e > s);
                    next = e;
                }
                assert_eq!(next, items);
                if items == 0 {
                    assert!(ranges.is_empty());
                }
            }
        }
    }
}
