//! Single-precision general matrix multiply.
//!
//! Three tiers are provided, mirroring how a tuned BLAS is structured:
//! a naive triple loop (reference / correctness oracle), a cache-blocked
//! kernel, and a parallel driver that splits the row dimension across
//! threads with `crossbeam::scope`. The blocked kernel is what every DNN
//! forward pass in this workspace actually runs on.

use crate::{Result, Shape, Tensor, TensorError};

/// Row-dimension block size; sized so an `MC x KC` panel of A stays in L2.
const MC: usize = 64;
/// Inner (depth) block size; an `KC x NC` panel of B stays in L1/L2.
const KC: usize = 256;
/// Column-dimension block size.
const NC: usize = 256;

/// Tuning options for [`sgemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmOptions {
    /// Interpret `a` as transposed (`a` is stored `k x m`).
    pub trans_a: bool,
    /// Interpret `b` as transposed (`b` is stored `n x k`).
    pub trans_b: bool,
    /// Number of worker threads; 1 = sequential. Thread count is capped at
    /// the number of `MC` row blocks, so oversubscription is harmless.
    pub threads: usize,
}

impl Default for GemmOptions {
    fn default() -> Self {
        GemmOptions {
            trans_a: false,
            trans_b: false,
            threads: 1,
        }
    }
}

/// Computes `C = A * B` for 2-D tensors (flattening higher ranks as
/// matrices), using the blocked sequential kernel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// ```
/// use tensor::{Tensor, Shape};
/// let a = Tensor::filled(Shape::mat(4, 8), 1.0);
/// let b = Tensor::filled(Shape::mat(8, 2), 0.5);
/// let c = tensor::matmul(&a, &b)?;
/// assert_eq!(c.data()[0], 4.0);
/// # Ok::<(), tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(Shape::mat(m, n));
    sgemm(
        m,
        n,
        ka,
        1.0,
        a.data(),
        b.data(),
        0.0,
        c.data_mut(),
        GemmOptions::default(),
    )?;
    Ok(c)
}

/// `C = alpha * op(A) * op(B) + beta * C` over raw row-major slices.
///
/// `a` is `m x k` (or `k x m` when `opts.trans_a`), `b` is `k x n` (or
/// `n x k`), `c` is `m x n`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParams`] when slice lengths do not match
/// the stated dimensions or a dimension is zero.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    opts: GemmOptions,
) -> Result<()> {
    if m == 0 || n == 0 || k == 0 {
        return Err(TensorError::InvalidParams {
            op: "sgemm",
            reason: format!("zero dimension m={m} n={n} k={k}"),
        });
    }
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidParams {
            op: "sgemm",
            reason: format!(
                "slice lengths a={} b={} c={} inconsistent with m={m} n={n} k={k}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }

    // Normalize transposes up front: materializing the transposed operand
    // costs O(mk)/O(kn) but lets the hot loop always stream unit-stride.
    let a_owned;
    let a_rm: &[f32] = if opts.trans_a {
        a_owned = transpose(a, k, m);
        &a_owned
    } else {
        a
    };
    let b_owned;
    let b_rm: &[f32] = if opts.trans_b {
        b_owned = transpose(b, n, k);
        &b_owned
    } else {
        b
    };

    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    let threads = opts.threads.max(1).min(m.div_ceil(MC));
    if threads <= 1 {
        gemm_blocked(m, n, k, alpha, a_rm, b_rm, c);
        return Ok(());
    }

    // Parallel driver: split C's rows into contiguous strips, one per thread.
    let rows_per = m.div_ceil(threads);
    let mut row_chunks: Vec<&mut [f32]> = Vec::with_capacity(threads);
    let mut rest = c;
    let mut row = 0usize;
    while row < m {
        let take = rows_per.min(m - row);
        let (head, tail) = rest.split_at_mut(take * n);
        row_chunks.push(head);
        rest = tail;
        row += take;
    }
    crossbeam::scope(|scope| {
        let mut row0 = 0usize;
        for chunk in row_chunks {
            let rows = chunk.len() / n;
            let a_strip = &a_rm[row0 * k..(row0 + rows) * k];
            scope.spawn(move |_| {
                gemm_blocked(rows, n, k, alpha, a_strip, b_rm, chunk);
            });
            row0 += rows;
        }
    })
    .expect("gemm worker panicked");
    Ok(())
}

/// Reference implementation: naive triple loop. Used as a correctness
/// oracle in tests and benchmarks.
///
/// # Panics
///
/// Panics (via slice indexing) if the slice lengths are inconsistent with
/// the dimensions; use [`sgemm`] for validated input.
pub fn gemm_naive(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for i in 0..m {
        for p in 0..k {
            let av = alpha * a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Cache-blocked kernel: loops over `NC`/`KC`/`MC` panels with a 4-row
/// micro-kernel in the innermost position so the compiler can vectorize the
/// unit-stride B row accesses.
fn gemm_blocked(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                inner_block(ic, jc, pc, mb, nb, kb, n, k, alpha, a, b, c);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn inner_block(
    ic: usize,
    jc: usize,
    pc: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut i = ic;
    // 2-row micro-kernel: amortizes each streamed B row over two C rows.
    while i + 1 < ic + mb {
        for p in pc..pc + kb {
            let a0 = alpha * a[i * k + p];
            let a1 = alpha * a[(i + 1) * k + p];
            let brow = &b[p * n + jc..p * n + jc + nb];
            // Split borrows of the two C rows.
            let (c_head, c_tail) = c.split_at_mut((i + 1) * n);
            let c0 = &mut c_head[i * n + jc..i * n + jc + nb];
            let c1 = &mut c_tail[jc..jc + nb];
            for ((cv0, cv1), bv) in c0.iter_mut().zip(c1.iter_mut()).zip(brow) {
                *cv0 += a0 * bv;
                *cv1 += a1 * bv;
            }
        }
        i += 2;
    }
    if i < ic + mb {
        for p in pc..pc + kb {
            let av = alpha * a[i * k + p];
            let brow = &b[p * n + jc..p * n + jc + nb];
            let crow = &mut c[i * n + jc..i * n + jc + nb];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Out-of-place transpose of a row-major `rows x cols` matrix.
fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; src.len()];
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(4, 2));
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn sgemm_validates_slice_lengths() {
        let a = vec![0.0; 5];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        let err = sgemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c, GemmOptions::default()).unwrap_err();
        assert!(matches!(err, TensorError::InvalidParams { .. }));
    }

    #[test]
    fn beta_scales_existing_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        sgemm(2, 2, 2, 1.0, &a, &b, 0.5, &mut c, GemmOptions::default()).unwrap();
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn transposed_operands_match_naive() {
        let m = 5;
        let n = 7;
        let k = 3;
        let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 1).into_vec();
        let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 2).into_vec();
        let at = transpose(&a, m, k); // stored k x m
        let bt = transpose(&b, k, n); // stored n x k
        let mut want = vec![0.0; m * n];
        gemm_naive(m, n, k, 1.0, &a, &b, &mut want);

        let mut got = vec![0.0; m * n];
        sgemm(
            m,
            n,
            k,
            1.0,
            &at,
            &bt,
            0.0,
            &mut got,
            GemmOptions {
                trans_a: true,
                trans_b: true,
                threads: 1,
            },
        )
        .unwrap();
        assert!(approx_eq(&want, &got, 1e-4));
    }

    #[test]
    fn parallel_matches_sequential_on_large_matrix() {
        let m = 130; // crosses multiple MC blocks and uneven split
        let n = 70;
        let k = 300; // crosses KC
        let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 3).into_vec();
        let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 4).into_vec();
        let mut seq = vec![0.0; m * n];
        sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut seq, GemmOptions::default()).unwrap();
        let mut par = vec![0.0; m * n];
        sgemm(
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut par,
            GemmOptions {
                threads: 4,
                ..GemmOptions::default()
            },
        )
        .unwrap();
        assert!(approx_eq(&seq, &par, 1e-3));
    }

    proptest! {
        #[test]
        fn blocked_matches_naive(
            m in 1usize..24,
            n in 1usize..24,
            k in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
            let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 1).into_vec();
            let mut want = vec![0.0; m * n];
            gemm_naive(m, n, k, 1.0, &a, &b, &mut want);
            let mut got = vec![0.0; m * n];
            sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut got, GemmOptions::default()).unwrap();
            prop_assert!(approx_eq(&want, &got, 1e-3));
        }

        #[test]
        fn identity_is_neutral(mn in 1usize..20, seed in 0u64..100) {
            let a = Tensor::random_uniform(Shape::mat(mn, mn), 1.0, seed);
            let eye = Tensor::from_fn(Shape::mat(mn, mn), |i| {
                if i / mn == i % mn { 1.0 } else { 0.0 }
            });
            let c = matmul(&a, &eye).unwrap();
            prop_assert!(approx_eq(a.data(), c.data(), 1e-5));
        }

        #[test]
        fn matmul_is_linear_in_alpha(
            m in 1usize..10, n in 1usize..10, k in 1usize..10, seed in 0u64..50
        ) {
            let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
            let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 9).into_vec();
            let mut c1 = vec![0.0; m * n];
            sgemm(m, n, k, 2.0, &a, &b, 0.0, &mut c1, GemmOptions::default()).unwrap();
            let mut c2 = vec![0.0; m * n];
            sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut c2, GemmOptions::default()).unwrap();
            for v in c2.iter_mut() { *v *= 2.0; }
            prop_assert!(approx_eq(&c1, &c2, 1e-3));
        }
    }
}
