//! Single-precision general matrix multiply.
//!
//! Structured like a tuned BLAS, in three tiers: a naive triple loop
//! (correctness oracle), a cache-blocked kernel for small problems, and a
//! BLIS-style packed kernel for everything else — A is packed into
//! `MR`-row column-major micro-panels and B into `NR`-column row-major
//! micro-panels so the register-blocked `MR x NR` micro-kernel streams
//! both operands at unit stride. The parallel driver packs B once,
//! shares it read-only, and splits C's rows into `MR`-aligned strips
//! across `std::thread::scope` workers; each worker packs its own A
//! panels. Because every C row is computed in the same order regardless
//! of the split, parallel results are bitwise identical to sequential.

use crate::{Result, Shape, Tensor, TensorError};

/// Micro-kernel rows: each micro-tile updates `MR` rows of C.
const MR: usize = 4;
/// Micro-kernel columns: each micro-tile updates `NR` columns of C.
const NR: usize = 8;
/// Row-dimension block size; an `MC x KC` packed A block stays in L2.
const MC: usize = 64;
/// Depth block size; a `KC x NR` packed B micro-panel stays in L1.
const KC: usize = 256;
/// Column-dimension block size (must be a multiple of `NR`).
const NC: usize = 256;
/// Problems below this `m * n * k` volume skip packing: the O(mk + kn)
/// copy costs more than it saves on matrices this small.
const PACK_MIN_VOLUME: usize = 32 * 32 * 32;

/// Tuning options for [`sgemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmOptions {
    /// Interpret `a` as transposed (`a` is stored `k x m`).
    pub trans_a: bool,
    /// Interpret `b` as transposed (`b` is stored `n x k`).
    pub trans_b: bool,
    /// Number of worker threads; 1 = sequential. Thread count is capped at
    /// the number of `MR` row panels, so oversubscription is harmless.
    pub threads: usize,
}

impl Default for GemmOptions {
    fn default() -> Self {
        GemmOptions {
            trans_a: false,
            trans_b: false,
            threads: 1,
        }
    }
}

impl GemmOptions {
    /// Options running `threads` workers with untransposed operands.
    pub fn with_threads(threads: usize) -> Self {
        GemmOptions {
            threads: threads.max(1),
            ..GemmOptions::default()
        }
    }
}

/// Computes `C = A * B` for 2-D tensors (flattening higher ranks as
/// matrices), using the sequential kernel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// ```
/// use tensor::{Tensor, Shape};
/// let a = Tensor::filled(Shape::mat(4, 8), 1.0);
/// let b = Tensor::filled(Shape::mat(8, 2), 0.5);
/// let c = tensor::matmul(&a, &b)?;
/// assert_eq!(c.data()[0], 4.0);
/// # Ok::<(), tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(a, b, 1)
}

/// [`matmul`] with an explicit worker-thread budget.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
pub fn matmul_with(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor> {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(Shape::mat(m, n));
    sgemm(
        m,
        n,
        ka,
        1.0,
        a.data(),
        b.data(),
        0.0,
        c.data_mut(),
        GemmOptions::with_threads(threads),
    )?;
    Ok(c)
}

/// `C = alpha * op(A) * op(B) + beta * C` over raw row-major slices.
///
/// `a` is `m x k` (or `k x m` when `opts.trans_a`), `b` is `k x n` (or
/// `n x k`), `c` is `m x n`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParams`] when slice lengths do not match
/// the stated dimensions or a dimension is zero.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    opts: GemmOptions,
) -> Result<()> {
    if m == 0 || n == 0 || k == 0 {
        return Err(TensorError::InvalidParams {
            op: "sgemm",
            reason: format!("zero dimension m={m} n={n} k={k}"),
        });
    }
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidParams {
            op: "sgemm",
            reason: format!(
                "slice lengths a={} b={} c={} inconsistent with m={m} n={n} k={k}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }

    // Normalize transposes up front: materializing the transposed operand
    // costs O(mk)/O(kn) but lets the hot loop always stream unit-stride.
    let a_owned;
    let a_rm: &[f32] = if opts.trans_a {
        a_owned = transpose(a, k, m);
        &a_owned
    } else {
        a
    };
    let b_owned;
    let b_rm: &[f32] = if opts.trans_b {
        b_owned = transpose(b, n, k);
        &b_owned
    } else {
        b
    };

    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    if m * n * k < PACK_MIN_VOLUME {
        gemm_blocked(m, n, k, alpha, a_rm, b_rm, c);
        return Ok(());
    }
    let threads = opts.threads.max(1).min(m.div_ceil(MR));
    gemm_packed(m, n, k, alpha, a_rm, b_rm, c, threads);
    Ok(())
}

/// Reference implementation: naive triple loop. Used as a correctness
/// oracle in tests and benchmarks.
///
/// Every `a[i][p] * b[p][j]` product is accumulated unconditionally —
/// skipping zero A entries would be faster but silently drops NaN and
/// infinity propagation from B (`0.0 * NaN` is NaN, not zero), and an
/// oracle must match IEEE semantics exactly.
///
/// # Panics
///
/// Panics (via slice indexing) if the slice lengths are inconsistent with
/// the dimensions; use [`sgemm`] for validated input.
pub fn gemm_naive(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for p in 0..k {
            let av = alpha * a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Cache-blocked kernel for small problems: loops over `NC`/`KC`/`MC`
/// panels with a 2-row micro-kernel, no packing. Below
/// `PACK_MIN_VOLUME` the packing copies would dominate, so this is the
/// fast path for tiny matrices. Public (like [`gemm_naive`]) as an
/// ablation tier for the GEMM benchmarks; `C += alpha * A B` with no
/// transposes or beta scaling — use [`sgemm`] for real work.
pub fn gemm_blocked(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mb = MC.min(m - ic);
                inner_block(ic, jc, pc, mb, nb, kb, n, k, alpha, a, b, c);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn inner_block(
    ic: usize,
    jc: usize,
    pc: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut i = ic;
    // 2-row micro-kernel: amortizes each streamed B row over two C rows.
    while i + 1 < ic + mb {
        for p in pc..pc + kb {
            let a0 = alpha * a[i * k + p];
            let a1 = alpha * a[(i + 1) * k + p];
            let brow = &b[p * n + jc..p * n + jc + nb];
            // Split borrows of the two C rows.
            let (c_head, c_tail) = c.split_at_mut((i + 1) * n);
            let c0 = &mut c_head[i * n + jc..i * n + jc + nb];
            let c1 = &mut c_tail[jc..jc + nb];
            for ((cv0, cv1), bv) in c0.iter_mut().zip(c1.iter_mut()).zip(brow) {
                *cv0 += a0 * bv;
                *cv1 += a1 * bv;
            }
        }
        i += 2;
    }
    if i < ic + mb {
        for p in pc..pc + kb {
            let av = alpha * a[i * k + p];
            let brow = &b[p * n + jc..p * n + jc + nb];
            let crow = &mut c[i * n + jc..i * n + jc + nb];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed kernel
// ---------------------------------------------------------------------------

/// B packed for the micro-kernel: row-major `NR`-column micro-panels,
/// KC-blocked along the depth dimension, zero-padded to full panels.
///
/// Layout: the depth block starting at row `pc` (of height `kb`) occupies
/// `kb * padded_n` floats starting at `pc * padded_n`; within it, column
/// panel `jp` is `kb * NR` contiguous floats, depth-major (`NR` values of
/// row `pc`, then row `pc + 1`, ...).
struct PackedB {
    data: Vec<f32>,
    padded_n: usize,
}

impl PackedB {
    fn pack(k: usize, n: usize, b: &[f32]) -> PackedB {
        let panels = n.div_ceil(NR);
        let padded_n = panels * NR;
        let mut data = vec![0.0f32; k * padded_n];
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for jp in 0..panels {
                let j0 = jp * NR;
                let nb = NR.min(n - j0);
                let base = pc * padded_n + jp * NR * kb;
                for pp in 0..kb {
                    let src = &b[(pc + pp) * n + j0..(pc + pp) * n + j0 + nb];
                    data[base + pp * NR..base + pp * NR + nb].copy_from_slice(src);
                }
            }
        }
        PackedB { data, padded_n }
    }

    /// The `kb * NR` micro-panel for depth block `pc` and column panel `jp`.
    #[inline]
    fn panel(&self, pc: usize, kb: usize, jp: usize) -> &[f32] {
        let base = pc * self.padded_n + jp * NR * kb;
        &self.data[base..base + NR * kb]
    }
}

/// Packs an `mb x kb` block of A (rows `ic..ic+mb`, depth `pc..pc+kb`)
/// into `MR`-row micro-panels: depth-major within each panel (`MR` values
/// of depth `pc`, then depth `pc + 1`, ...), zero-padded to full panels.
fn pack_a_block(
    a: &[f32],
    k: usize,
    ic: usize,
    mb: usize,
    pc: usize,
    kb: usize,
    buf: &mut Vec<f32>,
) {
    let panels = mb.div_ceil(MR);
    buf.clear();
    buf.resize(panels * MR * kb, 0.0);
    for rp in 0..panels {
        let base = rp * MR * kb;
        let rows = MR.min(mb - rp * MR);
        for r in 0..rows {
            let row = ic + rp * MR + r;
            let src = &a[row * k + pc..row * k + pc + kb];
            for (pp, &v) in src.iter().enumerate() {
                buf[base + pp * MR + r] = v;
            }
        }
    }
}

/// Register-blocked `MR x NR` micro-kernel: accumulates `kb` rank-1
/// updates from packed panels into `acc` (row-major `MR x NR`). Both
/// operands stream at unit stride; the 32 accumulators fit the SIMD
/// register file so the inner loop is pure FMA work.
#[inline]
fn microkernel(kb: usize, pa: &[f32], pb: &[f32], acc: &mut [f32; MR * NR]) {
    // `chunks_exact` + fixed-size array views give the compiler exact
    // extents, so the fully unrolled `MR x NR` update runs without bounds
    // checks and vectorizes across each accumulator row.
    for (av, bv) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kb) {
        let av: &[f32; MR] = av.try_into().unwrap();
        let bv: &[f32; NR] = bv.try_into().unwrap();
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                acc[r * NR + j] += ar * bv[j];
            }
        }
    }
}

/// Runs the packed kernel over the row strip `r0..r1`, writing into
/// `c_strip` (the `(r1 - r0) * n` slice of C starting at row `r0`).
#[allow(clippy::too_many_arguments)]
fn gemm_strip(
    r0: usize,
    r1: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    packed_b: &PackedB,
    c_strip: &mut [f32],
) {
    let mut packed_a = Vec::new();
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for ic in (r0..r1).step_by(MC) {
                let mb = MC.min(r1 - ic);
                pack_a_block(a, k, ic, mb, pc, kb, &mut packed_a);
                let row_panels = mb.div_ceil(MR);
                for jp in jc / NR..(jc + ncb).div_ceil(NR) {
                    let j0 = jp * NR;
                    let nb = NR.min(n - j0);
                    let pb = packed_b.panel(pc, kb, jp);
                    for rp in 0..row_panels {
                        let pa = &packed_a[rp * MR * kb..(rp + 1) * MR * kb];
                        let mut acc = [0.0f32; MR * NR];
                        microkernel(kb, pa, pb, &mut acc);
                        let i0 = ic + rp * MR;
                        let rows = MR.min(r1 - i0);
                        for r in 0..rows {
                            let co = (i0 - r0 + r) * n + j0;
                            let crow = &mut c_strip[co..co + nb];
                            for (cv, &av) in crow.iter_mut().zip(&acc[r * NR..r * NR + nb]) {
                                *cv += alpha * av;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packed driver: packs B once (shared read-only), then runs row strips
/// sequentially or across scoped threads. Strips are `MR`-panel aligned,
/// so each C row is produced by exactly the same instruction sequence in
/// both modes — thread count never changes the result.
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    let packed_b = PackedB::pack(k, n, b);
    if threads <= 1 {
        gemm_strip(0, m, n, k, alpha, a, &packed_b, c);
        return;
    }

    let panels_per = m.div_ceil(MR).div_ceil(threads);
    let rows_per = panels_per * MR;
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut r0 = 0usize;
        while r0 < m {
            let rows = rows_per.min(m - r0);
            let (strip, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let packed_b = &packed_b;
            scope.spawn(move || {
                gemm_strip(r0, r0 + rows, n, k, alpha, a, packed_b, strip);
            });
            r0 += rows;
        }
    });
}

/// Cache-blocked out-of-place transpose of a row-major `rows x cols`
/// matrix. Works in `TB x TB` tiles so both the gather and the scatter
/// side touch whole cache lines instead of striding a full row apart.
pub fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    /// Tile edge: a 32x32 f32 tile is 4 KiB, comfortably in L1 twice over.
    const TB: usize = 32;
    assert_eq!(src.len(), rows * cols, "transpose: bad slice length");
    let mut dst = vec![0.0f32; src.len()];
    for rt in (0..rows).step_by(TB) {
        let rb = TB.min(rows - rt);
        for ct in (0..cols).step_by(TB) {
            let cb = TB.min(cols - ct);
            for r in rt..rt + rb {
                let srow = &src[r * cols + ct..r * cols + ct + cb];
                for (c, &v) in srow.iter().enumerate() {
                    dst[(ct + c) * rows + r] = v;
                }
            }
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    /// Element-wise relative comparison: `|x - y| <= tol * max(1, |x|)`.
    fn rel_eq(want: &[f32], got: &[f32], tol: f32) -> bool {
        want.len() == got.len()
            && want
                .iter()
                .zip(got)
                .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(1.0))
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(4, 2));
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn sgemm_validates_slice_lengths() {
        let a = vec![0.0; 5];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        let err = sgemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c, GemmOptions::default()).unwrap_err();
        assert!(matches!(err, TensorError::InvalidParams { .. }));
    }

    #[test]
    fn beta_scales_existing_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        sgemm(2, 2, 2, 1.0, &a, &b, 0.5, &mut c, GemmOptions::default()).unwrap();
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn naive_propagates_nan_through_zero_weights() {
        // a row of zeros times a NaN column must stay NaN (0 * NaN = NaN);
        // the oracle must not shortcut zero multipliers.
        let a = vec![0.0, 0.0];
        let b = vec![f32::NAN, 1.0, 2.0, 3.0];
        let mut c = vec![0.0; 2];
        gemm_naive(1, 2, 2, 1.0, &a, &b, &mut c);
        assert!(c[0].is_nan());
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn packed_propagates_infinities() {
        let m = 40; // above PACK_MIN_VOLUME with n=k=40
        let a = vec![1.0f32; m * m];
        let mut b = vec![1.0f32; m * m];
        b[0] = f32::INFINITY;
        let mut c = vec![0.0f32; m * m];
        sgemm(m, m, m, 1.0, &a, &b, 0.0, &mut c, GemmOptions::default()).unwrap();
        assert!(c[0].is_infinite());
    }

    #[test]
    fn transposed_operands_match_naive() {
        let m = 5;
        let n = 7;
        let k = 3;
        let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 1).into_vec();
        let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 2).into_vec();
        let at = transpose(&a, m, k); // stored k x m
        let bt = transpose(&b, k, n); // stored n x k
        let mut want = vec![0.0; m * n];
        gemm_naive(m, n, k, 1.0, &a, &b, &mut want);

        let mut got = vec![0.0; m * n];
        sgemm(
            m,
            n,
            k,
            1.0,
            &at,
            &bt,
            0.0,
            &mut got,
            GemmOptions {
                trans_a: true,
                trans_b: true,
                threads: 1,
            },
        )
        .unwrap();
        assert!(approx_eq(&want, &got, 1e-4));
    }

    #[test]
    fn transpose_round_trips_on_awkward_shapes() {
        for &(r, c) in &[(1usize, 1usize), (3, 5), (32, 32), (33, 65), (100, 7)] {
            let src: Vec<f32> = (0..r * c).map(|i| i as f32).collect();
            let t = transpose(&src, r, c);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[j * r + i], src[i * c + j]);
                }
            }
            assert_eq!(transpose(&t, c, r), src);
        }
    }

    #[test]
    fn parallel_is_bitwise_equal_to_sequential() {
        let m = 130; // crosses multiple MC blocks and uneven split
        let n = 70;
        let k = 300; // crosses KC
        let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, 3).into_vec();
        let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, 4).into_vec();
        let mut seq = vec![0.0; m * n];
        sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut seq, GemmOptions::default()).unwrap();
        for threads in [2usize, 4, 7] {
            let mut par = vec![0.0; m * n];
            sgemm(
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut par,
                GemmOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(seq, par, "threads={threads} diverged from sequential");
        }
    }

    /// The issue's acceptance grid: every thread count in {1, 2, 4, 7}
    /// against every shape with m, n, k drawn from {1, 3, 64, 257} must
    /// match the naive oracle within 1e-5 relative error. Covers both the
    /// small-matrix blocked path and the packed path (257 crosses KC/NC
    /// panel boundaries; 1 and 3 exercise ragged MR/NR edges).
    #[test]
    fn parallel_packed_matches_naive_across_thread_and_shape_grid() {
        const DIMS: [usize; 4] = [1, 3, 64, 257];
        const THREADS: [usize; 4] = [1, 2, 4, 7];
        let mut seed = 10u64;
        for &m in &DIMS {
            for &n in &DIMS {
                for &k in &DIMS {
                    seed += 1;
                    let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
                    let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 7000).into_vec();
                    let mut want = vec![0.0; m * n];
                    gemm_naive(m, n, k, 1.0, &a, &b, &mut want);
                    for &threads in &THREADS {
                        let mut got = vec![0.0; m * n];
                        sgemm(
                            m,
                            n,
                            k,
                            1.0,
                            &a,
                            &b,
                            0.0,
                            &mut got,
                            GemmOptions::with_threads(threads),
                        )
                        .unwrap();
                        assert!(
                            rel_eq(&want, &got, 1e-5),
                            "mismatch at m={m} n={n} k={k} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn blocked_matches_naive(
            m in 1usize..24,
            n in 1usize..24,
            k in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
            let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 1).into_vec();
            let mut want = vec![0.0; m * n];
            gemm_naive(m, n, k, 1.0, &a, &b, &mut want);
            let mut got = vec![0.0; m * n];
            sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut got, GemmOptions::default()).unwrap();
            prop_assert!(approx_eq(&want, &got, 1e-3));
        }

        #[test]
        fn packed_matches_naive_any_threads(
            m in 1usize..80,
            n in 1usize..80,
            k in 1usize..80,
            threads in 1usize..9,
            seed in 0u64..1000,
        ) {
            let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
            let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 1).into_vec();
            let mut want = vec![0.0; m * n];
            gemm_naive(m, n, k, 1.0, &a, &b, &mut want);
            let mut got = vec![0.0; m * n];
            sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut got, GemmOptions::with_threads(threads))
                .unwrap();
            prop_assert!(rel_eq(&want, &got, 1e-5), "m={m} n={n} k={k} threads={threads}");
        }

        #[test]
        fn identity_is_neutral(mn in 1usize..20, seed in 0u64..100) {
            let a = Tensor::random_uniform(Shape::mat(mn, mn), 1.0, seed);
            let eye = Tensor::from_fn(Shape::mat(mn, mn), |i| {
                if i / mn == i % mn { 1.0 } else { 0.0 }
            });
            let c = matmul(&a, &eye).unwrap();
            prop_assert!(approx_eq(a.data(), c.data(), 1e-5));
        }

        #[test]
        fn matmul_is_linear_in_alpha(
            m in 1usize..10, n in 1usize..10, k in 1usize..10, seed in 0u64..50
        ) {
            let a = Tensor::random_uniform(Shape::mat(m, k), 1.0, seed).into_vec();
            let b = Tensor::random_uniform(Shape::mat(k, n), 1.0, seed + 9).into_vec();
            let mut c1 = vec![0.0; m * n];
            sgemm(m, n, k, 2.0, &a, &b, 0.0, &mut c1, GemmOptions::default()).unwrap();
            let mut c2 = vec![0.0; m * n];
            sgemm(m, n, k, 1.0, &a, &b, 0.0, &mut c2, GemmOptions::default()).unwrap();
            for v in c2.iter_mut() { *v *= 2.0; }
            prop_assert!(approx_eq(&c1, &c2, 1e-3));
        }
    }
}
